#!/usr/bin/env python
"""Quickstart: generate IDs, play the game, and check the math.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterGenerator,
    DemandProfile,
    RandomGenerator,
    SimulationPlan,
    estimate_profile_collision,
    exact_collision_probability,
    make_generator,
)
from repro.idspace import id_to_uuid_string
from repro.simulation.seeds import rng_for


def main() -> None:
    # --- 1. Generate some 128-bit IDs, uncoordinated-style -------------
    m = 1 << 128
    print("Five GUID-style (Random) IDs:")
    random_ids = RandomGenerator(m, rng_for(1)).take(5)
    for value in random_ids:
        print("  ", id_to_uuid_string(value))

    print("\nFive RocksDB-style (Cluster) IDs — note the sequential run:")
    cluster_ids = ClusterGenerator(m, rng_for(2)).take(5)
    for value in cluster_ids:
        print("  ", id_to_uuid_string(value))

    # --- 2. How likely is a collision? Exactly. ------------------------
    # Say 8 uncoordinated services each mint a million IDs from a
    # (deliberately small) 2^48 universe:
    small_m = 1 << 48
    profile = DemandProfile.uniform(8, 1_000_000)
    for algorithm in ("random", "cluster"):
        p = exact_collision_probability(algorithm, small_m, profile)
        print(
            f"\nexact p_{algorithm}(8 x 1M IDs, m=2^48) = {float(p):.6f}"
        )

    # --- 3. Cross-check one of those numbers by simulation -------------
    # A SimulationPlan says how to estimate: here "stop as soon as the
    # 95% Wilson CI is ±0.005 wide, or at 10000 games" — typically far
    # fewer games than a fixed budget, same reproducibility. (The
    # target must be meaningfully tighter than the probability being
    # measured, ~0.006 here, or the run stops before seeing a single
    # collision.)
    sim_m = 1 << 20
    sim_profile = DemandProfile.uniform(4, 512)
    exact = float(exact_collision_probability("cluster", sim_m, sim_profile))
    estimate = estimate_profile_collision(
        lambda m_, rng: make_generator("cluster", m_, rng),
        sim_m,
        sim_profile,
        trials=10_000,
        seed=42,
        plan=SimulationPlan(target_halfwidth=0.005),
    )
    print(
        f"\ncluster on {sim_profile.demands}, m=2^20: "
        f"exact={exact:.4f}, simulated={estimate} "
        f"(adaptive: stopped after {estimate.trials} games)"
    )


if __name__ == "__main__":
    main()
