#!/usr/bin/env python
"""Attacking ID generators that leak their future (Lemma 7 / Theorem 8).

Cluster's weakness: after seeing one ID from each instance, an adversary
knows every instance's entire future sequence. The closest-pair attack
exploits this to force collisions a factor ~n more often than any
oblivious workload could. Cluster* plugs the leak with exponentially
growing, freshly placed runs.

Run:  python examples/adaptive_adversary.py
"""

from repro import ClusterGenerator, ClusterStarGenerator
from repro.adversary import ClosestPairAttack, GreedyGapAttack
from repro.analysis import (
    corollary5_cluster_worst_case,
    lemma7_adaptive_cluster,
    theorem8_cluster_star,
)
from repro.simulation import SimulationPlan, estimate_collision_probability

M = 1 << 20
D = 1024
TRIALS = 1500
#: Stop each cell early once the Wilson CI is ±0.015 wide (TRIALS is
#: the cap) — the low-probability Cluster* cells finish in a fraction
#: of the fixed budget.
PLAN = SimulationPlan(target_halfwidth=0.015)


def attack(generator_factory, attack_cls, n: int) -> float:
    estimate = estimate_collision_probability(
        generator_factory,
        M,
        lambda rng: attack_cls(n=n, d=D),
        trials=TRIALS,
        seed=1234 + n,
        plan=PLAN,
    )
    return estimate.probability


def main() -> None:
    print(f"m = 2^20, total budget d = {D}, {TRIALS} games per cell\n")
    header = (
        f"{'n':>4} {'oblivious Θ(nd/m)':>18} {'Cluster attacked':>17} "
        f"{'Lemma7 Ω(n²d/m)':>16} {'Cluster* attacked':>18} "
        f"{'Thm8 O(nd/m·log)':>17}"
    )
    print(header)
    for n in (4, 8, 16, 32):
        oblivious = corollary5_cluster_worst_case(M, n, D)
        attacked = attack(
            lambda m, rng: ClusterGenerator(m, rng), ClosestPairAttack, n
        )
        star = max(
            attack(
                lambda m, rng: ClusterStarGenerator(m, rng),
                ClosestPairAttack,
                n,
            ),
            attack(
                lambda m, rng: ClusterStarGenerator(m, rng),
                GreedyGapAttack,
                n,
            ),
        )
        print(
            f"{n:>4} {oblivious:>18.4f} {attacked:>17.4f} "
            f"{lemma7_adaptive_cluster(M, n, D):>16.4f} {star:>18.4f} "
            f"{theorem8_cluster_star(M, n, D):>17.4f}"
        )
    print(
        "\nCluster's attacked column tracks the n² Lemma 7 curve; "
        "Cluster* stays at the (nd/m)·log(1+d/n) Theorem 8 curve."
    )


if __name__ == "__main__":
    main()
