#!/usr/bin/env python
"""When demand is skewed, Cluster wastes probability — Bins* doesn't.

The §3.4 example: one instance mints 1024 IDs, another mints 16. An
algorithm tuned to this profile collides with probability ~16/m, but
Cluster pays ~1040/m — a 65× overshoot. Bins* keeps every profile
within an O(log m) factor of optimal (Theorem 9), which is the best any
single algorithm can do (Theorem 10).

Run:  python examples/skewed_demand.py
"""

from repro import DemandProfile, competitive_ratio_upper
from repro.analysis import (
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
    skew_aware_pair_collision,
)

M = 1 << 16


def main() -> None:
    print(f"m = 2^16; two instances with demands (2^i, 2^j)\n")
    print(
        f"{'profile':>14} {'p* (tuned)':>11} {'cluster':>9} "
        f"{'random':>9} {'bins*':>9} | {'ratio cl':>8} {'ratio b*':>8}"
    )
    for i, j in [(1, 4), (2, 8), (4, 10), (6, 11), (1, 11)]:
        low, high = 1 << i, 1 << j
        profile = DemandProfile.of(low, high)
        tuned = float(skew_aware_pair_collision(M, low, high))
        cluster = float(cluster_collision_probability(M, profile))
        random_p = float(random_collision_probability(M, profile))
        bins_star = float(bins_star_collision_probability(M, profile))
        ratio_cluster = competitive_ratio_upper(
            M, profile, cluster_collision_probability(M, profile)
        )
        ratio_bins_star = competitive_ratio_upper(
            M, profile, bins_star_collision_probability(M, profile)
        )
        print(
            f"({low:>5},{high:>6}) {tuned:>11.2e} {cluster:>9.2e} "
            f"{random_p:>9.2e} {bins_star:>9.2e} | "
            f"{ratio_cluster:>8.1f} {ratio_bins_star:>8.1f}"
        )
    print(
        "\nCluster's competitive ratio explodes with the skew 2^j/2^i; "
        f"Bins*'s stays bounded by O(log m) = O({M.bit_length() - 1})."
    )


if __name__ == "__main__":
    main()
