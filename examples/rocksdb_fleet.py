#!/usr/bin/env python
"""The paper's motivating scenario, end to end.

A fleet of MiniRocks nodes (one uncoordinated ID generator each) serves
a YCSB workload while a balancer migrates SST files between nodes and
all nodes share one block cache keyed by (file_id, block). We shrink
the ID universe until collisions happen, and watch them surface as
silently corrupted reads — then switch the generator from Random to
Cluster and watch them (mostly) disappear.

Run:  python examples/rocksdb_fleet.py
"""

import random

from repro.distributed import ClusterSimulator
from repro.kvstore import Options
from repro.workloads import WorkloadSpec, full_workload


def run_fleet(algorithm: str, id_universe: int, seed: int) -> None:
    def options() -> Options:
        return Options(
            memtable_entries=16,
            block_entries=8,
            level0_file_limit=3,
            id_universe=id_universe,
            id_algorithm=algorithm,
            bloom_bits_per_key=0,
        )

    sim = ClusterSimulator(
        num_nodes=6, options_factory=options, cache_blocks=4096, seed=seed
    )
    spec = WorkloadSpec(
        workload="a", record_count=800, operation_count=4000, value_size=24
    )
    sim.run_workload(
        full_workload(spec, random.Random(seed)),
        rebalance_every=250,
        moves_per_rebalance=2,
    )
    sim.flush_all()
    report = sim.report()
    print(f"  algorithm={algorithm:10s} universe=2^{id_universe.bit_length()-1}")
    print(f"    file IDs minted:        {report.audit.total_ids_assigned}")
    print(f"    duplicate IDs:          {report.audit.collision_count}")
    print(f"    SST migrations:         {report.migrations}")
    print(f"    corrupt block reads:    {report.corrupt_block_reads}")
    print(f"    provably wrong results: {report.corrupt_results}")
    print(f"    cache hit rate:         {report.cache_hit_rate:.3f}")


def main() -> None:
    print("Tiny 13-bit ID universe (collisions at laptop scale):")
    for algorithm in ("random", "cluster", "bins_star"):
        run_fleet(algorithm, 1 << 13, seed=7)

    print(
        "\nSame fleet, 64-bit universe (what production would use) — "
        "nobody collides:"
    )
    for algorithm in ("random", "cluster"):
        run_fleet(algorithm, 1 << 64, seed=7)

    print(
        "\nTakeaway: at equal ID length, Cluster tolerates ~d/n times "
        "more objects than Random before its first collision "
        "(Theorem 1 vs Corollary 3)."
    )


if __name__ == "__main__":
    main()
