#!/usr/bin/env python
"""Capacity planning: how many IDs can your fleet safely mint?

Uses the exact collision-probability machinery (big ints — 128-bit
universes are no problem) to answer the deployment question the paper's
introduction poses: with n uncoordinated instances and a target
collision budget, how many objects can each algorithm handle?

Run:  python examples/capacity_planning.py
"""


from repro import DemandProfile
from repro.analysis import (
    cluster_collision_probability,
    random_collision_probability,
)


def max_safe_demand(probability_fn, m: int, n: int, budget: float) -> int:
    """Largest per-instance demand h keeping collision prob <= budget.

    Exponential search + bisection over the exact formula.
    """
    def p(h: int) -> float:
        return float(probability_fn(m, DemandProfile.uniform(n, h)))

    high = 1
    while p(high) <= budget:
        high *= 2
        if high > m // n:
            return m // n
    low = high // 2
    while low + 1 < high:
        mid = (low + high) // 2
        if p(mid) <= budget:
            low = mid
        else:
            high = mid
    return low


def main() -> None:
    n = 1000  # a thousand uncoordinated instances
    budget = 1e-9  # one-in-a-billion collision budget
    print(
        f"Fleet: n = {n} instances, collision budget {budget:.0e}, "
        "uniform demand\n"
    )
    print(
        f"{'ID bits':>8} {'Random: IDs/instance':>22} "
        f"{'Cluster: IDs/instance':>22} {'gain':>12}"
    )
    for bits in (64, 96, 128):
        m = 1 << bits
        safe_random = max_safe_demand(
            random_collision_probability, m, n, budget
        )
        safe_cluster = max_safe_demand(
            cluster_collision_probability, m, n, budget
        )
        gain = safe_cluster / max(1, safe_random)
        print(
            f"{bits:>8} {safe_random:>22.3e} {safe_cluster:>22.3e} "
            f"{gain:>11.1e}x"
        )
    print(
        "\nReading: with 128-bit IDs and a 10^-9 budget, Random caps the "
        "whole fleet near sqrt(m·budget) ≈ 2^49 total objects, while "
        "Cluster handles ~budget·m/n per the Theorem 1 bound — exabyte "
        "scale is fine. This is why RocksDB switched (PRs #8990, #9126)."
    )


if __name__ == "__main__":
    main()
