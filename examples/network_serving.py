#!/usr/bin/env python
"""Pricing the serving stack: YCSB A in-process vs over real sockets.

Stands up a ``uuidp serve`` RPC server on loopback (in a background
thread — the same :class:`ServerThread` the benchmarks use), runs YCSB
workload A against it through the workload driver's network target,
runs the identical configuration against an in-process store, and
prints the throughput and tail-latency delta. The op streams are
seeded identically and the outcome digests are computed server-side by
the same ``execute_op``, so the two runs' fingerprints are
**bit-identical** — everything that differs is the serving stack:
framing, syscalls, and two loopback socket hops per op.

Run:  python examples/network_serving.py
"""

from repro.distributed.rpc import (
    ServerThread,
    network_flush_and_report,
    network_target_factory,
)
from repro.kvstore import Options
from repro.workloads import WorkloadSpec
from repro.workloads.driver import (
    DriverConfig,
    WorkloadDriver,
    store_target_factory,
)

SEED = 20230414


def options() -> Options:
    return Options(memtable_entries=128, block_entries=16)


def config() -> DriverConfig:
    return DriverConfig(
        spec=WorkloadSpec(
            workload="a",
            record_count=1000,
            operation_count=4000,
            value_size=32,
        ),
        shards=2,
        workers=2,
        warmup_operations=200,
        seed=SEED,
    )


def show(label: str, result) -> None:
    payload = result.to_dict()
    print(
        f"  {label:<11} {payload['ops_per_second']:>10,.0f} ops/s   "
        f"p50 {payload['p50_us']:>7.1f} us   "
        f"p99 {payload['p99_us']:>7.1f} us   "
        f"fingerprint 0x{payload['fingerprint']:08x}"
    )


def main() -> None:
    print("YCSB A, 2 shards x 4000 ops, same seed both ways\n")

    local = WorkloadDriver(store_target_factory(options), config()).run()

    with ServerThread(store_target_factory(options)) as handle:
        host, port = handle.address
        print(f"uuidp serve listening on {host}:{port} (loopback)\n")
        network = WorkloadDriver(
            network_target_factory(host, port),
            config(),
            collect=network_flush_and_report,
        ).run()

    show("in-process", local)
    show("network", network)

    assert network.fingerprint == local.fingerprint, (
        "determinism contract broken: network and in-process runs "
        "diverged"
    )
    p99_delta = network.to_dict()["p99_us"] - local.to_dict()["p99_us"]
    slowdown = local.ops_per_second / network.ops_per_second
    print(
        f"\nidentical fingerprints; the serving stack costs "
        f"{p99_delta:+.1f} us of p99 and {slowdown:.1f}x throughput "
        "at this scale."
    )
    print(
        "(Latencies and ops/s are wall-clock and WILL vary run to "
        "run — only the op streams and outcomes are deterministic.)"
    )


if __name__ == "__main__":
    main()
