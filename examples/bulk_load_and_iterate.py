#!/usr/bin/env python
"""MiniRocks as a library: bulk loading, cursors, and crash recovery.

Shows the storage-engine API surface beyond simple put/get — the parts
real applications use: external SST ingestion (which mints a fresh
uncoordinated ID, unlike migration), merging iterators with seek, and
WAL-based crash recovery.

Run:  python examples/bulk_load_and_iterate.py
"""

import random

from repro.kvstore import MiniRocks, Options, iterate_db, range_count


def main() -> None:
    db = MiniRocks(
        Options(
            memtable_entries=32,
            block_entries=8,
            id_universe=1 << 64,
            id_algorithm="cluster",
        ),
        rng=random.Random(42),
        name="demo",
    )

    # --- normal writes --------------------------------------------------
    for i in range(100):
        db.put(f"user:{i:04d}".encode(), f"profile-{i}".encode())
    db.delete(b"user:0013")

    # --- bulk load: a sorted batch becomes one SST directly --------------
    batch = [
        (f"import:{i:04d}".encode(), b"bulk") for i in range(50)
    ]
    sst = db.ingest_external(batch)
    print(f"ingested SST file_id={sst.file_id} with {sst.entry_count} keys")
    print(f"file IDs minted so far: {len(db.assigned_file_ids())}")

    # --- cursors ----------------------------------------------------------
    iterator = iterate_db(db)
    iterator.seek(b"user:0010")
    print("\nfirst 5 keys from user:0010 (note 0013 is deleted):")
    for _ in range(5):
        key, value = next(iterator)
        print("  ", key.decode(), "=", value.decode())

    print(
        "\nlive keys in [user:0000, user:0050):",
        range_count(db, b"user:0000", b"user:0050"),
    )

    # --- crash recovery ---------------------------------------------------
    db.put(b"unflushed:1", b"precious")
    wal_snapshot = db.wal.serialize()  # what disk would hold at crash time
    recovered = MiniRocks(
        Options(memtable_entries=32, id_universe=1 << 64),
        rng=random.Random(43),
        name="recovered",
    )
    applied = recovered.recover_from_wal(wal_snapshot)
    print(f"\nreplayed {applied} WAL records after simulated crash")
    print("recovered value:", recovered.get(b"unflushed:1"))


if __name__ == "__main__":
    main()
