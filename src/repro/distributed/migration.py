"""SST migration policies and cluster-wide uniqueness auditing.

Migration is *why* uncoordinated IDs must be globally unique: a file
minted on node A, cached under ``(file_id, block)`` keys, moves to node
B while node C may independently mint the same ``file_id``. The audit
functions here measure exactly that.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.distributed.node import Node
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MigrationEvent:
    """A completed file move."""

    file_id: int
    fingerprint: int
    source: str
    destination: str
    level: int


def migrate_coldest_to_warmest(
    nodes: Sequence[Node], rng: random.Random, max_moves: int = 1
) -> List[MigrationEvent]:
    """Balance load: move files from the most- to the least-loaded node.

    Returns the performed moves (possibly fewer than ``max_moves`` if
    the donor has nothing exportable).
    """
    if len(nodes) < 2:
        raise ConfigurationError("migration needs >= 2 nodes")
    events: List[MigrationEvent] = []
    for _ in range(max_moves):
        donor = max(nodes, key=lambda n: n.load())
        receiver = min(nodes, key=lambda n: n.load())
        if donor is receiver or donor.load() == 0:
            break
        exportable = donor.exportable_files()
        if not exportable:
            break
        level, sst = exportable[rng.randrange(len(exportable))]
        donor.export_file(level, sst)
        receiver.import_file(level, sst)
        events.append(
            MigrationEvent(
                file_id=sst.file_id,
                fingerprint=sst.fingerprint,
                source=donor.name,
                destination=receiver.name,
                level=level,
            )
        )
    return events


def migrate_random(
    nodes: Sequence[Node], rng: random.Random, moves: int
) -> List[MigrationEvent]:
    """Shuffle files between random node pairs (stress-test pattern)."""
    if len(nodes) < 2:
        raise ConfigurationError("migration needs >= 2 nodes")
    events: List[MigrationEvent] = []
    for _ in range(moves):
        donor = nodes[rng.randrange(len(nodes))]
        receiver = nodes[rng.randrange(len(nodes))]
        if donor is receiver:
            continue
        exportable = donor.exportable_files()
        if not exportable:
            continue
        level, sst = exportable[rng.randrange(len(exportable))]
        donor.export_file(level, sst)
        receiver.import_file(level, sst)
        events.append(
            MigrationEvent(
                file_id=sst.file_id,
                fingerprint=sst.fingerprint,
                source=donor.name,
                destination=receiver.name,
                level=level,
            )
        )
    return events


def migrate_to_ring_owners(
    nodes: Sequence[Node],
    owners_of: Callable[[bytes], Sequence[Node]],
    rng: random.Random,
    max_moves: int = 1,
) -> List[MigrationEvent]:
    """Ring-aware rebalance: move SSTs back to their keys' replica set.

    After ring membership changes (or load-balancing churn) a file can
    sit on a node that is no longer in its key range's preference
    list. This policy scans every live node's live files — L0
    included, because migrated files usually land there via the
    overlap fallback — and judges each by its ``min_key``: if the
    holder is not among ``owners_of(min_key)`` (typically
    ``ClusterSimulator.preference_nodes``), the file is *misplaced*
    and is moved to the first live owner. Up to ``max_moves`` files
    move per call, chosen by ``rng`` for parity with the other
    policies; the policy reaches a fixed point once every file sits
    with one of its owners. Placement here is correctness-driven
    (serve reads where routing looks), unlike
    :func:`migrate_coldest_to_warmest`, which chases load.
    """
    if len(nodes) < 2:
        raise ConfigurationError("migration needs >= 2 nodes")
    # One fleet scan: moving a file to one of its owners can never
    # make another file misplaced (ownership is a pure function of
    # min_key), so the list only shrinks as moves pop from it.
    misplaced = []
    for node in nodes:
        if not node.alive:
            continue
        for level, sst in node.db.manifest.live_files():
            owners = owners_of(sst.min_key)
            if node in owners:
                continue
            destination = next(
                (owner for owner in owners if owner.alive), None
            )
            if destination is not None:
                misplaced.append((node, destination, level, sst))
    events: List[MigrationEvent] = []
    for _ in range(min(max_moves, len(misplaced))):
        donor, destination, level, sst = misplaced.pop(
            rng.randrange(len(misplaced))
        )
        donor.export_file(level, sst)
        destination.import_file(level, sst)
        events.append(
            MigrationEvent(
                file_id=sst.file_id,
                fingerprint=sst.fingerprint,
                source=donor.name,
                destination=destination.name,
                level=level,
            )
        )
    return events


@dataclass(frozen=True)
class UniquenessAudit:
    """Result of a cluster-wide file-ID uniqueness check."""

    total_ids_assigned: int
    distinct_ids: int
    #: file_id -> number of times it was assigned (only entries > 1).
    duplicates: Dict[int, int]

    @property
    def collided(self) -> bool:
        """True when any file id was assigned to more than one owner."""
        return bool(self.duplicates)

    @property
    def collision_count(self) -> int:
        """Number of extra assignments beyond the first per ID."""
        return sum(count - 1 for count in self.duplicates.values())


def audit_id_uniqueness(nodes: Sequence[Node]) -> UniquenessAudit:
    """Check every ID ever assigned anywhere in the cluster.

    This is the UUIDP collision event itself: the same ID minted by two
    (or more) uncoordinated generator instances.
    """
    counts: Counter = Counter()
    for node in nodes:
        counts.update(node.db.assigned_file_ids())
    duplicates = {
        file_id: count for file_id, count in counts.items() if count > 1
    }
    return UniquenessAudit(
        total_ids_assigned=sum(counts.values()),
        distinct_ids=len(counts),
        duplicates=duplicates,
    )
