"""SLO-driven elastic autoscaling for the simulated serving fleet.

The controller closes the loop between the demand side — an
:class:`~repro.workloads.demand.ArrivalProcess` mapping logical op
ticks to offered load — and the supply side, a replicated
:class:`~repro.distributed.cluster.ClusterSimulator` whose membership
it may change at runtime via :meth:`~ClusterSimulator.add_node` and
:meth:`~ClusterSimulator.decommission`.

Determinism contract
--------------------
Scale decisions must be **bit-identical across same-seed runs at any
``workers=`` split**, which rules out wall-clock latency as the control
signal (thread scheduling jitter would make two identical runs scale
differently). Instead the controller runs a *logical queue model*: at
each op tick it evaluates the arrival rate (pure in ``(seed, tick)``),
drains a backlog at ``live_nodes * node_capacity`` ops per logical
second, and records the resulting *modeled* latency in its own
:class:`~repro.workloads.driver.LatencyHistogram`. Every control
output — scale events, shed ops, SLO violations — is a pure function
of ``(seed, tick schedule, config)``. The driver's wall-clock
histogram is untouched and still reports real measured latencies.

Control loop
------------
At every ``check_every`` ticks the controller inspects the window's
modeled p99 and mean utilisation:

* sustained SLO breach (``breach_checks`` consecutive windows over
  ``slo_p99_ms``) → ``add_node()`` + ring re-convergence, up to
  ``max_nodes``;
* sustained idleness (``idle_checks`` consecutive windows under
  ``idle_utilization``) → hint-safe ``decommission()`` of the
  least-loaded node, down to ``min_nodes``;
* admission control: while the modeled queue delay exceeds
  ``shed_after_ms`` the op is shed — it never reaches the target,
  surfaces as ``FAILED_OP_OUTCOME`` in the op fingerprint, and counts
  in ``shed_ops`` (not ``op_errors``).

``enabled=False`` gives *monitor-only* mode: the queue model, SLO
accounting, and shedding run, but membership never changes — this is
how the elasticity benchmark measures statically provisioned fleets
under the same arrival process.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.demand import ArrivalProcess


@dataclass(frozen=True)
class ScaleEvent:
    """One membership change decided by the :class:`Autoscaler`.

    The tuple of events for a run is its *scale schedule*; same-seed
    runs must produce identical schedules (see
    :meth:`Autoscaler.schedule_fingerprint`).
    """

    #: Logical op tick (the driver's 1-based op counter) at which the
    #: decision fired — same clock as ``ChaosEvent.at_op``.
    at_op: int
    #: ``"add"`` or ``"remove"``.
    action: str
    #: Name of the node that joined or drained.
    node: str
    #: Live-node count after the change.
    nodes_after: int
    #: Modeled window p99 (milliseconds) that drove the decision.
    p99_ms: float
    #: Mean offered-load / capacity ratio over the window.
    utilization: float
    #: Human-readable cause, e.g. ``"p99 64.0ms > slo 20.0ms x2"``.
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (stable key order for artifacts)."""
        return {
            "at_op": self.at_op,
            "action": self.action,
            "node": self.node,
            "nodes_after": self.nodes_after,
            "p99_ms": self.p99_ms,
            "utilization": self.utilization,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs for the SLO controller (the ``uuidp kv --autoscale`` set).

    All thresholds act on the *modeled* queue latency — see the module
    docstring for why wall-clock latency cannot drive scaling in a
    bit-reproducible simulation.
    """

    #: Demand signal; pure in ``(seed, tick)``.
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    #: The SLO: modeled p99 must stay at or under this many ms.
    slo_p99_ms: float = 20.0
    #: Fleet floor — scale-down never goes below this (must also stay
    #: >= the cluster's replication factor; ``decommission`` enforces
    #: that independently).
    min_nodes: int = 1
    #: Fleet ceiling — scale-up stops here; beyond it only shedding
    #: protects the SLO.
    max_nodes: int = 8
    #: Ops per logical second one node can serve in the queue model.
    node_capacity: float = 1000.0
    #: Controller checkpoint period, in logical op ticks.
    check_every: int = 200
    #: Consecutive breaching windows required before scale-up.
    breach_checks: int = 2
    #: Consecutive idle windows required before scale-down.
    idle_checks: int = 3
    #: A window is idle when mean utilisation is under this ratio.
    idle_utilization: float = 0.35
    #: Scale-up sizing: on sustained breach the fleet jumps to
    #: ``ceil(live * utilization / target_utilization)`` nodes (HPA
    #: style — one checkpoint covers the whole deficit instead of
    #: chasing a surge one node at a time), clamped to ``max_nodes``.
    target_utilization: float = 0.75
    #: Admission control: shed ops whose modeled queue delay would
    #: exceed this many ms (the saturated-fleet pressure valve).
    shed_after_ms: float = 80.0
    #: ``False`` = monitor-only (measure SLO/shed but never scale).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ConfigurationError("slo_p99_ms must be > 0")
        if self.min_nodes < 1:
            raise ConfigurationError("min_nodes must be >= 1")
        if self.max_nodes < self.min_nodes:
            raise ConfigurationError(
                f"max_nodes={self.max_nodes} < min_nodes={self.min_nodes}"
            )
        if self.node_capacity <= 0:
            raise ConfigurationError("node_capacity must be > 0")
        if self.check_every < 1:
            raise ConfigurationError("check_every must be >= 1 ticks")
        if self.breach_checks < 1 or self.idle_checks < 1:
            raise ConfigurationError(
                "breach_checks and idle_checks must be >= 1"
            )
        if not 0.0 < self.idle_utilization < 1.0:
            raise ConfigurationError(
                "idle_utilization must be in (0, 1)"
            )
        if not self.idle_utilization < self.target_utilization <= 1.0:
            raise ConfigurationError(
                "target_utilization must be in (idle_utilization, 1] "
                "(a scale-up target at or under the idle threshold "
                "would flap)"
            )
        if self.shed_after_ms < self.slo_p99_ms:
            raise ConfigurationError(
                "shed_after_ms must be >= slo_p99_ms (shedding is the "
                "last resort, not the first response)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view for result/config echoes."""
        arrival = self.arrival
        return {
            "arrival": {
                "kind": arrival.kind,
                "base_rate": arrival.base_rate,
                "period": arrival.period,
                "amplitude": arrival.amplitude,
                "flash_at": arrival.flash_at,
                "flash_ticks": arrival.flash_ticks,
                "peak": arrival.peak,
                "burst_prob": arrival.burst_prob,
                "burst_ticks": arrival.burst_ticks,
            },
            "slo_p99_ms": self.slo_p99_ms,
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "node_capacity": self.node_capacity,
            "check_every": self.check_every,
            "breach_checks": self.breach_checks,
            "idle_checks": self.idle_checks,
            "idle_utilization": self.idle_utilization,
            "target_utilization": self.target_utilization,
            "shed_after_ms": self.shed_after_ms,
            "enabled": self.enabled,
        }


class Autoscaler:
    """The per-shard SLO controller; one instance per driver shard.

    Holds the deterministic queue model and the scale/shed decision
    state. The driver calls :meth:`observe_op` once per op (before
    executing it — a shed op is never sent to the target) and
    :meth:`on_tick` from its per-op ``tick()`` hook, exactly where
    chaos events and scheduled rebalances fire.
    """

    def __init__(
        self, target: Any, config: AutoscalerConfig, seed: int
    ) -> None:
        """``target`` is the shard's store-like object; scaling needs
        the cluster membership API (``add_node``/``decommission``)."""
        if config.enabled and not (
            hasattr(target, "add_node")
            and hasattr(target, "decommission")
        ):
            raise ConfigurationError(
                "autoscaling needs a cluster target "
                "(--target cluster); store and network targets can "
                "only run monitor-only (enabled=False)"
            )
        # Deferred import: repro.workloads.driver imports this module.
        from repro.workloads.driver import LatencyHistogram

        self._histogram_cls = LatencyHistogram
        self.target = target
        self.config = config
        self.seed = seed
        #: Whole-run modeled-latency histogram (the controller's view).
        self.histogram = LatencyHistogram()
        self._window = LatencyHistogram()
        self._window_util_sum = 0.0
        self._window_ticks = 0
        self._backlog = 0.0
        self._breach_streak = 0
        self._idle_streak = 0
        #: Scale schedule, in decision order.
        self.events: List[ScaleEvent] = []
        self.shed_ops = 0
        self.slo_violations = 0
        self.measured_ops = 0
        self._node_ticks = 0
        self._total_ticks = 0

    def _live_count(self) -> int:
        """Live fleet size; a plain store counts as one node."""
        nodes = getattr(self.target, "nodes", None)
        if nodes is None:
            return 1
        return max(1, sum(1 for n in nodes if n.alive))

    def observe_op(self, tick: int, phase: str) -> bool:
        """Advance the queue model one op; returns ``False`` if shed.

        ``phase`` is ``"load"``, ``"warmup"``, or ``"measured"``: the
        load phase observes demand (so the backlog is warm) but is
        never shed, and only measured ops count toward the
        SLO-violation fraction. A shed op must still be fingerprinted
        by the caller as ``FAILED_OP_OUTCOME``.
        """
        cfg = self.config
        rate = cfg.arrival.rate(self.seed, tick)
        capacity = self._live_count() * cfg.node_capacity
        self._backlog = max(0.0, self._backlog - capacity / rate)
        utilization = rate / capacity
        self._window_util_sum += utilization
        self._window_ticks += 1
        self._node_ticks += self._live_count()
        self._total_ticks += 1
        queue_delay_ms = 1000.0 * self._backlog / capacity
        if phase != "load" and queue_delay_ms > cfg.shed_after_ms:
            self.shed_ops += 1
            if phase == "measured":
                # A shed op is an SLO violation from the client's
                # side (it got an error, not a slow answer) — counting
                # it keeps shedding from flattering the fraction.
                self.measured_ops += 1
                self.slo_violations += 1
            return False
        self._backlog += 1.0
        modeled_ms = 1000.0 * self._backlog / capacity
        modeled_ns = int(modeled_ms * 1e6)
        self._window.record(modeled_ns)
        self.histogram.record(modeled_ns)
        if phase == "measured":
            self.measured_ops += 1
            if modeled_ms > cfg.slo_p99_ms:
                self.slo_violations += 1
        return True

    def on_tick(self, tick: int) -> None:
        """Run the controller when ``tick`` lands on a checkpoint."""
        if tick % self.config.check_every != 0:
            return
        if self._window_ticks == 0:
            return
        cfg = self.config
        p99_ms = self._window.percentile(0.99) / 1e6
        utilization = self._window_util_sum / self._window_ticks
        self._window = self._histogram_cls()
        self._window_util_sum = 0.0
        self._window_ticks = 0

        breach = p99_ms > cfg.slo_p99_ms
        idle = not breach and utilization < cfg.idle_utilization
        self._breach_streak = self._breach_streak + 1 if breach else 0
        self._idle_streak = self._idle_streak + 1 if idle else 0
        if not cfg.enabled:
            return

        live = self._live_count()
        if breach and self._breach_streak >= cfg.breach_checks:
            # HPA-style sizing: jump to the utilization-implied fleet
            # (live * util is the offered load in node units), so one
            # checkpoint covers the whole deficit instead of chasing a
            # surge one node per period.
            desired = min(
                cfg.max_nodes,
                max(
                    live + 1,
                    math.ceil(
                        live * utilization / cfg.target_utilization
                    ),
                ),
            )
            streak = self._breach_streak
            while live < desired:
                node = self.target.add_node()
                live += 1
                self.events.append(
                    ScaleEvent(
                        at_op=tick,
                        action="add",
                        node=node.name,
                        nodes_after=live,
                        p99_ms=round(p99_ms, 3),
                        utilization=round(utilization, 4),
                        reason=(
                            f"p99 {p99_ms:.1f}ms > slo "
                            f"{cfg.slo_p99_ms:.1f}ms x{streak}"
                        ),
                    )
                )
            self._breach_streak = 0
        elif idle and self._idle_streak >= cfg.idle_checks:
            # The floor is min_nodes, but never below the target's
            # replication factor — decommission would (rightly) refuse
            # the drain, so don't ask.
            floor = max(
                cfg.min_nodes,
                getattr(self.target, "replication_factor", 1),
            )
            if live > floor:
                victim = min(
                    (n for n in self.target.nodes if n.alive),
                    key=lambda n: (n.load(), n.name),
                )
                self.target.decommission(victim)
                self.events.append(
                    ScaleEvent(
                        at_op=tick,
                        action="remove",
                        node=victim.name,
                        nodes_after=live - 1,
                        p99_ms=round(p99_ms, 3),
                        utilization=round(utilization, 4),
                        reason=(
                            f"utilization {utilization:.2f} < "
                            f"{cfg.idle_utilization:.2f} "
                            f"x{self._idle_streak}"
                        ),
                    )
                )
                self._idle_streak = 0

    @property
    def slo_violation_fraction(self) -> float:
        """Measured ops whose modeled latency breached the SLO."""
        if self.measured_ops == 0:
            return 0.0
        return self.slo_violations / self.measured_ops

    @property
    def avg_live_nodes(self) -> float:
        """Mean fleet size over the run, weighted by op ticks."""
        if self._total_ticks == 0:
            return float(self._live_count())
        return self._node_ticks / self._total_ticks

    def schedule_fingerprint(self) -> int:
        """CRC32 over the scale schedule; the determinism witness.

        Two same-seed runs must agree on this value exactly — it
        covers event order, ticks, actions, node names, and fleet
        sizes.
        """
        crc = 0
        for event in self.events:
            token = (
                f"{event.at_op}:{event.action}:"
                f"{event.node}:{event.nodes_after}"
            )
            crc = zlib.crc32(token.encode("utf-8"), crc)
        return crc

    def summary(self) -> Dict[str, Any]:
        """The elasticity payload merged into driver results."""
        return {
            "enabled": self.config.enabled,
            "shed_ops": self.shed_ops,
            "slo_violations": self.slo_violations,
            "measured_ops": self.measured_ops,
            "slo_violation_fraction": self.slo_violation_fraction,
            "avg_live_nodes": round(self.avg_live_nodes, 4),
            "final_live_nodes": self._live_count(),
            "modeled_p99_ms": round(
                self.histogram.percentile(0.99) / 1e6, 3
            ),
            "scale_events": [e.to_dict() for e in self.events],
            "schedule_fingerprint": self.schedule_fingerprint(),
        }


def summarize_shards(
    summaries: List[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Merge per-shard elasticity payloads into one result block.

    Counters add; the schedule fingerprint chains shard fingerprints
    in shard order (bit-stable because shard schedules are themselves
    deterministic). Returns ``None`` when no shard ran a controller.
    """
    present = [s for s in summaries if s is not None]
    if not present:
        return None
    measured = sum(s["measured_ops"] for s in present)
    violations = sum(s["slo_violations"] for s in present)
    crc = 0
    for s in present:
        crc = zlib.crc32(
            s["schedule_fingerprint"].to_bytes(4, "big"), crc
        )
    return {
        "enabled": any(s["enabled"] for s in present),
        "shed_ops": sum(s["shed_ops"] for s in present),
        "slo_violations": violations,
        "measured_ops": measured,
        "slo_violation_fraction": (
            violations / measured if measured else 0.0
        ),
        "avg_live_nodes": round(
            sum(s["avg_live_nodes"] for s in present) / len(present), 4
        ),
        "scale_events": sum(
            (s["scale_events"] for s in present), []
        ),
        "schedule_fingerprint": crc,
        "shards": present,
    }
