"""A node hosting one MiniRocks instance.

Nodes are the paper's "instances of A": each owns a private,
uncoordinated ID generator (inside its store) and shares nothing with
its peers except the block cache — exactly the deployment that makes
cross-instance ID uniqueness a correctness requirement once SSTs
migrate.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable


class Node:
    """One cluster member: a named MiniRocks with migration hooks."""

    def __init__(
        self,
        name: str,
        options: Options,
        cache: BlockCache,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self.db = MiniRocks(options=options, cache=cache, rng=rng, name=name)
        #: Files received from other nodes (kept for audits).
        self.received_files: List[int] = []
        #: Fault-injection state: a dead node is unreachable (skipped
        #: by quorum reads/writes, scans, and the balancer) but keeps
        #: its on-"disk" state — kill models a process/network outage,
        #: not a disk wipe. Toggled by ``ClusterSimulator.kill`` /
        #: ``recover``.
        self.alive: bool = True

    # -- data path ----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self.db.put(key, value)

    def get(self, key: bytes):
        return self.db.get(key)

    def delete(self, key: bytes) -> None:
        self.db.delete(key)

    def scan(
        self,
        start: bytes,
        end: Optional[bytes] = None,
        limit: Optional[int] = None,
        include_tombstones: bool = False,
    ) -> List[Tuple[bytes, bytes]]:
        return self.db.scan(start, end, limit, include_tombstones)

    # -- migration ----------------------------------------------------------

    def exportable_files(self) -> List[Tuple[int, SSTable]]:
        """(level, sst) pairs this node could hand to a peer.

        Only bottom-half levels are exported; L0 files churn too fast
        to be worth moving (mirrors production practice).
        """
        exportable = []
        for level, sst in self.db.manifest.live_files():
            if level >= 1:
                exportable.append((level, sst))
        return exportable

    def export_file(self, level: int, sst: SSTable) -> SSTable:
        """Detach ``sst`` for migration; it keeps its file ID."""
        self.db.manifest.detach_file(level, sst)
        return sst

    def import_file(self, level: int, sst: SSTable) -> None:
        """Attach a migrated file (ID assigned by the origin node).

        L1+ overlap conflicts are resolved by placing at L0, which
        tolerates overlap (again mirroring ingestion behaviour).
        """
        try:
            self.db.manifest.attach_file(level, sst)
        except KVStoreError:
            self.db.manifest.attach_file(0, sst)
        self.received_files.append(sst.file_id)

    # -- introspection ---------------------------------------------------------

    def load(self) -> int:
        """Total live entries (the balancer's load metric)."""
        return self.db.manifest.total_entries()

    def __repr__(self) -> str:
        state = "" if self.alive else ", dead"
        return f"Node({self.name!r}, load={self.load()}{state})"
