"""A node hosting one MiniRocks instance.

Nodes are the paper's "instances of A": each owns a private,
uncoordinated ID generator (inside its store) and shares nothing with
its peers except the block cache — exactly the deployment that makes
cross-instance ID uniqueness a correctness requirement once SSTs
migrate.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable, sst_filename
from repro.kvstore.storage import SimulatedStorage


class Node:
    """One cluster member: a named MiniRocks with migration hooks."""

    def __init__(
        self,
        name: str,
        options: Options,
        cache: BlockCache,
        rng: Optional[random.Random] = None,
        storage: Optional[SimulatedStorage] = None,
    ):
        self.name = name
        self.options = options
        self.cache = cache
        #: Durable backend (durable clusters only). A node with one can
        #: die by *crash* — process death that loses the memtable and
        #: recovers from WAL replay — not just by outage.
        self.storage = storage
        self.db = MiniRocks(
            options=options, cache=cache, rng=rng, name=name,
            storage=storage,
        )
        #: Files received from other nodes (kept for audits).
        self.received_files: List[int] = []
        #: Fault-injection state: a dead node is unreachable (skipped
        #: by quorum reads/writes, scans, and the balancer) but keeps
        #: its on-"disk" state — kill models a process/network outage,
        #: not a disk wipe. Toggled by ``ClusterSimulator.kill`` /
        #: ``recover``.
        self.alive: bool = True

    # -- crash/restart (durable nodes only) ---------------------------------

    def crash(self) -> None:
        """Kill the process: freeze the storage mid-flight.

        Unsynced WAL/file bytes become vulnerable (a torn tail will
        replace them at restart) and the memtable is gone — everything
        the next :meth:`reopen` knows comes from the storage.
        """
        if self.storage is None:
            raise ConfigurationError(
                f"{self.name} has no durable storage; only outage-style "
                "kills apply to in-memory nodes"
            )
        self.storage.crash()

    def reopen(self, rng: Optional[random.Random] = None) -> MiniRocks:
        """Crash-restart: apply torn-tail semantics and recover.

        Replaces :attr:`db` with a fresh MiniRocks opened on the
        restarted storage — committed SSTs + WAL replay reconstruct
        exactly the durable state. Operational counters
        (:attr:`MiniRocks.stats`) start over, as they would in a real
        restarted process; :attr:`received_files` survives (it is the
        audit trail, not process state).
        """
        if self.storage is None:
            raise ConfigurationError(
                f"{self.name} has no durable storage to reopen from"
            )
        if self.storage.crashed:
            self.storage.restart()
        self.db = MiniRocks(
            options=self.options,
            cache=self.cache,
            rng=rng,
            name=self.name,
            storage=self.storage,
        )
        return self.db

    # -- data path ----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Write straight into this node's local store."""
        self.db.put(key, value)

    def get(self, key: bytes):
        """Point lookup in this node's local store (``None`` if absent)."""
        return self.db.get(key)

    def delete(self, key: bytes) -> None:
        """Delete from this node's local store."""
        self.db.delete(key)

    def scan(
        self,
        start: bytes,
        end: Optional[bytes] = None,
        limit: Optional[int] = None,
        include_tombstones: bool = False,
    ) -> List[Tuple[bytes, bytes]]:
        """Ordered range scan of this node's local store."""
        return self.db.scan(start, end, limit, include_tombstones)

    # -- migration ----------------------------------------------------------

    def exportable_files(self) -> List[Tuple[int, SSTable]]:
        """(level, sst) pairs this node could hand to a peer.

        Only bottom-half levels are exported; L0 files churn too fast
        to be worth moving (mirrors production practice).
        """
        exportable = []
        for level, sst in self.db.manifest.live_files():
            if level >= 1:
                exportable.append((level, sst))
        return exportable

    def export_file(self, level: int, sst: SSTable) -> SSTable:
        """Detach ``sst`` for migration; it keeps its file ID.

        On a durable node the handoff is committed: the manifest drops
        the file atomically, then its bytes are removed (the importer
        holds its own copy).
        """
        self.db.manifest.detach_file(level, sst)
        if self.storage is not None:
            self.db._commit_manifest()
            name = sst_filename(sst.fingerprint)
            if self.storage.exists(name):
                self.storage.delete(name, label="sst-delete")
        return sst

    def import_file(self, level: int, sst: SSTable) -> None:
        """Attach a migrated file (ID assigned by the origin node).

        L1+ overlap conflicts are resolved by placing at L0, which
        tolerates overlap (again mirroring ingestion behaviour). On a
        durable node the file is persisted before the manifest names
        it, so a crash mid-migration never commits a dangling entry.
        """
        if self.storage is not None:
            self.db._persist_sst(sst, label="migration")
        try:
            self.db.manifest.attach_file(level, sst)
        except KVStoreError:
            self.db.manifest.attach_file(0, sst)
        if self.storage is not None:
            self.db._commit_manifest()
        self.received_files.append(sst.file_id)

    # -- introspection ---------------------------------------------------------

    def load(self) -> int:
        """Total live entries (the balancer's load metric)."""
        return self.db.manifest.total_entries()

    def __repr__(self) -> str:
        state = "" if self.alive else ", dead"
        return f"Node({self.name!r}, load={self.load()}{state})"
