"""Asyncio RPC serving layer: ``uuidp serve`` and its client library.

This module promotes the in-process serving stack behind a real
network boundary so the ops/s and p99 numbers of the workload driver
include what production numbers include: syscalls, serialization, and
slow clients. Three layers:

:class:`RPCServer`
    An asyncio TCP server speaking the framed protocol of
    :mod:`repro.distributed.protocol`. Each connection ``ATTACH``-es as
    one driver shard; the server builds that shard's **private** target
    (a :class:`~repro.distributed.cluster.ClusterSimulator` fleet or a
    single MiniRocks) from its configured factory — the same
    ``TargetFactory`` contract the in-process driver uses, which is why
    a network run reproduces an in-process run bit-for-bit. Storage ops
    execute on a thread-pool executor so the event loop never blocks on
    storage; per connection, frames are processed strictly in order
    (the determinism contract needs ordered execution; pipelining still
    overlaps client-side RTT). Responses are written under a bounded
    transport write-buffer high-water mark and ``drain()`` — a client
    that stops reading stalls *its own* connection via TCP backpressure
    instead of growing server memory.

:class:`RPCClient` / :class:`ClientPool`
    The async client: request pipelining over one connection with a
    per-connection in-flight cap (a semaphore — backpressure, not an
    unbounded queue), per-op timeouts that surface as
    :class:`~repro.errors.RPCTimeoutError` (a
    ``ClusterUnavailableError``), and bounded connect retries on a
    **jitterless, deterministic** doubling backoff so test runs are
    reproducible. The pool round-robins calls over N connections.

:class:`NetworkTarget` / :func:`network_target_factory`
    The synchronous facade :class:`~repro.workloads.driver.WorkloadDriver`
    shards drive: each target owns a background event loop thread and
    one attached connection, and exposes ``execute(op, key, value)``
    (whole logical ops — ``rmw`` is one RPC) plus ``kill``/``recover``
    so chaos schedules fire through the RPC boundary.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.distributed.protocol import (
    CODE_TO_OP,
    DEFAULT_MAX_FRAME,
    OP_ATTACH,
    OP_KILL,
    OP_RECOVER,
    OP_REPORT,
    OP_TO_CODE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_PROTOCOL,
    STATUS_UNAVAILABLE,
    decode_attach,
    decode_frame,
    decode_kv,
    decode_node,
    encode_attach,
    encode_frame,
    encode_kv,
    encode_node,
    read_frame,
)
from repro.errors import (
    ClusterUnavailableError,
    ConfigurationError,
    ReproError,
    RPCConnectionError,
    RPCError,
    RPCProtocolError,
    RPCTimeoutError,
)

#: Default per-op client timeout (seconds). Generous: loopback ops are
#: microseconds; this exists so a hung server fails red, not black.
DEFAULT_OP_TIMEOUT = 30.0
#: Default per-connection pipelining cap (requests in flight).
DEFAULT_MAX_IN_FLIGHT = 32
#: Server-side transport write-buffer high-water mark (bytes): the
#: slow-client bound. ``drain()`` parks the connection handler until
#: the peer reads the buffer back under this.
DEFAULT_WRITE_BUFFER_HIGH = 64 * 1024
#: Deterministic connect-retry schedule: ``backoff * 2**attempt``
#: seconds, no jitter (reproducibility beats thundering-herd manners in
#: a test harness).
DEFAULT_CONNECT_RETRIES = 5
DEFAULT_CONNECT_BACKOFF = 0.05

#: Seam for tests to observe/neutralize backoff sleeps.
_sleep = asyncio.sleep


def _execute_op(target: Any, op: str, key: bytes, value: bytes) -> bytes:
    # Deferred import: workloads.driver imports distributed.cluster;
    # importing it at module top would still be acyclic today, but the
    # lazy import keeps protocol/server importable without dragging in
    # the whole workload stack (and mirrors cluster.run_workload).
    from repro.workloads.driver import execute_op

    return execute_op(target, op, key, value)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class _Connection:
    """Per-connection server state: the attached shard target."""

    __slots__ = ("target", "shard")

    def __init__(self) -> None:
        self.target: Any = None
        self.shard: Optional[int] = None


class RPCServer:
    """Asyncio TCP server wrapping per-shard storage targets.

    Parameters
    ----------
    target_factory:
        ``(shard, shard_seed) -> target`` — the same contract as the
        driver's :data:`~repro.workloads.driver.TargetFactory`; called
        once per connection on ``ATTACH``.
    max_frame:
        Frame-size cap; a larger length prefix is a protocol error and
        closes the offending connection before any allocation.
    executor_workers:
        Thread-pool size for storage ops. Connections execute their own
        frames strictly in order regardless of this; the pool lets
        *different* shards' ops overlap.
    write_buffer_high:
        Transport write-buffer high-water mark — the per-connection
        bound on buffered response bytes for a slow client.
    """

    def __init__(
        self,
        target_factory: Callable[[int, int], Any],
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        executor_workers: int = 4,
        write_buffer_high: int = DEFAULT_WRITE_BUFFER_HIGH,
    ) -> None:
        self._target_factory = target_factory
        self.max_frame = max_frame
        self.write_buffer_high = write_buffer_high
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="uuidp-rpc"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        # Observability counters (read by tests and ops alike).
        self.connections_opened = 0
        self.frames_served = 0
        self.protocol_errors = 0
        #: Largest transport write buffer observed right after a
        #: response write — the slow-client test asserts this stays
        #: under ``write_buffer_high`` + one frame.
        self.peak_write_buffer = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start listening (port 0 picks a free port)."""
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        if self._server is None or not self._server.sockets:
            raise RPCError("server is not listening")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Serve until cancelled; requires :meth:`start` first."""
        if self._server is None:
            raise RPCError("call start() first")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop listening and close every open client connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=True)

    # -- connection handling ------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_opened += 1
        self._writers.add(writer)
        transport = writer.transport
        transport.set_write_buffer_limits(high=self.write_buffer_high)
        conn = _Connection()
        try:
            while True:
                frame = await read_frame(reader, self.max_frame)
                if frame is None:
                    break  # clean close
                msg_id, code, body = decode_frame(frame)
                status, payload = await self._dispatch(conn, code, body)
                writer.write(encode_frame(msg_id, status, payload))
                buffered = transport.get_write_buffer_size()
                if buffered > self.peak_write_buffer:
                    self.peak_write_buffer = buffered
                await writer.drain()
                self.frames_served += 1
                if status == STATUS_PROTOCOL:
                    self.protocol_errors += 1
                    break  # the peer speaks garbage; cut it loose
        except RPCProtocolError as exc:
            # Truncated/oversized/mid-frame garbage: answer (best
            # effort, msg_id 0 — the frame it belongs to never fully
            # arrived) and close this connection only.
            self.protocol_errors += 1
            with contextlib.suppress(Exception):  # noqa: REPRO402 -- best-effort farewell on an already-counted protocol error; the peer may be gone
                writer.write(
                    encode_frame(0, STATUS_PROTOCOL, str(exc).encode())
                )
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, conn: _Connection, code: int, body: bytes
    ) -> Tuple[int, bytes]:
        """Execute one request; returns ``(status, payload)``.

        Protocol violations come back as ``STATUS_PROTOCOL`` (the
        caller closes the connection after answering); execution
        failures map to ``STATUS_UNAVAILABLE`` (quorum-class, the
        client re-raises ``ClusterUnavailableError``) or
        ``STATUS_ERROR`` (everything else).
        """
        loop = asyncio.get_running_loop()
        try:
            if code == OP_ATTACH:
                if conn.target is not None:
                    return STATUS_PROTOCOL, b"connection already attached"
                shard, shard_seed = decode_attach(body)
                conn.target = await loop.run_in_executor(
                    self._executor, self._target_factory, shard, shard_seed
                )
                conn.shard = shard
                return STATUS_OK, b""
            if conn.target is None:
                return STATUS_PROTOCOL, b"op before ATTACH"
            if code in CODE_TO_OP:
                op = CODE_TO_OP[code]
                key, value = decode_kv(body)
                outcome = await loop.run_in_executor(
                    self._executor, _execute_op, conn.target, op, key, value
                )
                return STATUS_OK, outcome
            if code in (OP_KILL, OP_RECOVER):
                node = decode_node(body)
                method = getattr(
                    conn.target, "kill" if code == OP_KILL else "recover", None
                )
                if method is None:
                    return (
                        STATUS_ERROR,
                        b"target is not fault-injectable (no kill/recover)",
                    )
                await loop.run_in_executor(self._executor, method, node)
                return STATUS_OK, b""
            if code == OP_REPORT:
                payload = await loop.run_in_executor(
                    self._executor, _report_payload, conn.target
                )
                return STATUS_OK, json.dumps(payload).encode()
            return STATUS_PROTOCOL, f"unknown op code {code:#04x}".encode()
        except RPCProtocolError as exc:
            return STATUS_PROTOCOL, str(exc).encode()
        except ClusterUnavailableError as exc:
            return STATUS_UNAVAILABLE, str(exc).encode()
        except Exception as exc:  # noqa: BLE001 — a shard must not down the server
            return STATUS_ERROR, f"{type(exc).__name__}: {exc}".encode()


def _report_payload(target: Any) -> Dict[str, Any]:
    """Flush + report a connection's target as a JSON-ready dict.

    The network collect counterpart of
    :func:`repro.workloads.driver.flush_and_report`.
    """
    if hasattr(target, "flush_all"):  # a ClusterSimulator
        target.flush_all()
        report = target.report()
        return {
            "kind": "cluster",
            "operations": report.operations,
            "migrations": report.migrations,
            "id_collisions": report.audit.collision_count,
            "corrupt_block_reads": report.corrupt_block_reads,
            "corrupt_results": report.corrupt_results,
            "cache_hit_rate": report.cache_hit_rate,
            "dead_nodes": report.dead_nodes,
            "hints_outstanding": report.hints_outstanding,
            "hints_replayed": report.hints_replayed,
            "read_repairs": report.read_repairs,
            "read_escalations": report.read_escalations,
        }
    target.flush()  # a bare MiniRocks store
    stats = target.stats
    return {
        "kind": "store",
        "puts": stats.puts,
        "gets": stats.gets,
        "deletes": stats.deletes,
        "scans": stats.scans,
        "flushes": stats.flushes,
        "compactions": stats.compactions,
    }


# ---------------------------------------------------------------------------
# Async client
# ---------------------------------------------------------------------------


class RPCClient:
    """One pipelined connection to an :class:`RPCServer`.

    ``call`` may be invoked concurrently from many tasks; up to
    ``max_in_flight`` requests ride the wire at once (the semaphore is
    the client-side backpressure — callers park instead of queueing
    unboundedly) and responses are matched to callers by ``msg_id``.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        self._reader = reader
        self._writer = writer
        self.timeout = timeout
        self.max_frame = max_frame
        self._in_flight = asyncio.Semaphore(max_in_flight)
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._dead: Optional[Exception] = None
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        max_frame: int = DEFAULT_MAX_FRAME,
        retries: int = DEFAULT_CONNECT_RETRIES,
        backoff: float = DEFAULT_CONNECT_BACKOFF,
    ) -> "RPCClient":
        """Connect with bounded, jitterless deterministic backoff.

        Attempt ``k`` (0-based) sleeps ``backoff * 2**k`` seconds after
        failing — the same schedule every run, so tests that race a
        server start are reproducible.
        """
        last: Optional[Exception] = None
        for attempt in range(retries + 1):
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError as exc:
                last = exc
                if attempt == retries:
                    break
                await _sleep(backoff * (2 ** attempt))
                continue
            return cls(
                reader,
                writer,
                timeout=timeout,
                max_in_flight=max_in_flight,
                max_frame=max_frame,
            )
        raise RPCConnectionError(
            f"cannot connect to {host}:{port} after {retries + 1} "
            f"attempt(s): {last}"
        )

    # -- plumbing -----------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader, self.max_frame)
                if frame is None:
                    raise RPCConnectionError("server closed the connection")
                msg_id, status, payload = decode_frame(frame)
                future = self._pending.pop(msg_id, None)
                if future is not None and not future.done():
                    future.set_result((status, payload))
                # else: a response to a timed-out (abandoned) call.
        except Exception as exc:  # noqa: BLE001 — fan the failure out
            self._dead = (
                exc
                if isinstance(exc, ClusterUnavailableError)
                else RPCConnectionError(f"connection lost: {exc}")
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(self._dead)
            self._pending.clear()

    async def _call_raw(self, code: int, body: bytes) -> bytes:
        async with self._in_flight:
            if self._dead is not None:
                raise self._dead
            msg_id = next(self._ids)
            future = asyncio.get_running_loop().create_future()
            self._pending[msg_id] = future
            self._writer.write(
                encode_frame(msg_id, code, body, self.max_frame)
            )
            await self._writer.drain()
            try:
                if self.timeout is None:
                    status, payload = await future
                else:
                    status, payload = await asyncio.wait_for(
                        future, self.timeout
                    )
            except asyncio.TimeoutError:
                self._pending.pop(msg_id, None)
                raise RPCTimeoutError(
                    f"op {code:#04x} timed out after {self.timeout}s "
                    "(unacknowledged; treated as a failed op)"
                ) from None
        if status == STATUS_OK:
            return payload
        message = payload.decode("utf-8", "replace")
        if status == STATUS_UNAVAILABLE:
            raise ClusterUnavailableError(message)
        if status == STATUS_PROTOCOL:
            raise RPCProtocolError(f"server: {message}")
        raise RPCError(message)

    # -- API ----------------------------------------------------------------

    async def attach(self, shard: int, shard_seed: int) -> None:
        """Bind this connection to a driver shard and its derived seed."""
        await self._call_raw(OP_ATTACH, encode_attach(shard, shard_seed))

    async def call(self, op: str, key: bytes, value: bytes) -> bytes:
        """Execute one logical op; returns its outcome digest bytes."""
        code = OP_TO_CODE.get(op)
        if code is None:
            raise ConfigurationError(f"unknown workload op {op!r}")
        return await self._call_raw(code, encode_kv(key, value))

    async def kill(self, node: int) -> None:
        """Inject a node outage on the remote cluster."""
        await self._call_raw(OP_KILL, encode_node(node))

    async def recover(self, node: int) -> None:
        """Recover a previously killed remote node."""
        await self._call_raw(OP_RECOVER, encode_node(node))

    async def report(self) -> Dict[str, Any]:
        """Flush the remote target and fetch its report dict."""
        return json.loads(await self._call_raw(OP_REPORT, b""))

    async def aclose(self) -> None:
        """Cancel the reader task and close the connection."""
        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()


class ClientPool:
    """N pipelined connections, round-robin dispatch.

    One connection's in-flight cap bounds *its* pipeline; the pool
    multiplies that by ``size`` for callers that want more concurrency
    than one socket's window (each connection attaches as its own
    shard: ``shard_base + i``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 2,
        shard_base: int = 0,
        shard_seed: int = 0,
        **client_kwargs: Any,
    ) -> None:
        if size < 1:
            raise ConfigurationError("pool size must be >= 1")
        self.host = host
        self.port = port
        self.size = size
        self.shard_base = shard_base
        self.shard_seed = shard_seed
        self._client_kwargs = client_kwargs
        self._clients: List[RPCClient] = []
        self._next = itertools.count()

    async def start(self) -> "ClientPool":
        """Connect and attach all ``size`` clients; returns ``self``."""
        for index in range(self.size):
            client = await RPCClient.connect(
                self.host, self.port, **self._client_kwargs
            )
            await client.attach(self.shard_base + index, self.shard_seed)
            self._clients.append(client)
        return self

    def client(self) -> RPCClient:
        """The next pooled client, round-robin."""
        if not self._clients:
            raise RPCError("pool not started")
        return self._clients[next(self._next) % len(self._clients)]

    async def call(self, op: str, key: bytes, value: bytes) -> bytes:
        """Execute one logical op on the next round-robin client."""
        return await self.client().call(op, key, value)

    async def aclose(self) -> None:
        """Close every pooled client connection."""
        for client in self._clients:
            await client.aclose()
        self._clients.clear()


# ---------------------------------------------------------------------------
# Synchronous facade for the workload driver
# ---------------------------------------------------------------------------


class _LoopThread:
    """A daemon thread running a private event loop; sync callers
    submit coroutines and block on their results."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name=name, daemon=True
        )
        self._thread.start()

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        if not self.loop.is_running():
            self.loop.close()


class NetworkTarget:
    """One driver shard's view of a remote ``uuidp serve`` instance.

    Synchronous by design — :class:`~repro.workloads.driver.WorkloadDriver`
    shards are plain threads — but built on the async
    :class:`RPCClient` running in a private background event loop.
    ``execute`` ships whole logical ops (``rmw`` included) and returns
    the server-computed outcome digest, so driver fingerprints over a
    network run match the in-process run byte for byte.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shard: int,
        shard_seed: int,
        *,
        timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        connect_backoff: float = DEFAULT_CONNECT_BACKOFF,
    ) -> None:
        self.shard = shard
        self._loop = _LoopThread(f"uuidp-client-shard{shard}")
        try:
            self._client = self._loop.run(
                RPCClient.connect(
                    host,
                    port,
                    timeout=timeout,
                    max_in_flight=max_in_flight,
                    retries=connect_retries,
                    backoff=connect_backoff,
                )
            )
            self._loop.run(self._client.attach(shard, shard_seed))
        except (ReproError, OSError, RuntimeError):
            # Everything connect/attach can raise: library errors
            # (RPCConnectionError and friends), socket failures, and a
            # loop that refused to start. Stop the thread, then let the
            # caller see the original failure.
            self._loop.stop()
            raise

    def execute(self, op: str, key: bytes, value: bytes) -> bytes:
        """One logical op over the wire; the driver's ``execute_op``
        dispatches here."""
        return self._loop.run(self._client.call(op, key, value))

    # Chaos injection through the RPC boundary (driver tick() hooks).
    def kill(self, node: int, mode: str = "outage") -> None:
        """Inject a remote node outage (the only network chaos mode)."""
        if mode != "outage":
            raise ConfigurationError(
                f"network targets only support kill(mode='outage'); "
                f"crash-restart chaos (mode={mode!r}) needs an "
                "in-process durable cluster target"
            )
        self._loop.run(self._client.kill(node))

    def recover(self, node: int) -> None:
        """Recover a remote node killed through this target."""
        self._loop.run(self._client.recover(node))

    def collect_report(self) -> Dict[str, Any]:
        """Flush the remote target and fetch its report dict."""
        return self._loop.run(self._client.report())

    def close(self) -> None:
        """Close the RPC client and stop the private event loop."""
        with contextlib.suppress(Exception):
            self._loop.run(self._client.aclose())
        self._loop.stop()


def network_target_factory(
    host: str,
    port: int,
    *,
    timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    connect_retries: int = DEFAULT_CONNECT_RETRIES,
    connect_backoff: float = DEFAULT_CONNECT_BACKOFF,
):
    """A driver ``TargetFactory`` whose shards dial a remote server.

    The ``(shard, shard_seed)`` pair rides the ``ATTACH`` frame, so the
    server builds exactly the target the in-process driver would have
    built — the op streams are generated client-side from the same
    seeds, the outcomes are digested server-side by the same
    ``execute_op``, and the fingerprints match bit for bit.
    """

    def factory(shard: int, shard_seed: int) -> NetworkTarget:
        return NetworkTarget(
            host,
            port,
            shard,
            shard_seed,
            timeout=timeout,
            max_in_flight=max_in_flight,
            connect_retries=connect_retries,
            connect_backoff=connect_backoff,
        )

    return factory


def network_flush_and_report(target: NetworkTarget) -> Dict[str, Any]:
    """The network counterpart of
    :func:`~repro.workloads.driver.flush_and_report`: flush + report
    the remote target, then close the shard's connection (the collect
    callback is the driver's end-of-shard hook, so this is where the
    socket and its loop thread are torn down)."""
    try:
        return target.collect_report()
    finally:
        target.close()


# ---------------------------------------------------------------------------
# In-process background server (tests, benchmarks, examples)
# ---------------------------------------------------------------------------


class ServerThread:
    """An :class:`RPCServer` running on a private loop thread.

    The serving loop stays fully async; this wrapper only exists so
    synchronous harnesses (pytest, benchmarks, the example script) can
    stand a real TCP server up over loopback without managing asyncio
    themselves. Context-manager friendly::

        with ServerThread(store_target_factory(options)) as handle:
            host, port = handle.address
            ...
    """

    def __init__(
        self,
        target_factory: Callable[[int, int], Any],
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs: Any,
    ) -> None:
        self.server = RPCServer(target_factory, **server_kwargs)
        self._loop = _LoopThread("uuidp-serve")
        try:
            self._loop.run(self.server.start(host, port))
        except (ReproError, OSError, RuntimeError):
            # Bind/listen failures (port in use, bad host) and loop
            # startup errors; stop the thread and re-raise.
            self._loop.stop()
            raise
        self.address: Tuple[str, int] = self._loop.run(
            _async_address(self.server)
        )

    def stop(self) -> None:
        """Shut the in-process server down and stop its event loop."""
        with contextlib.suppress(Exception):
            self._loop.run(self.server.aclose())
        self._loop.stop()

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


async def _async_address(server: RPCServer) -> Tuple[str, int]:
    return server.address
