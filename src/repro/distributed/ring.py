"""Consistent-hash ring with virtual nodes.

The ring replaces the seed repo's static ``crc32(key) % n`` routing:
each member owns ``vnodes`` points on a 64-bit circle, a key belongs
to the first point at or after its own hash (wrapping), and a key's
**preference list** is the first ``rf`` *distinct* members clockwise
from that point — the replica set used by quorum reads and writes.

Why a ring:

* **Stability** — adding one member to an ``n``-member ring remaps
  only ~``1/(n+1)`` of the key space (each new virtual point claims
  the arc behind it); modulo routing remaps ~``n/(n+1)`` of all keys.
* **Replication** — "the next ``rf`` distinct members clockwise" is a
  well-defined, membership-stable replica set; modulo routing has no
  natural successor notion.

Hashing uses BLAKE2b (8-byte digests), never the builtin ``hash``,
whose per-process salting (``PYTHONHASHSEED``) would make routing —
and therefore every simulated collision and chaos outcome —
unreproducible across runs.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence

from repro.errors import ConfigurationError


def _hash64(data: bytes) -> int:
    """Deterministic 64-bit point on the ring for ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over named members.

    Parameters
    ----------
    members:
        Initial member names (order-insensitive; the ring is a pure
        function of the name set and ``vnodes``).
    vnodes:
        Virtual nodes per member. More points flatten per-member load
        variance (relative std ~ ``1/sqrt(vnodes)``) at the cost of a
        larger sorted point table.
    """

    def __init__(self, members: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set = set()
        #: Sorted, parallel arrays: ring point -> owning member name.
        self._points: List[int] = []
        self._owners: List[str] = []
        for name in members:
            self.add_node(name)

    # -- membership ---------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Insert ``name``'s virtual points into the ring."""
        if name in self._members:
            raise ConfigurationError(f"ring already contains {name!r}")
        self._members.add(name)
        for replica in range(self.vnodes):
            point = _hash64(f"{name}#{replica}".encode())
            index = bisect.bisect_left(self._points, point)
            # 64-bit point collisions across names are ~impossible at
            # simulator scale; break ties by name for determinism.
            if (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < name
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, name)

    def remove_node(self, name: str) -> None:
        """Remove ``name``'s virtual points (its arcs fall to successors)."""
        if name not in self._members:
            raise ConfigurationError(f"ring does not contain {name!r}")
        self._members.remove(name)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != name
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def members(self) -> List[str]:
        """Member names, sorted for presentation."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # -- routing ------------------------------------------------------------

    def key_point(self, key: bytes) -> int:
        """The key's own position on the circle."""
        return _hash64(key)

    def preference_list(self, key: bytes, rf: int = 1) -> List[str]:
        """The first ``rf`` distinct members clockwise from ``key``.

        The first entry is the key's *primary*; the rest are its
        replica successors. Pure in (member set, vnodes, key, rf).
        """
        if rf < 1:
            raise ConfigurationError("rf must be >= 1")
        if rf > len(self._members):
            raise ConfigurationError(
                f"rf={rf} exceeds ring membership ({len(self._members)})"
            )
        start = bisect.bisect_right(self._points, self.key_point(key))
        seen: List[str] = []
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == rf:
                    break
        return seen

    def primary(self, key: bytes) -> str:
        """The member owning ``key`` (first on the preference list)."""
        return self.preference_list(key, 1)[0]
