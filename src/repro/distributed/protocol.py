"""Wire protocol for the ``uuidp serve`` RPC layer.

A connection carries a stream of length-prefixed binary frames, the
same layout in both directions::

    +----------------+------------+--------+------------------+
    | length: u32 BE | msg_id: u64 BE | code: u8 | body ...    |
    +----------------+------------+--------+------------------+

``length`` counts everything after itself (``msg_id`` + ``code`` +
``body``), so a frame is at least :data:`HEADER_SIZE` bytes past the
prefix and at most :data:`DEFAULT_MAX_FRAME` (configurable per server /
client — a larger prefix is a protocol violation and closes the
connection *before* any allocation). ``msg_id`` is chosen by the
client and echoed verbatim in the response, which is what makes
pipelining work: many requests may be in flight per connection and each
response finds its caller by id.

``code`` is an **op code** in requests and a **status code** in
responses. The data op codes mirror the
:func:`repro.workloads.driver.execute_op` vocabulary exactly — get /
put / delete / rmw / scan travel as one logical op each (``rmw`` is a
single frame; the server performs the get + put pair) and the response
body is the *outcome digest* ``execute_op`` returned. That is the whole
trick behind the determinism contract: the driver fingerprints
``op + key + outcome`` bytes, so a network run and an in-process run
hash identical streams.

Bodies:

* data ops — ``klen:u32 | key | vlen:u32 | value`` (scan packs its row
  count as the decimal-ASCII ``value``, as ``execute_op`` expects);
* ``ATTACH`` — ``shard:u32 | shard_seed:u64`` (the server builds that
  shard's private target from its configured factory);
* ``KILL`` / ``RECOVER`` — ``node:u32`` (chaos injection through the
  RPC boundary);
* ``REPORT`` — empty request, JSON response (flush + cluster report);
* error responses — a UTF-8 message.

Every decoder here raises :class:`~repro.errors.RPCProtocolError` on
malformed input rather than ``struct``-style exceptions, so the server
loop can treat "peer speaks garbage" as one condition.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from repro.errors import RPCProtocolError

#: Frame-size cap (body + header, excluding the length prefix). Large
#: enough for any workload value plus framing, small enough that a
#: hostile length prefix cannot balloon server memory.
DEFAULT_MAX_FRAME = 1 << 20

#: Bytes of every frame past the length prefix before the body starts.
HEADER_SIZE = 8 + 1
_LENGTH_SIZE = 4
_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1

# -- request op codes -------------------------------------------------------

OP_ATTACH = 0x01
OP_GET = 0x10
OP_PUT = 0x11
OP_DELETE = 0x12
OP_RMW = 0x13
OP_SCAN = 0x14
OP_KILL = 0x20
OP_RECOVER = 0x21
OP_REPORT = 0x22

#: The ``execute_op`` vocabulary <-> wire codes.
OP_TO_CODE = {
    "get": OP_GET,
    "put": OP_PUT,
    "delete": OP_DELETE,
    "rmw": OP_RMW,
    "scan": OP_SCAN,
}
CODE_TO_OP = {code: op for op, code in OP_TO_CODE.items()}

# -- response status codes --------------------------------------------------

STATUS_OK = 0x00
#: Quorum loss / timeout-class failure: the op was not acknowledged.
STATUS_UNAVAILABLE = 0x01
#: The *client* broke the protocol; the server closes the connection
#: after this response.
STATUS_PROTOCOL = 0x02
#: Server-side execution error (bad node index, store without kill()...).
STATUS_ERROR = 0x03


# -- primitive packers ------------------------------------------------------

def _check_u32(value: int, label: str) -> int:
    if not 0 <= value <= _U32_MAX:
        raise RPCProtocolError(f"{label} {value} outside u32 range")
    return value


def encode_frame(msg_id: int, code: int, body: bytes = b"",
                 max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Pack one frame, length prefix included."""
    if not 0 <= msg_id <= _U64_MAX:
        raise RPCProtocolError(f"msg_id {msg_id} outside u64 range")
    if not 0 <= code <= 0xFF:
        raise RPCProtocolError(f"code {code} outside u8 range")
    length = HEADER_SIZE + len(body)
    if length > max_frame:
        raise RPCProtocolError(
            f"frame of {length} bytes exceeds max frame size {max_frame}"
        )
    return (
        length.to_bytes(_LENGTH_SIZE, "big")
        + msg_id.to_bytes(8, "big")
        + bytes((code,))
        + body
    )


def decode_frame(frame: bytes) -> Tuple[int, int, bytes]:
    """Unpack a frame (without its length prefix) into
    ``(msg_id, code, body)``."""
    if len(frame) < HEADER_SIZE:
        raise RPCProtocolError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{HEADER_SIZE}-byte header"
        )
    return int.from_bytes(frame[:8], "big"), frame[8], frame[9:]


def encode_kv(key: bytes, value: bytes) -> bytes:
    """Pack a data-op body: ``klen | key | vlen | value``."""
    return (
        _check_u32(len(key), "key length").to_bytes(4, "big")
        + key
        + _check_u32(len(value), "value length").to_bytes(4, "big")
        + value
    )


def decode_kv(body: bytes) -> Tuple[bytes, bytes]:
    """Unpack a data-op body; raises on truncation or trailing junk."""
    if len(body) < 4:
        raise RPCProtocolError("data-op body truncated before key length")
    klen = int.from_bytes(body[:4], "big")
    if len(body) < 4 + klen + 4:
        raise RPCProtocolError("data-op body truncated inside key/value")
    key = body[4:4 + klen]
    vlen = int.from_bytes(body[4 + klen:8 + klen], "big")
    if len(body) != 8 + klen + vlen:
        raise RPCProtocolError(
            f"data-op body of {len(body)} bytes does not match "
            f"klen={klen} + vlen={vlen}"
        )
    return key, body[8 + klen:]


def encode_attach(shard: int, shard_seed: int) -> bytes:
    """Pack an ATTACH body: the shard identity the server's target
    factory is called with (so server-side targets are built exactly as
    :class:`~repro.workloads.driver.WorkloadDriver` builds in-process
    ones)."""
    _check_u32(shard, "shard")
    if not 0 <= shard_seed <= _U64_MAX:
        raise RPCProtocolError(f"shard_seed {shard_seed} outside u64 range")
    return shard.to_bytes(4, "big") + shard_seed.to_bytes(8, "big")


def decode_attach(body: bytes) -> Tuple[int, int]:
    """Decode an ATTACH body back into ``(shard, shard_seed)``."""
    if len(body) != 12:
        raise RPCProtocolError(
            f"ATTACH body must be 12 bytes (shard:u32 | seed:u64), "
            f"got {len(body)}"
        )
    return int.from_bytes(body[:4], "big"), int.from_bytes(body[4:], "big")


def encode_node(node: int) -> bytes:
    """Encode a node index for KILL/RECOVER frames (u32, big-endian)."""
    return _check_u32(node, "node index").to_bytes(4, "big")


def decode_node(body: bytes) -> int:
    """Decode a node index from a KILL/RECOVER frame body."""
    if len(body) != 4:
        raise RPCProtocolError(
            f"KILL/RECOVER body must be 4 bytes (node:u32), got {len(body)}"
        )
    return int.from_bytes(body, "big")


# -- stream framing ---------------------------------------------------------

async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[bytes]:
    """Read one frame from an asyncio stream.

    Returns the frame bytes (length prefix stripped), ``None`` on a
    clean EOF at a frame boundary, and raises
    :class:`~repro.errors.RPCProtocolError` on an oversized length
    prefix (**before** reading the body, so a hostile prefix cannot
    force an allocation), an undersized one, or a mid-frame disconnect.
    """
    try:
        prefix = await reader.readexactly(_LENGTH_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise RPCProtocolError(
            "connection closed inside a length prefix"
        ) from exc
    length = int.from_bytes(prefix, "big")
    if length > max_frame:
        raise RPCProtocolError(
            f"length prefix {length} exceeds max frame size {max_frame}"
        )
    if length < HEADER_SIZE:
        raise RPCProtocolError(
            f"length prefix {length} is shorter than the frame header"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise RPCProtocolError("connection closed mid-frame") from exc
