"""Multi-node deployment simulator: migration makes IDs global (§1).

Since PR 5 the fleet is replicated and fault-tolerant: consistent-hash
ring routing with virtual nodes, quorum reads/writes with last-write-
wins versioning and read-repair, hinted handoff across outages, and a
fault-injection API (``kill``/``recover``) for chaos experiments.
"""

from repro.distributed.cluster import (
    ClusterReport,
    ClusterSimulator,
    decode_envelope,
    encode_envelope,
)
from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
    migrate_random,
    migrate_to_ring_owners,
)
from repro.distributed.node import Node
from repro.distributed.ring import HashRing

__all__ = [
    "Node",
    "HashRing",
    "ClusterSimulator",
    "ClusterReport",
    "MigrationEvent",
    "UniquenessAudit",
    "audit_id_uniqueness",
    "decode_envelope",
    "encode_envelope",
    "migrate_coldest_to_warmest",
    "migrate_random",
    "migrate_to_ring_owners",
]
