"""Multi-node deployment simulator: migration makes IDs global (§1)."""

from repro.distributed.cluster import ClusterReport, ClusterSimulator
from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
    migrate_random,
)
from repro.distributed.node import Node

__all__ = [
    "Node",
    "ClusterSimulator",
    "ClusterReport",
    "MigrationEvent",
    "UniquenessAudit",
    "audit_id_uniqueness",
    "migrate_coldest_to_warmest",
    "migrate_random",
]
