"""Multi-node deployment simulator: migration makes IDs global (§1).

Since PR 5 the fleet is replicated and fault-tolerant: consistent-hash
ring routing with virtual nodes, quorum reads/writes with last-write-
wins versioning and read-repair, hinted handoff across outages, and a
fault-injection API (``kill``/``recover``) for chaos experiments.
Since PR 6 it also serves over real sockets: ``uuidp serve`` exposes
any target behind the framed asyncio RPC layer of
:mod:`repro.distributed.protocol` / :mod:`repro.distributed.rpc`.
The fleet is also elastic: :mod:`repro.distributed.autoscaler` scales
membership up and down (``add_node``/``decommission``) against an SLO
under deterministic time-varying demand.
"""

from repro.distributed.cluster import (
    ClusterReport,
    ClusterSimulator,
    decode_envelope,
    encode_envelope,
)

# Must come after the cluster import: the autoscaler pulls in
# repro.workloads.demand, whose package __init__ imports the driver,
# which needs repro.distributed.cluster already in sys.modules.
from repro.distributed.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScaleEvent,
    summarize_shards,
)
from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
    migrate_random,
    migrate_to_ring_owners,
)
from repro.distributed.node import Node
from repro.distributed.ring import HashRing
from repro.distributed.rpc import (
    ClientPool,
    NetworkTarget,
    RPCClient,
    RPCServer,
    ServerThread,
    network_flush_and_report,
    network_target_factory,
)

__all__ = [
    "Node",
    "HashRing",
    "ClusterSimulator",
    "ClusterReport",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleEvent",
    "summarize_shards",
    "ClientPool",
    "MigrationEvent",
    "NetworkTarget",
    "RPCClient",
    "RPCServer",
    "ServerThread",
    "UniquenessAudit",
    "audit_id_uniqueness",
    "decode_envelope",
    "encode_envelope",
    "migrate_coldest_to_warmest",
    "migrate_random",
    "migrate_to_ring_owners",
    "network_flush_and_report",
    "network_target_factory",
]
