"""The multi-node cluster simulator (end-to-end experiment E11).

``ClusterSimulator`` stands in for the production fleet in the paper's
introduction: ``n`` nodes, each with an uncoordinated ID generator,
one shared block cache, periodic load-balancing migrations, and an
auditor that reports both raw ID collisions and the corruption they
cause on the read path.

Since PR 5 the fleet is a *replicated, fault-tolerant* serving system:

* **Routing** — a consistent-hash ring with virtual nodes
  (:class:`~repro.distributed.ring.HashRing`) replaces the old static
  ``crc32(key) % n`` routing. ``routing="modulo"`` keeps the legacy
  behaviour as a back-compat shim (single-copy only); see the README
  migration note.
* **Replication** — every write goes to the key's ``replication_factor``
  preference-list nodes; a write is acknowledged once ``write_quorum``
  live replicas accepted it (default: majority of RF).
* **Quorum reads** — ``get`` consults ``read_quorum`` live replicas
  (default: majority), resolves divergence by last-write-wins
  versioning (a per-cluster logical clock stamped into each stored
  *envelope*), and read-repairs any stale/missing contacted replica.
* **Fault injection** — :meth:`kill` makes a node unreachable (state
  preserved: an outage, not a disk wipe); writes it misses are queued
  as *hints* and replayed on :meth:`recover` (hinted handoff).
* **Scans** — the scatter-gather merge is replica-divergence-aware:
  per-key winners are chosen by envelope version, so stale migrated
  copies and dead replicas never surface old rows or resurrect
  deletes.

Envelope format: cluster-managed rows are stored in each node's
MiniRocks as ``MAGIC | version:8 (big-endian) | flag | payload``;
``flag`` distinguishes values from cluster-level tombstones (deletes
are versioned writes, so LWW applies to them too). Rows written
directly to a node (bypassing the cluster) decode as version ``-1``
legacy values and lose to any cluster-managed copy.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
    migrate_to_ring_owners,
)
from repro.distributed.node import Node
from repro.distributed.ring import HashRing
from repro.errors import ClusterUnavailableError, ConfigurationError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.options import Options
from repro.kvstore.storage import SimulatedStorage
from repro.simulation.seeds import derive_seed, rng_for

#: Seed-path labels for durable-node storage and crash-restart RNGs.
_STORAGE_LABEL = 0x57A9
_RESTART_LABEL = 0x9E0B

#: First byte of every cluster-managed envelope.
_ENVELOPE_MAGIC = 0xE4
_FLAG_VALUE = 0
_FLAG_TOMBSTONE = 1
#: Version reported for rows that predate envelopes (direct node
#: writes); they lose LWW to any cluster-managed copy.
_LEGACY_VERSION = -1


def encode_envelope(version: int, flag: int, payload: bytes) -> bytes:
    """Pack one cluster-managed row."""
    return (
        bytes((_ENVELOPE_MAGIC,))
        + version.to_bytes(8, "big")
        + bytes((flag,))
        + payload
    )


def decode_envelope(stored: bytes) -> Tuple[int, int, bytes]:
    """Unpack ``(version, flag, payload)``; legacy raw rows come back
    as ``(_LEGACY_VERSION, _FLAG_VALUE, stored)``.

    This is the *syntactic* decode. Cluster read paths go through
    ``ClusterSimulator._decode``, which additionally rejects versions
    beyond the cluster's logical clock — a raw row that merely starts
    with the magic byte (1 in 256 of random values) would otherwise
    parse as an astronomically-versioned envelope and win LWW forever.
    """
    if len(stored) >= 10 and stored[0] == _ENVELOPE_MAGIC:
        return (
            int.from_bytes(stored[1:9], "big"),
            stored[9],
            stored[10:],
        )
    return _LEGACY_VERSION, _FLAG_VALUE, stored


def majority(replication_factor: int) -> int:
    """The default quorum: a majority of RF (``R + W > RF`` holds when
    both sides use it, so reads see every acknowledged write)."""
    return replication_factor // 2 + 1


@dataclass
class ClusterReport:
    """Aggregate health/corruption report after a simulation run."""

    operations: int
    migrations: int
    audit: UniquenessAudit
    corrupt_block_reads: int
    corrupt_results: int
    cache_cross_file_hits: int
    cache_hit_rate: float
    #: Fault-tolerance counters (all zero on an RF=1, no-chaos run).
    dead_nodes: int = 0
    hints_outstanding: int = 0
    hints_replayed: int = 0
    read_repairs: int = 0
    #: Quorum reads that missed every contacted replica and had to
    #: widen the search (stranded copies after load-policy migration).
    read_escalations: int = 0

    @property
    def corrupted(self) -> bool:
        """Did an ID collision manifest anywhere?"""
        return self.audit.collided or self.corrupt_block_reads > 0


class ClusterSimulator:
    """n uncoordinated MiniRocks nodes with a shared block cache.

    Parameters
    ----------
    num_nodes:
        Fleet size (the paper's ``n``).
    options_factory:
        Builds each node's :class:`Options` — supply the ID algorithm
        and (small!) ``id_universe`` here to make collisions observable.
    cache_blocks:
        Capacity of the shared block cache.
    seed:
        Root seed; node ``i`` derives its own RNG.
    replication_factor:
        Copies per key (``RF``): writes go to the key's first RF
        ring successors.
    read_quorum / write_quorum:
        Replicas a read/write must reach (``R``/``W``); default is a
        majority of RF. ``R + W > RF`` makes reads see every
        acknowledged write even through a single-node outage.
    routing:
        ``"ring"`` (consistent hashing with virtual nodes — the
        default) or ``"modulo"`` (the legacy ``crc32 % n`` shim,
        single-copy only).
    vnodes:
        Virtual nodes per member on the ring.
    durable:
        Give every node its own fault-injecting
        :class:`~repro.kvstore.storage.SimulatedStorage` (seeded per
        node from the cluster seed). Durable fleets run the group-
        commit WAL data path (``options.write_mode``) and support
        ``kill(mode="crash")`` — true process death with WAL-replay
        recovery — in addition to plain outages.
    """

    def __init__(
        self,
        num_nodes: int,
        options_factory: Callable[[], Options],
        cache_blocks: int = 8192,
        seed: int = 0,
        replication_factor: int = 1,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        routing: str = "ring",
        vnodes: int = 64,
        durable: bool = False,
    ):
        if num_nodes < 1:
            raise ConfigurationError("need >= 1 node")
        if routing not in ("ring", "modulo"):
            raise ConfigurationError(
                f"unknown routing {routing!r}; use 'ring' or 'modulo'"
            )
        if not 1 <= replication_factor <= num_nodes:
            raise ConfigurationError(
                f"replication_factor must be in [1, {num_nodes}]"
            )
        if routing == "modulo" and replication_factor != 1:
            raise ConfigurationError(
                "modulo routing is a single-copy back-compat shim; "
                "replication needs routing='ring'"
            )
        default_quorum = majority(replication_factor)
        self.replication_factor = replication_factor
        self.read_quorum = (
            default_quorum if read_quorum is None else read_quorum
        )
        self.write_quorum = (
            default_quorum if write_quorum is None else write_quorum
        )
        for label, quorum in (
            ("read_quorum", self.read_quorum),
            ("write_quorum", self.write_quorum),
        ):
            if not 1 <= quorum <= replication_factor:
                raise ConfigurationError(
                    f"{label} must be in [1, replication_factor]"
                )
        self.cache = BlockCache(cache_blocks)
        self.seed = seed
        self.routing = routing
        #: Durable fleets give every node its own fault-injecting
        #: storage (seeded per node), unlocking ``kill(mode="crash")``.
        self.durable = durable
        self._options_factory = options_factory
        self.nodes: List[Node] = [
            Node(
                name=f"node{i}",
                options=options_factory(),
                cache=self.cache,
                rng=rng_for(seed, i),
                storage=self._make_storage(i),
            )
            for i in range(num_nodes)
        ]
        self._by_name: Dict[str, Node] = {
            node.name: node for node in self.nodes
        }
        self.ring: Optional[HashRing] = (
            HashRing([node.name for node in self.nodes], vnodes=vnodes)
            if routing == "ring"
            else None
        )
        self.migration_events: List[MigrationEvent] = []
        #: (action, node name, operation count at the time) — the
        #: chaos audit trail.
        self.fault_events: List[Tuple[str, str, int]] = []
        #: Writes addressed to dead replicas: node name -> {key: latest
        #: envelope}. Coalesced per key at enqueue time — under LWW
        #: only the newest missed version matters, so a long outage
        #: over a hot Zipfian keyset queues O(distinct keys), not
        #: O(missed writes), and replay does one put per key.
        self._hints: Dict[str, Dict[bytes, bytes]] = {}
        self._operations = 0
        self._clock = 0
        self.read_repairs = 0
        self.read_escalations = 0
        self.hints_replayed = 0

    def _make_storage(self, index: int) -> Optional[SimulatedStorage]:
        if not self.durable:
            return None
        return SimulatedStorage(
            seed=derive_seed(self.seed, _STORAGE_LABEL, index)
        )

    # -- routing -----------------------------------------------------------

    def _next_version(self) -> int:
        self._clock += 1
        return self._clock

    def _decode(self, stored: bytes) -> Tuple[int, int, bytes]:
        """Decode with a structural sanity bound: this cluster never
        issued a version beyond its logical clock, so anything higher
        is a raw row that happens to start with the magic byte — treat
        it as legacy (version −1) rather than letting a forged header
        win LWW forever. (A direct node write that mimics the header
        *within* the clock range remains indistinguishable; cluster-
        managed data should be written through the cluster.)"""
        version, flag, payload = decode_envelope(stored)
        if version > self._clock:
            return _LEGACY_VERSION, _FLAG_VALUE, stored
        return version, flag, payload

    def preference_nodes(self, key: bytes) -> List[Node]:
        """The key's replica set, primary first (alive or not)."""
        if self.ring is None:
            return [self.nodes[zlib.crc32(key) % len(self.nodes)]]
        return [
            self._by_name[name]
            for name in self.ring.preference_list(
                key, self.replication_factor
            )
        ]

    def node_for_key(self, key: bytes) -> Node:
        """Back-compat shim: the key's *primary* owner.

        Pre-ring code used this for single-copy routing; it now
        returns the first node on the ring preference list (or the
        ``crc32 % n`` node under ``routing="modulo"``), regardless of
        aliveness. Replicated reads/writes go through the quorum paths
        instead.
        """
        return self.preference_nodes(key)[0]

    def live_nodes(self) -> List[Node]:
        """The nodes currently alive, in declaration order."""
        return [node for node in self.nodes if node.alive]

    # -- replicated data path ----------------------------------------------

    def _quorum_write(self, key: bytes, envelope: bytes) -> None:
        replicas = self.preference_nodes(key)
        acked = 0
        for node in replicas:
            if node.alive:
                node.put(key, envelope)
                acked += 1
            else:
                self._hints.setdefault(node.name, {})[key] = envelope
        if acked < self.write_quorum:
            raise ClusterUnavailableError(
                f"write to {key!r} reached {acked} live replica(s); "
                f"write_quorum={self.write_quorum}"
            )

    def put(self, key: bytes, value: bytes) -> None:
        """Quorum-replicated LWW write of ``value`` under ``key``."""
        self._operations += 1
        self._quorum_write(
            key, encode_envelope(self._next_version(), _FLAG_VALUE, value)
        )

    def delete(self, key: bytes) -> None:
        """Delete = a versioned cluster-level tombstone write.

        Stored as a regular envelope row (not a MiniRocks tombstone)
        so LWW ordering applies to deletes exactly as to values — a
        delete can beat a stale replica's older value and vice versa.
        """
        self._operations += 1
        self._quorum_write(
            key,
            encode_envelope(self._next_version(), _FLAG_TOMBSTONE, b""),
        )

    def get(self, key: bytes) -> Optional[bytes]:
        """Quorum read with LWW resolution; ``None`` if absent or deleted."""
        self._operations += 1
        replicas = self.preference_nodes(key)
        live = [node for node in replicas if node.alive]
        if len(live) < self.read_quorum:
            raise ClusterUnavailableError(
                f"read of {key!r} has {len(live)} live replica(s); "
                f"read_quorum={self.read_quorum}"
            )
        contacted = live[: self.read_quorum]
        responses = []
        best = None  # (version, flag, payload, envelope)
        for node in contacted:
            stored = node.get(key)
            decoded = None
            if stored is not None:
                version, flag, payload = self._decode(stored)
                decoded = (version, flag, payload, stored)
                if best is None or version > best[0]:
                    best = decoded
            responses.append((node, decoded))
        if best is None:
            # Every contacted replica came up empty. Before answering
            # "missing", escalate: first the rest of the preference
            # list, then the whole live fleet — load-policy SST
            # migration can strand a key's only copies on nodes a
            # quorum read would never consult. A hit found this way is
            # read-repaired onto the quorum replicas, so escalation
            # self-heals placement instead of recurring per read.
            for node in itertools.chain(
                live[self.read_quorum:],
                (
                    other
                    for other in self.nodes
                    if other.alive and other not in replicas
                ),
            ):
                stored = node.get(key)
                if stored is not None:
                    version, flag, payload = self._decode(stored)
                    if best is None or version > best[0]:
                        best = (version, flag, payload, stored)
            if best is None:
                return None
            self.read_escalations += 1
        # Read-repair: bring every contacted stale/missing replica up
        # to the winning version before answering.
        for node, decoded in responses:
            if decoded is None or decoded[0] < best[0]:
                node.put(key, best[3])
                self.read_repairs += 1
        return None if best[1] == _FLAG_TOMBSTONE else best[2]

    def scan(
        self, start: bytes, end: Optional[bytes] = None,
        limit: Optional[int] = None,
    ) -> List[tuple]:
        """Scatter-gather range scan: every live node, one winner per key.

        A contiguous key range spans all nodes (keys are hash-routed),
        and after replication, SST migrations, and node churn a key
        can surface on several nodes at different versions. The merge
        is replica-divergence-aware: per key, the highest envelope
        version wins — so stale migrated copies lose to the owner's
        later writes and cluster-level tombstones keep deletions dead.
        Dead nodes are skipped; with ``replication_factor`` > 1 the
        surviving replicas cover their ranges (an RF=1 scan through an
        outage is best-effort and simply misses the dead node's keys).

        With a ``limit``, per-node windows are only trusted up to the
        smallest key at which any node's window was cut (the
        *frontier*): beyond it a node might still hold an unseen
        winning row or tombstone. If the frontier cuts the result
        short, the coordinator retries with doubled per-node windows —
        the pagination loop a production scatter-gather coordinator
        runs.
        """
        self._operations += 1
        if limit is None:
            merged, _ = self._merge_node_scans(start, end, None)
            return [
                (key, payload)
                for key, (_version, flag, payload) in sorted(merged.items())
                if flag != _FLAG_TOMBSTONE
            ]
        per_node = limit
        while True:
            merged, frontier = self._merge_node_scans(start, end, per_node)
            rows = [
                (key, payload)
                for key, (_version, flag, payload) in sorted(merged.items())
                if flag != _FLAG_TOMBSTONE
                and (frontier is None or key <= frontier)
            ]
            if frontier is None or len(rows) >= limit:
                return rows[:limit]
            per_node *= 2

    def _merge_node_scans(
        self, start: bytes, end: Optional[bytes], per_node: Optional[int]
    ):
        """One scatter-gather round with LWW merge semantics.

        Returns ``(merged, frontier)``: ``merged`` maps each key to
        its winning decoded ``(version, flag, payload)`` (cluster
        tombstones included), ``frontier`` is the largest key up to
        which **every** live node's contribution is complete (None
        when no node's window was cut).
        """
        merged: Dict[bytes, Tuple[int, int, bytes]] = {}
        frontier: Optional[bytes] = None
        # Ask for one extra live row so a full window is
        # distinguishable from an exactly-exhausted node.
        request = None if per_node is None else per_node + 1
        for node in self.nodes:
            if not node.alive:
                continue
            # include_tombstones: a *node-level* MiniRocks tombstone
            # (legacy direct delete) must reach the merge, or a stale
            # migrated copy would resurrect the key.
            rows = node.scan(start, end, request, include_tombstones=True)
            if request is not None:
                live = sum(1 for _, v in rows if v != TOMBSTONE)
                if live >= request:
                    last_key = rows[-1][0]
                    if frontier is None or last_key < frontier:
                        frontier = last_key
            for key, stored in rows:
                if stored == TOMBSTONE:
                    decoded = (_LEGACY_VERSION, _FLAG_TOMBSTONE, b"")
                else:
                    decoded = self._decode(stored)
                current = merged.get(key)
                # LWW by version; the seed's owner-wins rule survives
                # as the tie-break for *legacy* rows only (direct node
                # writes, all version −1). Enveloped ties are skipped
                # on purpose: equal versions mean the same cluster
                # write, so the copies are byte-identical and a ring
                # lookup per tie would only slow replicated scans.
                if (
                    current is None
                    or decoded[0] > current[0]
                    or (
                        decoded[0] == current[0]
                        and decoded[0] == _LEGACY_VERSION
                        and self.node_for_key(key) is node
                    )
                ):
                    merged[key] = decoded
        return merged, frontier

    # -- fault injection ----------------------------------------------------

    def _resolve(self, node: Union[Node, str, int]) -> Node:
        if isinstance(node, Node):
            return node
        if isinstance(node, int):
            if not 0 <= node < len(self.nodes):
                raise ConfigurationError(
                    f"node index {node} out of range"
                )
            return self.nodes[node]
        found = self._by_name.get(node)
        if found is None:
            raise ConfigurationError(f"unknown node {node!r}")
        return found

    def kill(
        self, node: Union[Node, str, int], mode: str = "outage"
    ) -> Node:
        """Take ``node`` down. Two failure models:

        * ``mode="outage"`` (default, the pre-durability behaviour):
          the node is unreachable but its process state — memtable
          included — is preserved; it resumes exactly where it was.
        * ``mode="crash"`` (durable fleets only): process death. The
          memtable is lost, unsynced storage bytes become a torn tail,
          and :meth:`recover` must rebuild the store by WAL replay —
          so only writes that were durable *on that node* survive
          locally, and the cluster's zero-lost-acked-writes guarantee
          rests on the quorum, exactly as in production.

        Either way quorum reads/writes, scans, and the balancer skip
        the node, and writes it misses queue as hints.
        """
        if mode not in ("outage", "crash"):
            raise ConfigurationError(
                f"unknown kill mode {mode!r}; use 'outage' or 'crash'"
            )
        target = self._resolve(node)
        if not target.alive:
            raise ConfigurationError(f"{target.name} is already dead")
        if mode == "crash":
            if target.storage is None:
                raise ConfigurationError(
                    "kill(mode='crash') needs a durable cluster "
                    "(ClusterSimulator(durable=True)); in-memory nodes "
                    "can only suffer outages"
                )
            target.crash()
        target.alive = False
        action = "crash" if mode == "crash" else "kill"
        self.fault_events.append((action, target.name, self._operations))
        return target

    def recover(
        self, node: Union[Node, str, int], replay_hints: bool = True
    ) -> int:
        """Bring a dead node back; replay its hinted-handoff queue.

        A *crashed* node first restarts its storage (torn-tail
        semantics applied) and reopens its store — committed SSTs plus
        WAL replay, with a deterministically re-seeded ID generator —
        before hints land on top. An *outage* node simply resumes.

        The queue holds one latest envelope per key (coalesced at
        enqueue time) and replays with an LWW guard (a hint never
        overwrites a newer local row), so replay is idempotent and
        safe after repeated kill/recover cycles. Pass
        ``replay_hints=False`` to model lost hints (the queue is
        discarded) — the node then serves stale data until read-repair
        or :meth:`repair_replicas` converges it. Returns the number of
        hints applied.
        """
        target = self._resolve(node)
        if target.alive:
            raise ConfigurationError(f"{target.name} is already alive")
        if target.storage is not None and target.storage.crashed:
            index = self.nodes.index(target)
            target.reopen(
                rng=rng_for(
                    self.seed, index, _RESTART_LABEL,
                    target.storage.restarts,
                )
            )
        target.alive = True
        hints = self._hints.pop(target.name, {})
        applied = 0
        if replay_hints:
            for key, envelope in hints.items():
                current = target.get(key)
                if (
                    current is None
                    or self._decode(current)[0]
                    < decode_envelope(envelope)[0]
                ):
                    target.put(key, envelope)
                    applied += 1
            self.hints_replayed += applied
        self.fault_events.append(
            ("recover", target.name, self._operations)
        )
        return applied

    def hints_outstanding(self) -> int:
        """Distinct keys still queued for dead replicas."""
        return sum(len(queue) for queue in self._hints.values())

    # -- cluster operations --------------------------------------------------

    def rebalance(
        self, max_moves: int = 1, policy: Optional[str] = None
    ) -> List[MigrationEvent]:
        """Run the balancer once.

        ``policy="load"`` moves files from the most- to the
        least-loaded live node (the seed behaviour);
        ``policy="ring"`` moves misplaced SSTs toward their key
        range's preference-list owners. The default is ``"load"`` for
        single-copy fleets and ``"ring"`` for replicated ring
        clusters: load-chasing migration can strand a replica's SST on
        a node outside the key's preference list, where quorum reads
        no longer look first — placement-preserving maintenance is the
        only safe default once RF > 1 (reads that do miss every
        contacted replica escalate and self-heal, see :meth:`get`, but
        that is the recovery path, not the plan). With fewer than two
        live nodes the balancer stands down (returns ``[]``) — outages
        must not turn routine maintenance into a crash.
        """
        if policy is None:
            policy = (
                "ring"
                if self.ring is not None and self.replication_factor > 1
                else "load"
            )
        live = self.live_nodes()
        if len(live) < 2:
            return []
        rng = rng_for(self.seed, 0xB417, len(self.migration_events))
        if policy == "ring":
            events = migrate_to_ring_owners(
                live, self.preference_nodes, rng, max_moves=max_moves
            )
        elif policy == "load":
            events = migrate_coldest_to_warmest(
                live, rng, max_moves=max_moves
            )
        else:
            raise ConfigurationError(
                f"unknown rebalance policy {policy!r}"
            )
        self.migration_events.extend(events)
        return events

    def repair_replicas(self) -> int:
        """Full anti-entropy sweep; returns the number of copies fixed.

        Scatter-gathers every live node's rows, picks the LWW winner
        per key, and writes it to any *live* preference-list replica
        that is missing it or holds an older version. This is the
        convergence pass a real system runs after membership changes
        (see :meth:`add_node`) or lost hints; dead nodes catch up via
        hinted handoff / read-repair after they return.
        """
        merged, _ = self._merge_node_scans(b"", None, None)
        repaired = 0
        for key, (version, flag, payload) in merged.items():
            if version == _LEGACY_VERSION:
                continue  # direct node writes are not cluster-managed
            envelope = encode_envelope(version, flag, payload)
            for node in self.preference_nodes(key):
                if not node.alive:
                    continue
                current = node.get(key)
                if (
                    current is None
                    or self._decode(current)[0] < version
                ):
                    node.put(key, envelope)
                    repaired += 1
        return repaired

    def add_node(self, name: Optional[str] = None) -> Node:
        """Join a fresh node to the ring and re-converge replicas.

        The new member claims ~``1/(n+1)`` of the key space (ring
        stability); :meth:`repair_replicas` then copies the rows whose
        preference lists now include it. Requires ``routing="ring"``.
        """
        if self.ring is None:
            raise ConfigurationError(
                "add_node requires routing='ring' (the modulo shim "
                "remaps nearly every key on membership change)"
            )
        index = len(self.nodes)
        node = Node(
            name=name or f"node{index}",
            options=self._options_factory(),
            cache=self.cache,
            rng=rng_for(self.seed, index),
            storage=self._make_storage(index),
        )
        if node.name in self._by_name:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        self._by_name[node.name] = node
        self.ring.add_node(node.name)
        self.repair_replicas()
        return node

    def decommission(self, node: Union[Node, str, int]) -> Node:
        """Retire a live node from the ring with a hint-safe drain.

        The inverse of :meth:`add_node`, used by the autoscaler's
        scale-down path (:mod:`repro.distributed.autoscaler`). The
        drain sequence keeps every acked write readable throughout:

        1. **Membership first** — the node leaves the ring, so new
           writes route around it and its arcs fall to ring
           successors.
        2. **Hint safety** — any hinted-handoff envelopes queued *for*
           the leaver are re-homed through the keys' current
           preference lists instead of retiring with it (written to
           live owners under the LWW guard, or re-queued as hints for
           owners that are currently down).
        3. **Drain** — :meth:`repair_replicas` runs while the leaver
           is still readable, copying its rows to their new owners.
        4. **Retire** — only then is the node marked dead, so quorum
           paths, scans, and the balancer skip it for good.

        Refuses to shrink below ``replication_factor`` live nodes and
        records a ``("decommission", name, ops)`` fault event.
        """
        if self.ring is None:
            raise ConfigurationError(
                "decommission requires routing='ring' (the modulo "
                "shim remaps nearly every key on membership change)"
            )
        target = self._resolve(node)
        if not target.alive:
            raise ConfigurationError(
                f"{target.name} is dead; decommission drains a live "
                "node (recover it first, or leave it to hinted handoff)"
            )
        remaining = len(self.live_nodes()) - 1
        if remaining < self.replication_factor:
            raise ConfigurationError(
                f"decommissioning {target.name} would leave "
                f"{remaining} live node(s), fewer than "
                f"replication_factor={self.replication_factor}"
            )
        self.ring.remove_node(target.name)
        for key, envelope in self._hints.pop(target.name, {}).items():
            version = decode_envelope(envelope)[0]
            for owner in self.preference_nodes(key):
                if owner.alive:
                    current = owner.get(key)
                    if (
                        current is None
                        or self._decode(current)[0] < version
                    ):
                        owner.put(key, envelope)
                else:
                    queue = self._hints.setdefault(owner.name, {})
                    queued = queue.get(key)
                    if (
                        queued is None
                        or decode_envelope(queued)[0] < version
                    ):
                        queue[key] = envelope
        self.repair_replicas()
        target.alive = False
        self.fault_events.append(
            ("decommission", target.name, self._operations)
        )
        return target

    def flush_all(self) -> None:
        """Flush every node's memtable (dead nodes included — their
        buffered writes still mint file IDs for the audit)."""
        for node in self.nodes:
            node.db.flush()

    def run_workload(
        self,
        operations,
        rebalance_every: Optional[int] = None,
        moves_per_rebalance: int = 2,
    ) -> None:
        """Drive a sequence of ``(op, key, value)`` operations.

        ``op`` is ``"put" | "get" | "delete" | "rmw" | "scan"``; the
        composite-op semantics (``rmw`` = get + put pair, ``scan`` =
        up to ``int(value)`` rows from ``key``) come from the shared
        executor :func:`repro.workloads.driver.execute_op`. With
        ``rebalance_every=k`` the balancer runs after every k logical
        ops — interleaving migrations with traffic, as production
        does. For chaos schedules (kill/recover at fixed op ticks) use
        the :class:`~repro.workloads.driver.WorkloadDriver`.
        """
        # Deferred import: workloads.driver imports this module.
        from repro.workloads.driver import execute_op

        for index, (op, key, value) in enumerate(operations, start=1):
            execute_op(self, op, key, value)
            if (
                rebalance_every is not None
                and index % rebalance_every == 0
                and len(self.live_nodes()) >= 2
            ):
                self.rebalance(max_moves=moves_per_rebalance)

    # -- reporting ---------------------------------------------------------

    def report(self) -> ClusterReport:
        """Collect the cluster-wide collision/corruption report."""
        audit = audit_id_uniqueness(self.nodes)
        return ClusterReport(
            operations=self._operations,
            migrations=len(self.migration_events),
            audit=audit,
            corrupt_block_reads=sum(
                node.db.stats.corrupt_block_reads for node in self.nodes
            ),
            corrupt_results=sum(
                node.db.stats.corrupt_results for node in self.nodes
            ),
            cache_cross_file_hits=self.cache.stats.cross_file_hits,
            cache_hit_rate=self.cache.stats.hit_rate,
            dead_nodes=sum(1 for node in self.nodes if not node.alive),
            hints_outstanding=self.hints_outstanding(),
            hints_replayed=self.hints_replayed,
            read_repairs=self.read_repairs,
            read_escalations=self.read_escalations,
        )

    def total_files_assigned(self) -> int:
        """IDs minted across the fleet so far."""
        return sum(len(node.db.assigned_file_ids()) for node in self.nodes)
