"""The multi-node cluster simulator (end-to-end experiment E11).

``ClusterSimulator`` stands in for the production fleet in the paper's
introduction: ``n`` nodes, each with an uncoordinated ID generator,
one shared block cache, periodic load-balancing migrations, and an
auditor that reports both raw ID collisions and the corruption they
cause on the read path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
)
from repro.distributed.node import Node
from repro.errors import ConfigurationError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.options import Options
from repro.simulation.seeds import rng_for


@dataclass
class ClusterReport:
    """Aggregate health/corruption report after a simulation run."""

    operations: int
    migrations: int
    audit: UniquenessAudit
    corrupt_block_reads: int
    corrupt_results: int
    cache_cross_file_hits: int
    cache_hit_rate: float

    @property
    def corrupted(self) -> bool:
        """Did an ID collision manifest anywhere?"""
        return self.audit.collided or self.corrupt_block_reads > 0


class ClusterSimulator:
    """n uncoordinated MiniRocks nodes with a shared block cache.

    Parameters
    ----------
    num_nodes:
        Fleet size (the paper's ``n``).
    options_factory:
        Builds each node's :class:`Options` — supply the ID algorithm
        and (small!) ``id_universe`` here to make collisions observable.
    cache_blocks:
        Capacity of the shared block cache.
    seed:
        Root seed; node ``i`` derives its own RNG.
    """

    def __init__(
        self,
        num_nodes: int,
        options_factory: Callable[[], Options],
        cache_blocks: int = 8192,
        seed: int = 0,
    ):
        if num_nodes < 1:
            raise ConfigurationError("need >= 1 node")
        self.cache = BlockCache(cache_blocks)
        self.seed = seed
        self.nodes: List[Node] = [
            Node(
                name=f"node{i}",
                options=options_factory(),
                cache=self.cache,
                rng=rng_for(seed, i),
            )
            for i in range(num_nodes)
        ]
        self.migration_events: List[MigrationEvent] = []
        self._operations = 0

    # -- routing -----------------------------------------------------------

    def node_for_key(self, key: bytes) -> Node:
        """Static hash routing of keys to nodes.

        Uses CRC32 rather than the builtin ``hash``, whose per-process
        salting (``PYTHONHASHSEED``) would make routing — and therefore
        every simulated collision — unreproducible across runs.
        """
        return self.nodes[zlib.crc32(key) % len(self.nodes)]

    def put(self, key: bytes, value: bytes) -> None:
        self.node_for_key(key).put(key, value)
        self._operations += 1

    def get(self, key: bytes) -> Optional[bytes]:
        self._operations += 1
        return self.node_for_key(key).get(key)

    def delete(self, key: bytes) -> None:
        self.node_for_key(key).delete(key)
        self._operations += 1

    def scan(
        self, start: bytes, end: Optional[bytes] = None,
        limit: Optional[int] = None,
    ) -> List[tuple]:
        """Scatter-gather range scan: every node, one winner per key.

        Keys are hash-routed, so a contiguous key range spans all
        nodes. After SST migrations a key can surface on several
        nodes; the routed owner's row — tombstones included, so
        deletions aren't resurrected by stale copies — is
        authoritative (it sees every write since the move), with
        migrated copies only filling in for keys the owner no longer
        holds at all.

        With a ``limit``, per-node windows are only trusted up to the
        smallest key at which any node's window was cut (the
        *frontier*): beyond it a node might still hold an unseen
        authoritative row or tombstone. If the frontier cuts the
        result short, the coordinator retries with doubled per-node
        windows — the pagination loop a production scatter-gather
        coordinator runs.
        """
        self._operations += 1
        if limit is None:
            merged, _ = self._merge_node_scans(start, end, None)
            return [
                (key, value)
                for key, value in sorted(merged.items())
                if value != TOMBSTONE
            ]
        per_node = limit
        while True:
            merged, frontier = self._merge_node_scans(start, end, per_node)
            rows = [
                (key, value)
                for key, value in sorted(merged.items())
                if value != TOMBSTONE
                and (frontier is None or key <= frontier)
            ]
            if frontier is None or len(rows) >= limit:
                return rows[:limit]
            per_node *= 2

    def _merge_node_scans(
        self, start: bytes, end: Optional[bytes], per_node: Optional[int]
    ):
        """One scatter-gather round with owner-wins merge semantics.

        Returns ``(merged, frontier)``: ``merged`` maps each key to
        its winning value (tombstones included), ``frontier`` is the
        largest key up to which **every** node's contribution is
        complete (None when no node's window was cut).
        """
        merged: Dict[bytes, bytes] = {}
        frontier: Optional[bytes] = None
        # Ask for one extra live row so a full window is
        # distinguishable from an exactly-exhausted node.
        request = None if per_node is None else per_node + 1
        for node in self.nodes:
            rows = node.scan(start, end, request, include_tombstones=True)
            if request is not None:
                live = sum(1 for _, v in rows if v != TOMBSTONE)
                if live >= request:
                    last_key = rows[-1][0]
                    if frontier is None or last_key < frontier:
                        frontier = last_key
            for key, value in rows:
                if self.node_for_key(key) is node:
                    merged[key] = value  # the owner always wins
                elif key not in merged:
                    merged[key] = value
        return merged, frontier

    # -- cluster operations --------------------------------------------------

    def rebalance(self, max_moves: int = 1) -> List[MigrationEvent]:
        """Run the load balancer once."""
        events = migrate_coldest_to_warmest(
            self.nodes, rng_for(self.seed, 0xB417, len(self.migration_events)),
            max_moves=max_moves,
        )
        self.migration_events.extend(events)
        return events

    def flush_all(self) -> None:
        """Flush every node's memtable."""
        for node in self.nodes:
            node.db.flush()

    def run_workload(
        self,
        operations,
        rebalance_every: Optional[int] = None,
        moves_per_rebalance: int = 2,
    ) -> None:
        """Drive a sequence of ``(op, key, value)`` operations.

        ``op`` is ``"put" | "get" | "delete" | "rmw" | "scan"``; the
        composite-op semantics (``rmw`` = get + put pair, ``scan`` =
        up to ``int(value)`` rows from ``key``) come from the shared
        executor :func:`repro.workloads.driver.execute_op`. With
        ``rebalance_every=k`` the balancer runs after every k logical
        ops — interleaving migrations with traffic, as production
        does.
        """
        # Deferred import: workloads.driver imports this module.
        from repro.workloads.driver import execute_op

        for index, (op, key, value) in enumerate(operations, start=1):
            execute_op(self, op, key, value)
            if (
                rebalance_every is not None
                and index % rebalance_every == 0
                and len(self.nodes) >= 2
            ):
                self.rebalance(max_moves=moves_per_rebalance)

    # -- reporting ---------------------------------------------------------

    def report(self) -> ClusterReport:
        """Collect the cluster-wide collision/corruption report."""
        audit = audit_id_uniqueness(self.nodes)
        return ClusterReport(
            operations=self._operations,
            migrations=len(self.migration_events),
            audit=audit,
            corrupt_block_reads=sum(
                node.db.stats.corrupt_block_reads for node in self.nodes
            ),
            corrupt_results=sum(
                node.db.stats.corrupt_results for node in self.nodes
            ),
            cache_cross_file_hits=self.cache.stats.cross_file_hits,
            cache_hit_rate=self.cache.stats.hit_rate,
        )

    def total_files_assigned(self) -> int:
        """IDs minted across the fleet so far."""
        return sum(len(node.db.assigned_file_ids()) for node in self.nodes)
