"""The multi-node cluster simulator (end-to-end experiment E11).

``ClusterSimulator`` stands in for the production fleet in the paper's
introduction: ``n`` nodes, each with an uncoordinated ID generator,
one shared block cache, periodic load-balancing migrations, and an
auditor that reports both raw ID collisions and the corruption they
cause on the read path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.distributed.migration import (
    MigrationEvent,
    UniquenessAudit,
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
)
from repro.distributed.node import Node
from repro.errors import ConfigurationError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.options import Options
from repro.simulation.seeds import rng_for


@dataclass
class ClusterReport:
    """Aggregate health/corruption report after a simulation run."""

    operations: int
    migrations: int
    audit: UniquenessAudit
    corrupt_block_reads: int
    corrupt_results: int
    cache_cross_file_hits: int
    cache_hit_rate: float

    @property
    def corrupted(self) -> bool:
        """Did an ID collision manifest anywhere?"""
        return self.audit.collided or self.corrupt_block_reads > 0


class ClusterSimulator:
    """n uncoordinated MiniRocks nodes with a shared block cache.

    Parameters
    ----------
    num_nodes:
        Fleet size (the paper's ``n``).
    options_factory:
        Builds each node's :class:`Options` — supply the ID algorithm
        and (small!) ``id_universe`` here to make collisions observable.
    cache_blocks:
        Capacity of the shared block cache.
    seed:
        Root seed; node ``i`` derives its own RNG.
    """

    def __init__(
        self,
        num_nodes: int,
        options_factory: Callable[[], Options],
        cache_blocks: int = 8192,
        seed: int = 0,
    ):
        if num_nodes < 1:
            raise ConfigurationError("need >= 1 node")
        self.cache = BlockCache(cache_blocks)
        self.seed = seed
        self.nodes: List[Node] = [
            Node(
                name=f"node{i}",
                options=options_factory(),
                cache=self.cache,
                rng=rng_for(seed, i),
            )
            for i in range(num_nodes)
        ]
        self.migration_events: List[MigrationEvent] = []
        self._operations = 0

    # -- routing -----------------------------------------------------------

    def node_for_key(self, key: bytes) -> Node:
        """Static hash routing of keys to nodes.

        Uses CRC32 rather than the builtin ``hash``, whose per-process
        salting (``PYTHONHASHSEED``) would make routing — and therefore
        every simulated collision — unreproducible across runs.
        """
        return self.nodes[zlib.crc32(key) % len(self.nodes)]

    def put(self, key: bytes, value: bytes) -> None:
        self.node_for_key(key).put(key, value)
        self._operations += 1

    def get(self, key: bytes) -> Optional[bytes]:
        self._operations += 1
        return self.node_for_key(key).get(key)

    def delete(self, key: bytes) -> None:
        self.node_for_key(key).delete(key)
        self._operations += 1

    # -- cluster operations --------------------------------------------------

    def rebalance(self, max_moves: int = 1) -> List[MigrationEvent]:
        """Run the load balancer once."""
        events = migrate_coldest_to_warmest(
            self.nodes, rng_for(self.seed, 0xB417, len(self.migration_events)),
            max_moves=max_moves,
        )
        self.migration_events.extend(events)
        return events

    def flush_all(self) -> None:
        """Flush every node's memtable."""
        for node in self.nodes:
            node.db.flush()

    def run_workload(
        self,
        operations,
        rebalance_every: Optional[int] = None,
        moves_per_rebalance: int = 2,
    ) -> None:
        """Drive a sequence of ``(op, key, value)`` operations.

        ``op`` is ``"put" | "get" | "delete"``. With
        ``rebalance_every=k`` the balancer runs after every k ops —
        interleaving migrations with traffic, as production does.
        """
        for index, (op, key, value) in enumerate(operations, start=1):
            if op == "put":
                self.put(key, value)
            elif op == "get":
                self.get(key)
            elif op == "delete":
                self.delete(key)
            else:
                raise ConfigurationError(f"unknown workload op {op!r}")
            if (
                rebalance_every is not None
                and index % rebalance_every == 0
                and len(self.nodes) >= 2
            ):
                self.rebalance(max_moves=moves_per_rebalance)

    # -- reporting ---------------------------------------------------------

    def report(self) -> ClusterReport:
        """Collect the cluster-wide collision/corruption report."""
        audit = audit_id_uniqueness(self.nodes)
        return ClusterReport(
            operations=self._operations,
            migrations=len(self.migration_events),
            audit=audit,
            corrupt_block_reads=sum(
                node.db.stats.corrupt_block_reads for node in self.nodes
            ),
            corrupt_results=sum(
                node.db.stats.corrupt_results for node in self.nodes
            ),
            cache_cross_file_hits=self.cache.stats.cross_file_hits,
            cache_hit_rate=self.cache.stats.hit_rate,
        )

    def total_files_assigned(self) -> int:
        """IDs minted across the fleet so far."""
        return sum(len(node.db.assigned_file_ids()) for node in self.nodes)
