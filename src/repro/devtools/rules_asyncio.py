"""REPRO3xx: asyncio hygiene.

The serving path (``repro.distributed.rpc``) multiplexes every
connection on one event loop; a single blocking call stalls all of
them. Storage work is supposed to go through the loop's thread
executor (``run_in_executor``) — these rules catch the direct calls
that bypass it:

* **REPRO301** — blocking calls lexically inside ``async def``:
  ``time.sleep``, bare ``open``, ``os.fsync``/``fdatasync``/``sync``/
  ``replace``/``rename``/``remove``/``unlink``, any ``subprocess.*``
  call, and the Path convenience IO methods (``read_text`` etc.).
  Nested synchronous ``def``s are skipped: they are exactly the bodies
  handed to the executor.
* **REPRO302** — ``asyncio.get_event_loop()``: deprecated,
  context-dependent, and a classic source of "attached to a different
  loop" bugs. Use ``get_running_loop()`` inside coroutines or
  ``new_event_loop()`` when owning the loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleUnit, ProjectContext
from repro.devtools.registry import (
    Finding,
    Rule,
    register,
    walk_skipping_nested_functions,
)

_BLOCKING_CHAINS = {
    "time.sleep": "time.sleep() blocks the event loop; use the "
    "module's async sleep seam (await _sleep(...))",
    "os.fsync": "os.fsync() blocks the event loop; route durability "
    "through the storage executor",
    "os.fdatasync": "os.fdatasync() blocks the event loop; route "
    "durability through the storage executor",
    "os.sync": "os.sync() blocks the event loop",
    "os.replace": "os.replace() is sync file IO; run it in the "
    "executor",
    "os.rename": "os.rename() is sync file IO; run it in the executor",
    "os.remove": "os.remove() is sync file IO; run it in the executor",
    "os.unlink": "os.unlink() is sync file IO; run it in the executor",
}

_BLOCKING_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


def _dotted(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class BlockingInAsyncRule(Rule):
    """REPRO301: no blocking sleep/IO calls inside ``async def`` bodies."""
    code = "REPRO301"
    name = "blocking-in-async"
    family = "REPRO3"
    summary = (
        "no blocking calls (time.sleep, sync file IO, fsync, "
        "subprocess) inside async def"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per blocking call inside an ``async def``."""
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(unit, node)

    def _check_coroutine(
        self, unit: ModuleUnit, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in walk_skipping_nested_functions(func):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain in _BLOCKING_CHAINS:
                yield self.finding(
                    unit.path, node, _BLOCKING_CHAINS[chain]
                )
            elif chain.startswith("subprocess."):
                yield self.finding(
                    unit.path,
                    node,
                    f"{chain}() blocks the event loop; use "
                    "asyncio.create_subprocess_exec or the executor",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "open"
            ):
                yield self.finding(
                    unit.path,
                    node,
                    "open() is sync file IO inside a coroutine; run "
                    "it in the executor",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    unit.path,
                    node,
                    f".{node.func.attr}() is sync file IO inside a "
                    "coroutine; run it in the executor",
                )


@register
class GetEventLoopRule(Rule):
    """REPRO302: ``get_running_loop`` beats deprecated ``get_event_loop``."""
    code = "REPRO302"
    name = "get-event-loop"
    family = "REPRO3"
    summary = (
        "no asyncio.get_event_loop(); use get_running_loop() or own "
        "the loop explicitly"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per ``asyncio.get_event_loop()`` call."""
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Call)
                and _dotted(node.func) == "asyncio.get_event_loop"
            ):
                yield self.finding(
                    unit.path,
                    node,
                    "asyncio.get_event_loop() is deprecated and "
                    "context-dependent; use asyncio.get_running_loop() "
                    "inside coroutines or asyncio.new_event_loop() "
                    "when owning the loop",
                )
