"""``python -m repro.devtools`` — run the lint engine."""

from repro.devtools import main

if __name__ == "__main__":
    raise SystemExit(main())
