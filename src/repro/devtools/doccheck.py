"""Documentation smoke-checker: the fenced examples must still run.

``uuidp doccheck`` extracts every fenced ``bash``/``python`` code
block from the given markdown files (default: ``README.md`` plus
``docs/*.md``) and executes each one in a subprocess from the repo
root. The point is *rot detection*, not output validation — a block
**fails** only when it shows one of the signatures of a stale
example:

* exit code 126/127 (command missing or not executable);
* an import that no longer resolves (``ModuleNotFoundError``,
  ``No module named``, ``ImportError``);
* code that no longer parses (``SyntaxError``);
* argparse rot — the documented flag or subcommand is gone
  (``unrecognized arguments``, ``invalid choice``, a newly required
  argument).

Everything else a real command might legitimately do in a sandboxed
checkout — time out, hit a closed port, exit nonzero on a red
experiment — is **tolerated**: it proves the words still map onto the
code, which is all a smoke check can promise.

Blocks that cannot meaningfully run standalone (a foreground server,
an example requiring external state) opt out with an HTML comment on
any line above the fence::

    <!-- doccheck: skip (blocks serving forever) -->
    ```bash
    uuidp serve --port 7417 ...
    ```

Execution environment: ``PYTHONPATH`` gets the checkout's ``src``
prepended and a ``uuidp`` shim (delegating to ``python -m
repro.cli``) is placed on ``PATH`` — so docs written against the
installed entry point check out in a bare tree and in CI without an
install step. ``REPRO_DOCCHECK_TIMEOUT`` caps seconds per block
(default 60; rot signatures surface in the first few).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LintError

#: Markdown info strings treated as runnable, normalized.
_LANGS = {
    "bash": "bash",
    "sh": "bash",
    "shell": "bash",
    "python": "python",
    "py": "python",
}

#: Output substrings that mark a block as rotted (see module docstring).
ROT_SIGNATURES: Tuple[str, ...] = (
    "command not found",
    "ModuleNotFoundError",
    "No module named",
    "ImportError",
    "SyntaxError",
    "unrecognized arguments",
    "invalid choice",
    "the following arguments are required",
)

#: Exit codes that mean the command itself was missing/unrunnable.
_ROT_EXIT_CODES = frozenset({126, 127})

_FENCE_RE = re.compile(r"^(`{3,})\s*([A-Za-z0-9_+-]*)\s*$")
# Anchored at line start so prose *mentioning* the marker (in backticks,
# mid-sentence) does not opt out the next real block.
_SKIP_RE = re.compile(
    r"^\s*<!--\s*doccheck:\s*skip(?:\s*\((?P<reason>[^)]*)\))?\s*-->"
)

DEFAULT_TIMEOUT = 60.0


@dataclass(frozen=True)
class CodeBlock:
    """One fenced example: where it lives and what it claims to run."""

    path: str
    line: int
    lang: str
    code: str
    skip_reason: Optional[str] = None

    @property
    def runnable(self) -> bool:
        """True when the info string names a language we execute."""
        return self.lang in _LANGS.values() and self.skip_reason is None


@dataclass(frozen=True)
class BlockResult:
    """The verdict on one block: ``ok``, ``tolerated`` (ran but hit a
    sandbox limit — timeout, closed port, red exit), ``skipped``
    (opted out), ``ignored`` (not a runnable language), or ``failed``
    (a rot signature; see :data:`ROT_SIGNATURES`)."""

    block: CodeBlock
    status: str
    detail: str = ""

    def location(self) -> str:
        """``path:line`` of the opening fence — the clickable form."""
        return f"{self.block.path}:{self.block.line}"


def extract_blocks(text: str, path: str) -> List[CodeBlock]:
    """All fenced code blocks in ``text``, skip markers resolved.

    A ``doccheck: skip`` comment anywhere between two fences applies
    to the next fence that opens.
    """
    blocks: List[CodeBlock] = []
    fence: Optional[str] = None
    lang = ""
    start = 0
    body: List[str] = []
    skip_reason: Optional[str] = None
    for number, line in enumerate(text.splitlines(), start=1):
        if fence is None:
            marker = _SKIP_RE.search(line)
            if marker:
                skip_reason = marker.group("reason") or "marked skip"
                continue
            match = _FENCE_RE.match(line)
            if match:
                fence, info = match.group(1), match.group(2).lower()
                lang = _LANGS.get(info, info)
                start = number
                body = []
        elif line.strip() == fence:
            blocks.append(
                CodeBlock(
                    path=path,
                    line=start,
                    lang=lang,
                    code="\n".join(body) + "\n",
                    skip_reason=(
                        skip_reason if lang in _LANGS.values() else None
                    ),
                )
            )
            fence = None
            skip_reason = None
        else:
            body.append(line)
    return blocks


def _classify(returncode: int, output: str) -> Tuple[str, str]:
    for signature in ROT_SIGNATURES:
        if signature in output:
            return "failed", f"rot signature {signature!r}"
    if returncode in _ROT_EXIT_CODES:
        return "failed", f"exit {returncode} (command missing)"
    if returncode != 0:
        return "tolerated", f"exit {returncode} (not a rot signature)"
    return "ok", ""


def _write_uuidp_shim(directory: str) -> None:
    shim = Path(directory) / "uuidp"
    shim.write_text(
        f'#!/bin/sh\nexec "{sys.executable}" -m repro.cli "$@"\n'
    )
    shim.chmod(0o755)


def _block_env(src_root: str, shim_dir: str) -> Dict[str, str]:
    env = dict(os.environ)
    pythonpath = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + (os.pathsep + pythonpath if pythonpath else "")
    )
    env["PATH"] = shim_dir + os.pathsep + env.get("PATH", "")
    return env


def run_block(
    block: CodeBlock,
    cwd: str,
    env: Dict[str, str],
    timeout: float,
) -> BlockResult:
    """Execute one block and classify the outcome (never raises)."""
    if block.skip_reason is not None:
        return BlockResult(block, "skipped", block.skip_reason)
    if not block.runnable:
        return BlockResult(block, "ignored", f"lang {block.lang!r}")
    if block.lang == "bash":
        argv = ["bash", "-c", block.code]
    else:
        argv = [sys.executable, "-c", block.code]
    try:
        proc = subprocess.run(
            argv,
            cwd=cwd,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            timeout=timeout,
            text=True,
            errors="replace",
        )
    except subprocess.TimeoutExpired as exc:
        output = exc.output or ""
        if isinstance(output, bytes):
            output = output.decode("utf-8", errors="replace")
        for signature in ROT_SIGNATURES:
            if signature in output:
                return BlockResult(
                    block, "failed", f"rot signature {signature!r}"
                )
        return BlockResult(
            block, "tolerated", f"timeout after {timeout:.0f}s"
        )
    status, detail = _classify(proc.returncode, proc.stdout or "")
    return BlockResult(block, status, detail)


@dataclass
class DocReport:
    """Outcome of one doccheck run over a set of markdown files."""

    results: List[BlockResult]
    files_checked: int

    @property
    def failures(self) -> List[BlockResult]:
        """The blocks that showed a rot signature."""
        return [r for r in self.results if r.status == "failed"]

    @property
    def exit_code(self) -> int:
        """1 if any block rotted, else 0."""
        return 1 if self.failures else 0

    def counts(self) -> Dict[str, int]:
        """Result totals per status."""
        totals: Dict[str, int] = {}
        for result in self.results:
            totals[result.status] = totals.get(result.status, 0) + 1
        return totals

    def render(self, verbose: bool = False) -> str:
        """Human-readable report; ``verbose`` lists every block."""
        lines: List[str] = []
        for result in self.results:
            if result.status == "failed" or verbose:
                lines.append(
                    f"{result.location()}: [{result.block.lang}] "
                    f"{result.status}"
                    + (f" — {result.detail}" if result.detail else "")
                )
        counts = self.counts()
        summary = ", ".join(
            f"{status}={counts[status]}" for status in sorted(counts)
        )
        verdict = "ROTTED" if self.failures else "clean"
        lines.append(
            f"doccheck {verdict}: {len(self.results)} block(s) in "
            f"{self.files_checked} file(s) [{summary or 'no blocks'}]"
        )
        return "\n".join(lines)


def default_doc_paths(root: str) -> List[str]:
    """``README.md`` + ``docs/*.md`` under ``root``, when present."""
    base = Path(root)
    paths = []
    readme = base / "README.md"
    if readme.exists():
        paths.append(str(readme))
    paths.extend(sorted(str(p) for p in base.glob("docs/*.md")))
    return paths


def check_paths(
    paths: Iterable[str],
    root: Optional[str] = None,
    timeout: Optional[float] = None,
) -> DocReport:
    """Extract and execute every block in ``paths``; never raises on
    block failures — rot lands in the report, not as an exception."""
    root = root or os.getcwd()
    if timeout is None:
        timeout = float(
            os.environ.get("REPRO_DOCCHECK_TIMEOUT", DEFAULT_TIMEOUT)
        )
    blocks: List[CodeBlock] = []
    files = 0
    for path in paths:
        doc = Path(path)
        if not doc.exists():
            raise LintError(f"doccheck: no such file: {path}")
        files += 1
        blocks.extend(
            extract_blocks(doc.read_text(encoding="utf-8"), str(path))
        )
    src_root = str(Path(root) / "src")
    results: List[BlockResult] = []
    with tempfile.TemporaryDirectory(prefix="doccheck-") as shim_dir:
        _write_uuidp_shim(shim_dir)
        env = _block_env(src_root, shim_dir)
        for block in blocks:
            results.append(run_block(block, root, env, timeout))
    return DocReport(results=results, files_checked=files)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.devtools.doccheck``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.doccheck",
        description=(
            "Smoke-run the fenced bash/python examples in the docs "
            "and fail on rot signatures."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="markdown files (default: README.md + docs/*.md)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="seconds per block (default: REPRO_DOCCHECK_TIMEOUT "
        f"or {DEFAULT_TIMEOUT:.0f}; timeouts are tolerated, not "
        "failures)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="list every block, not just failures",
    )
    args = parser.parse_args(argv)
    paths = args.paths or default_doc_paths(os.getcwd())
    report = check_paths(paths, timeout=args.timeout)
    print(report.render(verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
