"""Rule registry for the repo-specific lint engine.

A *rule* is a small AST analysis with a stable ``REPRO###`` code. Rules
register themselves at import time via :func:`register`; the engine
(:mod:`repro.devtools.engine`) enumerates them through
:func:`all_rules` and runs each one over every module whose path
policy enables the rule's *family* (``REPRO1`` determinism, ``REPRO2``
decoder bounds, ...). A handful of rules are *project-wide*: they see
every parsed module at once (cross-module invariants like "every
``Options`` field is consumed somewhere") instead of one module at a
time.

Codes are append-only API: reports, suppression comments
(``# noqa: REPRO201 -- reason``), and the CI artifact schema all key
on them, so a rule may be retired but its code never reused.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.devtools.engine import ModuleUnit, ProjectContext


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable form reports print."""
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement either
    :meth:`check` (module-scope, the default) or — with
    ``project_wide = True`` — :meth:`check_project`.
    """

    #: Stable identifier, e.g. ``"REPRO101"``.
    code: str = "REPRO000"
    #: Short kebab-case name for the catalog table.
    name: str = "abstract"
    #: Policy family prefix, e.g. ``"REPRO1"``.
    family: str = "REPRO0"
    #: One-line description of the invariant.
    summary: str = ""
    #: Project-wide rules run once with every module in view.
    project_wide: bool = False

    def check(
        self, unit: "ModuleUnit", context: "ProjectContext"
    ) -> Iterator[Finding]:
        """Yield findings for one module."""
        return iter(())

    def check_project(
        self, context: "ProjectContext"
    ) -> Iterator[Finding]:
        """Yield findings across the whole module set."""
        return iter(())

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.code,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_cls()
    if not rule.code.startswith("REPRO"):
        raise LintError(f"rule code must start with REPRO: {rule.code!r}")
    if rule.code in _RULES:
        raise LintError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return rule_cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code: str) -> Rule:
    """The registered rule for ``code`` (:class:`LintError` if unknown)."""
    try:
        return _RULES[code]
    except KeyError:
        raise LintError(f"unknown rule code {code!r}") from None


# -- shared AST helpers ------------------------------------------------------


def call_root(node: ast.AST) -> str:
    """The leftmost name of a (possibly dotted) expression, or ``""``.

    ``datetime.datetime.now`` → ``"datetime"``; ``foo().bar`` → ``""``
    (a call in the chain means the root is not a plain module name).
    """
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def names_in(node: ast.AST) -> List[str]:
    """All plain :class:`ast.Name` identifiers inside ``node``."""
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


def walk_skipping_nested_functions(
    node: ast.AST,
) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested function
    definitions (each definition gets its own analysis pass)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))
