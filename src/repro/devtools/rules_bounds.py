"""REPRO2xx: decoder bounds discipline.

**REPRO201** targets the exact bug class PR 7 had to retrofit out of
the legacy WAL decoder: a length field read out of the buffer
(``int.from_bytes(...)`` / ``struct.unpack(...)``) driving a slice
without a bounds comparison first. ``bytes`` slicing never raises on
out-of-range indices — a corrupt length silently yields a short slice
that decodes as garbage downstream instead of failing at the frame.

The analysis is a per-function taint pass over functions whose name
matches the policy's decoder pattern (``decode``/``from_bytes``/
``parse``/``read_``/...):

1. *Taint sources*: names assigned from an expression containing
   ``int.from_bytes`` or ``struct.unpack``/``unpack_from``.
2. *Propagation*: names assigned from expressions referencing tainted
   names become tainted (iterated to a fixpoint, so loop-carried
   offsets like ``offset += 8 + klen`` are caught).
3. *Obligation*: a slice expression (``buf[a:b]``) whose bound
   expressions reference a tainted name must be *dominated* by a
   comparison mentioning that name on an earlier line (an ``if``/
   ``while``/``assert`` guard such as ``if end > len(payload):``).

Line order is an approximation of dominance that is exact for the
straight-line decoder style this repo uses; a guard after the slice
does not count.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.devtools.engine import ModuleUnit, ProjectContext
from repro.devtools.registry import Finding, Rule, names_in, register

_LENGTH_SOURCES = ("from_bytes", "unpack", "unpack_from")


def _is_length_read(node: ast.AST) -> bool:
    """Does ``node`` contain an ``int.from_bytes``/``struct.unpack``
    call (a value decoded out of a byte buffer)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(
            sub.func, ast.Attribute
        ):
            if sub.func.attr in _LENGTH_SOURCES:
                return True
    return False


def _assign_targets(node: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                el.id for el in target.elts if isinstance(el, ast.Name)
            )
    return names


def _assign_value(node: ast.stmt) -> ast.expr:
    if isinstance(node, ast.Assign):
        return node.value
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return node.value if node.value is not None else ast.Constant(0)
    raise AssertionError("not an assignment")


@register
class DecoderBoundsRule(Rule):
    """REPRO201: decoders must length-check before slicing buffers."""
    code = "REPRO201"
    name = "decoder-bounds"
    family = "REPRO2"
    summary = (
        "buffer slices driven by decoded length fields must be "
        "preceded by a bounds comparison on that field"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per unguarded slice in a decoder function."""
        pattern = re.compile(context.policy.decoder_function_pattern)
        for node in ast.walk(unit.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and pattern.search(node.name):
                yield from self._check_function(unit, node)

    def _check_function(
        self,
        unit: ModuleUnit,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        assignments: List[Tuple[List[str], ast.expr]] = []
        compares: List[Tuple[int, Set[str]]] = []
        slices: List[ast.Subscript] = []

        for node in ast.walk(func):
            if isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                names = _assign_targets(node)
                if names:
                    assignments.append((names, _assign_value(node)))
            elif isinstance(node, ast.Compare):
                compares.append(
                    (node.lineno, set(names_in(node)))
                )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Slice
            ):
                slices.append(node)

        # 1+2. Seed taint from length reads, then propagate to a
        # fixpoint through ordinary assignments.
        tainted: Set[str] = set()
        for names, value in assignments:
            if _is_length_read(value):
                tainted.update(names)
        changed = True
        while changed:
            changed = False
            for names, value in assignments:
                if _is_length_read(value):
                    continue
                if tainted.intersection(names_in(value)):
                    new = set(names) - tainted
                    if new:
                        tainted.update(new)
                        changed = True
        if not tainted:
            return

        # 3. Every tainted name used in a slice bound needs an
        # earlier-line comparison mentioning it.
        for subscript in slices:
            slice_node = subscript.slice
            bound_names: Set[str] = set()
            for bound in (
                slice_node.lower, slice_node.upper, slice_node.step
            ):
                if bound is not None:
                    bound_names.update(names_in(bound))
            unguarded = sorted(
                name
                for name in bound_names & tainted
                if not any(
                    line < subscript.lineno and name in names
                    for line, names in compares
                )
            )
            if unguarded:
                yield self.finding(
                    unit.path,
                    subscript,
                    "slice driven by decoded length field(s) "
                    + ", ".join(repr(n) for n in unguarded)
                    + " without a preceding bounds comparison; "
                    "bytes slicing never raises, so a corrupt length "
                    "yields silent truncation — guard with an explicit "
                    "compare against the buffer size first",
                )
