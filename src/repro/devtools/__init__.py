"""``repro.devtools`` — the repo-specific static-analysis engine and
runtime determinism sanitizer.

Run it::

    uuidp lint [paths...] [--format text|json]
    python -m repro.devtools src --format json

The engine (:mod:`~repro.devtools.engine`) parses every ``.py`` file
under the given paths and runs the registered ``REPRO###`` rules over
each module whose path the policy
(:data:`~repro.devtools.policy.DEFAULT_POLICY`) enables for the rule's
family. Findings can be silenced inline — but only with a
justification::

    risky_line()  # noqa: REPRO201 -- offsets pre-validated above

See the README's "Static analysis & sanitizers" section for the full
rule catalog and suppression policy, and
:mod:`repro.devtools.sanitizer` for the runtime half.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.devtools.engine import (
    LintEngine,
    LintReport,
    ModuleUnit,
    ProjectContext,
    Suppression,
)
from repro.devtools.policy import DEFAULT_POLICY, FamilyScope, Policy
from repro.devtools.registry import Finding, Rule, all_rules, get_rule
from repro.devtools.report import render, render_json, render_text
from repro.devtools.sanitizer import (
    determinism_sanitizer,
    sanitizer_active,
)

# Importing the rule modules registers their rules; referencing them
# here keeps the imports visibly load-bearing.
from repro.devtools import (  # noqa: F401  (registration side effects)
    rules_api,
    rules_asyncio,
    rules_bounds,
    rules_determinism,
    rules_docs,
    rules_exceptions,
)

_RULE_MODULES = (
    rules_determinism,
    rules_bounds,
    rules_asyncio,
    rules_exceptions,
    rules_api,
    rules_docs,
)

__all__ = [
    "DEFAULT_POLICY",
    "FamilyScope",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleUnit",
    "Policy",
    "ProjectContext",
    "Rule",
    "Suppression",
    "all_rules",
    "determinism_sanitizer",
    "get_rule",
    "main",
    "render",
    "render_json",
    "render_text",
    "sanitizer_active",
]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.devtools``). Returns the
    process exit code: 1 if any finding survived suppression, else 0."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description=(
            "Run the repo-specific REPRO lint rules over python "
            "sources."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    args = parser.parse_args(argv)
    engine = LintEngine()
    report = engine.lint_paths(args.paths or ["src"])
    print(render(report, args.format))
    return report.exit_code
