"""Per-path policy: which rule families apply where, and rule knobs.

The engine classifies every linted file against glob-style patterns
(matched on the POSIX form of the path, so policies written here work
for both repo-relative and absolute invocations). Each
:class:`FamilyScope` turns one rule family on for the paths its
``include`` patterns match, minus its ``exclude`` patterns; files a
family does not cover simply skip that family's rules.

:data:`DEFAULT_POLICY` encodes this repository's contracts:

* **REPRO1xx determinism** — everything under ``repro`` is declared
  deterministic (simulation, workloads, routing, storage), except the
  devtools package itself (the linter and sanitizer name the banned
  entry points in order to police them).
* **REPRO2xx decoder bounds** — the binary decoders: the RPC wire
  protocol, the WAL record framing, the SST container, and the bloom
  filter serialization.
* **REPRO3xx asyncio hygiene** and **REPRO4xx exception discipline**
  — everywhere (3xx only fires inside ``async def`` anyway).
* **REPRO5xx API invariants** — everywhere; the config-dataclass and
  stats-contract targets below name the concrete classes.
* **REPRO6xx documentation** — the library's public surface under
  ``repro`` (tests excluded) must carry docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import FrozenSet, Tuple


def _posix(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class FamilyScope:
    """One rule family's include/exclude path patterns."""

    family: str
    include: Tuple[str, ...]
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """True when ``path`` matches an include and no exclude pattern."""
        posix = _posix(path)
        if not any(fnmatch(posix, pattern) for pattern in self.include):
            return False
        return not any(fnmatch(posix, pattern) for pattern in self.exclude)


@dataclass(frozen=True)
class Policy:
    """The full per-path configuration one engine run uses."""

    scopes: Tuple[FamilyScope, ...]
    #: REPRO201 applies inside functions whose name matches this
    #: (decoders / deserializers / buffer readers).
    decoder_function_pattern: str = (
        r"(decode|deserialize|from_bytes|read_|unpack|parse|scan"
        r"|record_at|key_at)"
    )
    #: REPRO402 sanctions ``contextlib.suppress(Exception)`` inside
    #: functions whose name matches this (best-effort teardown).
    cleanup_function_pattern: str = (
        r"(close|stop|shutdown|teardown|release|__exit__|__del__)"
    )
    #: REPRO501: dataclasses whose every public field must be consumed
    #: (attribute-read) somewhere in the linted tree.
    config_dataclasses: Tuple[str, ...] = (
        "Options",
        "DriverConfig",
        "AutoscalerConfig",
    )
    #: REPRO502: (class, methods) whose bodies must route through the
    #: stats attribute below.
    stats_contracts: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("MiniRocks", ("put", "get", "delete", "scan", "flush")),
    )
    stats_attribute: str = "stats"

    def families_for(self, path: str) -> FrozenSet[str]:
        """The rule families enabled for ``path`` (REPRO0 is always on:
        suppression discipline is not opt-out-able)."""
        families = {"REPRO0"}
        for scope in self.scopes:
            if scope.applies_to(path):
                families.add(scope.family)
        return frozenset(families)


DEFAULT_POLICY = Policy(
    scopes=(
        # Determinism: the whole library is contract-bound, except the
        # linter/sanitizer that polices the contract.
        FamilyScope(
            family="REPRO1",
            include=("*",),
            exclude=("*/devtools/*", "*/devtools"),
        ),
        # Decoder bounds: the binary parsers.
        FamilyScope(
            family="REPRO2",
            include=(
                "*/protocol.py",
                "*/wal.py",
                "*/sstable.py",
                "*/bloom.py",
            ),
        ),
        FamilyScope(family="REPRO3", include=("*",)),
        FamilyScope(family="REPRO4", include=("*",)),
        FamilyScope(family="REPRO5", include=("*",)),
        # Documentation discipline: the library's public surface (not
        # tests, not example scripts) must stay documented.
        FamilyScope(
            family="REPRO6",
            include=("*/repro/*",),
            exclude=("*/tests/*",),
        ),
    ),
)
