"""REPRO5xx: cross-module API invariants (project-wide rules).

These run once with every parsed module in view, because the invariant
spans modules:

* **REPRO501** — every public field of the configured config
  dataclasses (``Options``, ``DriverConfig``) must be *consumed*: read
  as an attribute (``options.memtable_entries``) somewhere in the
  linted tree. A field nothing reads is either dead configuration or —
  worse — a knob users set that silently does nothing.
* **REPRO502** — the configured stats contracts: each listed mutator
  of each listed class (``MiniRocks.put``/``get``/``delete``/``scan``/
  ``flush``) must reference the stats attribute (``self.stats...``)
  somewhere in its body, so ``DBStats`` stays the single accounting
  surface for the storage engine.

Consumption is deliberately lenient (any attribute *read* anywhere,
including the defining class): the rule is for catching fully dead
fields, not for auditing where reads happen.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.devtools.engine import ProjectContext
from repro.devtools.registry import Finding, Rule, register


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def _public_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    fields: List[Tuple[str, ast.AST]] = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ):
            # ClassVar annotations are class constants, not fields.
            ann = stmt.annotation
            ann_src = ast.dump(ann)
            if "ClassVar" in ann_src:
                continue
            fields.append((stmt.target.id, stmt))
    return fields


@register
class ConfigFieldConsumedRule(Rule):
    """REPRO501: every public field of a config dataclass is consumed."""
    code = "REPRO501"
    name = "config-field-consumed"
    family = "REPRO5"
    summary = (
        "every public Options/DriverConfig field must be read "
        "somewhere (no silently-dead config knobs)"
    )
    project_wide = True

    def check_project(
        self, context: ProjectContext
    ) -> Iterator[Finding]:
        """Flag config-dataclass fields nothing in the tree ever reads."""
        targets = set(context.policy.config_dataclasses)
        declared: Dict[str, List[Tuple[str, str, ast.AST]]] = {}
        for unit in context.units:
            if "REPRO5" not in unit.families:
                continue
            for node in ast.walk(unit.tree):
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name in targets
                    and _is_dataclass(node)
                ):
                    declared.setdefault(node.name, []).extend(
                        (name, unit.path, stmt)
                        for name, stmt in _public_fields(node)
                    )
        if not declared:
            return

        consumed: Set[str] = set()
        for unit in context.units:
            for node in ast.walk(unit.tree):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    consumed.add(node.attr)

        for cls_name in sorted(declared):
            for field_name, path, stmt in declared[cls_name]:
                if field_name not in consumed:
                    yield self.finding(
                        path,
                        stmt,
                        f"{cls_name}.{field_name} is never read: "
                        "either wire the knob into the code path it "
                        "configures or delete the field",
                    )


@register
class StatsContractRule(Rule):
    """REPRO502: contract methods must route through the stats attribute."""
    code = "REPRO502"
    name = "stats-contract"
    family = "REPRO5"
    summary = (
        "listed kvstore mutators must route accounting through the "
        "stats attribute (DBStats)"
    )
    project_wide = True

    def check_project(
        self, context: ProjectContext
    ) -> Iterator[Finding]:
        """Flag contract methods whose bodies never touch the stats attr."""
        contracts = dict(context.policy.stats_contracts)
        stats_attr = context.policy.stats_attribute
        for unit in context.units:
            if "REPRO5" not in unit.families:
                continue
            for node in ast.walk(unit.tree):
                if (
                    not isinstance(node, ast.ClassDef)
                    or node.name not in contracts
                ):
                    continue
                required = set(contracts[node.name])
                for stmt in node.body:
                    if (
                        isinstance(
                            stmt,
                            (ast.FunctionDef, ast.AsyncFunctionDef),
                        )
                        and stmt.name in required
                    ):
                        touches_stats = any(
                            isinstance(sub, ast.Attribute)
                            and sub.attr == stats_attr
                            for sub in ast.walk(stmt)
                        )
                        if not touches_stats:
                            yield self.finding(
                                unit.path,
                                stmt,
                                f"{node.name}.{stmt.name}() does not "
                                f"touch self.{stats_attr}: kvstore "
                                "mutators must account through "
                                "DBStats",
                            )
