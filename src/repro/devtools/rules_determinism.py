"""REPRO1xx: determinism rules.

The library's core contract is bit-identical replay: same seed, same
result, at any ``workers=`` split, with fingerprints comparable across
processes and machines. These rules ban the entry points that break it:

* **REPRO101** — module-level ``random.*`` calls (the global
  Mersenne-Twister is shared mutable state; use
  ``repro.simulation.seeds.derive_seed``/``rng_for`` or an injected
  ``random.Random``). Constructing ``random.Random(seed)`` is the
  sanctioned form and never flagged.
* **REPRO102** — builtin ``hash()`` (PYTHONHASHSEED-salted for str and
  bytes; exactly the PR-1 routing bug. Use BLAKE2b or the fingerprint
  helpers).
* **REPRO103** — wall-clock reads: ``time.time``/``time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``date.today``.
  ``time.perf_counter``/``monotonic`` (durations, bench code) are
  sanctioned and not flagged.
* **REPRO104** — iteration over unordered sets: ``for x in {...}``,
  comprehensions over set displays or ``set()``/``frozenset()`` calls,
  and ``list(set(...))``/``tuple(set(...))``. ``sorted(set(...))`` is
  the sanctioned form.
* **REPRO105** — OS entropy: ``os.urandom``, ``uuid.uuid1``/
  ``uuid.uuid4``, any ``secrets.*`` call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import ModuleUnit, ProjectContext
from repro.devtools.registry import Finding, Rule, register


def _attr_chain(node: ast.AST) -> str:
    """Dotted name of an attribute chain, e.g. ``datetime.datetime.now``
    (empty string when the chain contains calls or subscripts)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class GlobalRandomRule(Rule):
    """REPRO101: no module-level ``random.*`` in deterministic code."""
    code = "REPRO101"
    name = "global-random"
    family = "REPRO1"
    summary = (
        "no module-level random.* calls; inject random.Random via "
        "derive_seed/rng_for"
    )

    #: Constructors of seedable generator objects are the sanctioned
    #: path; everything else on the module is the shared global RNG.
    _SANCTIONED = {"Random", "SystemRandom"}

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per global-``random`` call site."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in self._SANCTIONED
            ):
                yield self.finding(
                    unit.path,
                    node,
                    f"module-level random.{func.attr}() uses the shared "
                    "global RNG; inject a random.Random seeded via "
                    "derive_seed/rng_for instead",
                )


@register
class BuiltinHashRule(Rule):
    """REPRO102: builtin ``hash()`` is salted per process — banned."""
    code = "REPRO102"
    name = "builtin-hash"
    family = "REPRO1"
    summary = (
        "no builtin hash(): PYTHONHASHSEED-salted for str/bytes; use "
        "BLAKE2b/fingerprint helpers"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per builtin ``hash()`` call."""
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    unit.path,
                    node,
                    "builtin hash() is PYTHONHASHSEED-salted for "
                    "str/bytes and not stable across processes; use "
                    "hashlib.blake2b or the fingerprint helpers",
                )


@register
class WallClockRule(Rule):
    """REPRO103: wall-clock reads cannot feed deterministic results."""
    code = "REPRO103"
    name = "wall-clock"
    family = "REPRO1"
    summary = (
        "no wall-clock reads (time.time, datetime.now); perf_counter/"
        "monotonic for durations are sanctioned"
    )

    _BANNED_TIME = {"time", "time_ns"}
    _BANNED_DATETIME = {"now", "utcnow", "today"}

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per wall-clock call outside the allowed sinks."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain:
                continue
            parts = chain.split(".")
            root, leaf = parts[0], parts[-1]
            if root == "time" and leaf in self._BANNED_TIME:
                yield self.finding(
                    unit.path,
                    node,
                    f"wall-clock {chain}() breaks replay; use "
                    "time.perf_counter for durations or thread a "
                    "logical clock through the caller",
                )
            elif (
                root in ("datetime", "date")
                and leaf in self._BANNED_DATETIME
            ):
                yield self.finding(
                    unit.path,
                    node,
                    f"wall-clock {chain}() breaks replay; pass "
                    "timestamps in from the caller",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    """REPRO104: no iteration over unordered sets in contract code."""
    code = "REPRO104"
    name = "set-iteration"
    family = "REPRO1"
    summary = (
        "no iteration over unordered sets; sorted(set(...)) is the "
        "sanctioned form"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per set-typed iteration target."""
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.finding(
                        unit.path,
                        node.iter,
                        "iterating a set yields PYTHONHASHSEED-"
                        "dependent order; wrap in sorted(...)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield self.finding(
                            unit.path,
                            comp.iter,
                            "comprehension over a set yields "
                            "PYTHONHASHSEED-dependent order; wrap in "
                            "sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple")
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        unit.path,
                        node,
                        f"{func.id}(set(...)) materializes "
                        "PYTHONHASHSEED-dependent order; use "
                        "sorted(set(...))",
                    )


@register
class OSEntropyRule(Rule):
    """REPRO105: no OS entropy (``os.urandom``, ``uuid4``, ...)."""
    code = "REPRO105"
    name = "os-entropy"
    family = "REPRO1"
    summary = (
        "no OS entropy (os.urandom, uuid.uuid1/uuid4, secrets.*) in "
        "deterministic modules"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per OS-entropy call site."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain == "os.urandom":
                yield self.finding(
                    unit.path, node,
                    "os.urandom() is OS entropy; derive bytes from a "
                    "seeded rng instead",
                )
            elif chain in ("uuid.uuid1", "uuid.uuid4"):
                yield self.finding(
                    unit.path, node,
                    f"{chain}() is nondeterministic; derive IDs from "
                    "the seeded generator stack",
                )
            elif chain.startswith("secrets."):
                yield self.finding(
                    unit.path, node,
                    f"{chain}() draws OS entropy; deterministic "
                    "modules must use seeded rngs",
                )
