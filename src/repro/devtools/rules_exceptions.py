"""REPRO4xx: exception discipline.

Recovery and serving paths must not make failures invisible. A broad
catch is fine when the handler *accounts for* the failure; it is a bug
factory when it silently eats it:

* **REPRO401** — a bare ``except:`` or ``except Exception:``/
  ``except BaseException:`` handler whose body neither re-raises, nor
  references the bound exception, nor calls a warn/log-style function
  (``warn``, ``warning``, ``error``, ``exception``, ``critical``,
  ``log``). Narrow the type, or record the failure on the relevant
  stats/report counter.
* **REPRO402** — ``contextlib.suppress(Exception)`` (or
  ``BaseException``) outside best-effort teardown. Sanctioned inside
  functions whose name matches the policy's cleanup pattern
  (``close``/``stop``/``shutdown``/...) and inside ``finally`` blocks;
  anywhere else it silences real failures.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.devtools.engine import ModuleUnit, ProjectContext
from repro.devtools.registry import Finding, Rule, register

_LOGGISH = {"warn", "warning", "error", "exception", "critical", "log"}
_BROAD = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
    return False


def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                bound is not None
                and isinstance(node, ast.Name)
                and node.id == bound
            ):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if name in _LOGGISH:
                    return True
    return False


@register
class BroadExceptSwallowRule(Rule):
    """REPRO401: a bare/broad except may not swallow silently."""
    code = "REPRO401"
    name = "broad-except-swallow"
    family = "REPRO4"
    summary = (
        "no bare/except Exception: that swallows without re-raise, "
        "using the exception, or logging"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per broad except handler that drops the error."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad_handler(node) and not (
                _handler_accounts_for_failure(node)
            ):
                if node.type is None:
                    caught = "bare 'except:'"
                else:
                    segment = ast.get_source_segment(
                        unit.source, node.type
                    )
                    caught = (
                        f"'except {segment}:'"
                        if segment
                        else "broad except"
                    )
                yield self.finding(
                    unit.path,
                    node,
                    f"{caught} swallows the failure: re-raise, narrow "
                    "the exception type, or record it (log call or "
                    "stats counter)",
                )


def _suppress_is_broad(call: ast.Call) -> bool:
    func = call.func
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else ""
    )
    if name != "suppress":
        return False
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in _BROAD:
            return True
    return False


@register
class BroadSuppressRule(Rule):
    """REPRO402: ``suppress(Exception)`` only in cleanup-named defs."""
    code = "REPRO402"
    name = "broad-suppress"
    family = "REPRO4"
    summary = (
        "contextlib.suppress(Exception) only in cleanup/teardown "
        "functions or finally blocks"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield a finding per broad ``contextlib.suppress`` misuse."""
        cleanup = re.compile(context.policy.cleanup_function_pattern)
        flagged: List[Tuple[ast.Call, Optional[str]]] = []

        # Recursive walk tracking (a) the innermost function name,
        # (b) whether ANY enclosing function is cleanup-named, and
        # (c) whether we are inside a `finally` block.
        def visit(
            node: ast.AST,
            func_name: Optional[str],
            in_cleanup: bool,
            in_finally: bool,
        ) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nested_cleanup = in_cleanup or bool(
                    cleanup.search(node.name)
                )
                for child in ast.iter_child_nodes(node):
                    visit(child, node.name, nested_cleanup, in_finally)
                return
            if isinstance(node, ast.Try):
                for child in node.body + node.orelse:
                    visit(child, func_name, in_cleanup, in_finally)
                for handler in node.handlers:
                    visit(handler, func_name, in_cleanup, in_finally)
                for child in node.finalbody:
                    visit(child, func_name, in_cleanup, True)
                return
            if (
                isinstance(node, ast.Call)
                and _suppress_is_broad(node)
                and not (in_cleanup or in_finally)
            ):
                flagged.append((node, func_name))
            for child in ast.iter_child_nodes(node):
                visit(child, func_name, in_cleanup, in_finally)

        visit(unit.tree, None, False, False)
        for call, func_name in flagged:
            where = (
                f"in {func_name}()" if func_name else "at module scope"
            )
            yield self.finding(
                unit.path,
                call,
                f"contextlib.suppress(Exception) {where} hides real "
                "failures; narrow the exception type, or move the "
                "suppression into a cleanup/teardown path",
            )
