"""Text and JSON reporters for :class:`~repro.devtools.engine.LintReport`.

The JSON schema (version 1) is the CI artifact contract::

    {
      "version": 1,
      "files_checked": 42,
      "findings": [
        {"rule": "REPRO201", "path": "...", "line": 10, "col": 4,
         "message": "..."},
        ...
      ],
      "suppressed": [ ...same shape... ],
      "counts": {"REPRO201": 3, ...}
    }

Fields are append-only: consumers may rely on the keys above existing
in every version-1 payload.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.engine import LintReport
from repro.devtools.registry import Finding, all_rules
from repro.errors import LintError

JSON_SCHEMA_VERSION = 1


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def render_text(report: LintReport) -> str:
    """One finding per line, plus a per-rule count summary footer."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}"
        )
    if report.findings:
        lines.append("")
        counts = report.counts()
        summary = ", ".join(
            f"{code}={counts[code]}" for code in sorted(counts)
        )
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s) [{summary}]"
        )
    else:
        lines.append(
            f"clean: 0 findings in {report.files_checked} file(s) "
            f"({len(all_rules())} rules)"
        )
    if report.suppressed:
        lines.append(
            f"({len(report.suppressed)} finding(s) silenced by "
            "justified suppressions)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The machine-readable payload, schema-versioned for CI artifacts."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "findings": [_finding_dict(f) for f in report.findings],
        "suppressed": [_finding_dict(f) for f in report.suppressed],
        "counts": report.counts(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
}


def render(report: LintReport, fmt: str) -> str:
    """Render ``report`` in ``fmt`` (``text`` or ``json``)."""
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise LintError(
            f"unknown report format {fmt!r}; expected one of "
            + ", ".join(sorted(_RENDERERS))
        ) from None
    return renderer(report)
