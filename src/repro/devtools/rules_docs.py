"""REPRO6xx: documentation discipline.

* **REPRO601** — every *public* function, method, and class in the
  policy-scoped tree (the ``repro`` library) must carry a docstring.
  The codebase is the reproduction artifact of a paper; an undocumented
  public surface is where the mapping from code back to the paper (and
  to the operator's handbook in ``docs/``) silently rots.

What does **not** need a docstring:

* underscore-prefixed names (private by convention, dunders included);
* anything nested inside a function body (implementation detail — the
  enclosing def owns the documentation);
* members of private classes;
* ``@overload`` stubs (the implementation def documents the API) and
  ``@x.setter`` / ``@x.deleter`` bodies (the getter owns the
  property's docstring).

Genuinely self-evident survivors can be suppressed inline, with a
justification, like every other rule::

    def size(self) -> int:  # noqa: REPRO601 -- the name is the doc
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.devtools.engine import ModuleUnit, ProjectContext
from repro.devtools.registry import Finding, Rule, register

_DefNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Decorator attribute names whose defs share another def's docstring.
_EXEMPT_ATTRS = frozenset({"setter", "deleter", "getter"})


def _is_exempt(node: _DefNode) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "overload":
            return True
        if isinstance(target, ast.Attribute):
            if target.attr == "overload":  # typing.overload
                return True
            if target.attr in _EXEMPT_ATTRS:
                return True
    return False


@register
class PublicDocstringRule(Rule):
    """The REPRO601 check; see the module docstring for the policy."""

    code = "REPRO601"
    name = "public-docstring"
    family = "REPRO6"
    summary = (
        "public functions, methods, and classes must carry a "
        "docstring (underscore-prefixed and nested defs exempt)"
    )

    def check(
        self, unit: ModuleUnit, context: ProjectContext
    ) -> Iterator[Finding]:
        """Scan one module's top level and public class bodies."""
        yield from self._scan(unit.path, unit.tree.body)

    def _scan(self, path: str, body) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue  # private class: members are private too
                if not ast.get_docstring(node):
                    yield self.finding(
                        path,
                        node,
                        f"public class {node.name!r} has no "
                        "docstring: say what it models and what the "
                        "invariants are",
                    )
                yield from self._scan(path, node.body)
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if node.name.startswith("_") or _is_exempt(node):
                    continue
                if not ast.get_docstring(node):
                    yield self.finding(
                        path,
                        node,
                        f"public def {node.name!r} has no docstring: "
                        "one line on contract and units beats none "
                        "(or suppress with the reason it is "
                        "self-evident)",
                    )
                # Nested defs are implementation detail of this one.
