"""Runtime determinism sanitizer.

The static REPRO1xx rules catch nondeterminism the AST can see; this
module catches what it cannot (dynamic dispatch, third-party helpers,
getattr tricks) by patching the banned entry points at runtime:
module-level ``random.*``, ``time.time``/``time_ns``, ``os.urandom``,
``uuid.uuid1``/``uuid4``, and builtin ``hash``.

Each wrapper inspects its *caller's* frame: a call originating from a
file under the ``repro`` package raises
:class:`~repro.errors.DeterminismViolation` at the call site —
pointing at the exact offending line instead of flaking three suites
downstream — while calls from anywhere else (pytest, hypothesis,
stdlib internals, test code itself) pass straight through to the
original. The sanctioned forms are untouched: constructing
``random.Random(seed)`` via ``derive_seed``/``rng_for``, and
``time.perf_counter``/``monotonic`` for durations.

Usage::

    with determinism_sanitizer():
        run_plan(...)          # repro code tripping time.time() raises

or via the autouse pytest fixture in ``tests/conftest.py``, which
activates it for every ``plan``-marked test (opt out with
``REPRO_SANITIZE=0``).
"""

from __future__ import annotations

import builtins
import contextlib
import os
import random
import sys
import time
import uuid
from typing import Any, Callable, Iterator, List, Tuple

import repro
from repro.errors import DeterminismViolation

#: Directory of the repro package — calls whose caller file lives under
#: here are held to the determinism contract.
_REPRO_ROOT = os.path.dirname(os.path.abspath(repro.__file__)) + os.sep
#: ... except the devtools package itself (the police are exempt).
_DEVTOOLS_ROOT = os.path.join(_REPRO_ROOT, "devtools") + os.sep

#: (module, attribute) pairs the sanitizer replaces. Missing names
#: (e.g. ``random.randbytes`` on old interpreters) are skipped.
_PATCH_TARGETS: Tuple[Tuple[Any, str], ...] = (
    (time, "time"),
    (time, "time_ns"),
    (os, "urandom"),
    (uuid, "uuid1"),
    (uuid, "uuid4"),
    (builtins, "hash"),
    (random, "random"),
    (random, "randrange"),
    (random, "randint"),
    (random, "choice"),
    (random, "choices"),
    (random, "shuffle"),
    (random, "sample"),
    (random, "uniform"),
    (random, "getrandbits"),
    (random, "gauss"),
    (random, "randbytes"),
)


def _caller_is_repro_library() -> bool:
    frame = sys._getframe(2)
    filename = frame.f_code.co_filename
    return filename.startswith(_REPRO_ROOT) and not filename.startswith(
        _DEVTOOLS_ROOT
    )


def _make_guard(label: str, original: Callable[..., Any]) -> Callable[..., Any]:
    def guard(*args: Any, **kwargs: Any) -> Any:
        if _caller_is_repro_library():
            caller = sys._getframe(1)
            raise DeterminismViolation(
                f"{label}() called from "
                f"{caller.f_code.co_filename}:{caller.f_lineno} — "
                "unsanctioned nondeterminism in a deterministic code "
                "path; use a seeded random.Random (derive_seed/"
                "rng_for), time.perf_counter for durations, or the "
                "fingerprint helpers instead of builtin hash()"
            )
        return original(*args, **kwargs)

    guard.__repro_sanitized__ = True  # type: ignore[attr-defined]
    guard.__wrapped__ = original  # type: ignore[attr-defined]
    guard.__name__ = getattr(original, "__name__", label.split(".")[-1])
    return guard


def sanitizer_active() -> bool:
    """Is the determinism sanitizer currently installed?"""
    return getattr(time.time, "__repro_sanitized__", False)


@contextlib.contextmanager
def determinism_sanitizer() -> Iterator[None]:
    """Patch the banned entry points for the duration of the block.

    Re-entrant: an inner activation over an already-patched entry
    leaves the existing wrapper in place (no double wrapping), and
    restoration happens in strict reverse order.
    """
    patched: List[Tuple[Any, str, Any]] = []
    try:
        for module, attr in _PATCH_TARGETS:
            original = getattr(module, attr, None)
            if original is None or getattr(
                original, "__repro_sanitized__", False
            ):
                continue
            label = f"{getattr(module, '__name__', module)}.{attr}"
            setattr(module, attr, _make_guard(label, original))
            patched.append((module, attr, original))
        yield
    finally:
        for module, attr, original in reversed(patched):
            setattr(module, attr, original)
