"""The lint engine: parse modules, run rules, apply suppressions.

Flow: :class:`LintEngine` collects ``.py`` files (a directory argument
is walked recursively), parses each into a :class:`ModuleUnit` (AST +
source lines + inline suppressions + enabled rule families from the
:class:`~repro.devtools.policy.Policy`), runs every registered
module-scope rule whose family the path enables, then runs the
project-wide rules once over the whole set.

Suppressions are inline comments::

    payload[o : o + n]  # noqa: REPRO201 -- offsets pre-validated above

A suppression silences matching findings *on its line only*, and only
when it carries a justification after ``--``. The meta-rules enforce
the suppression policy itself:

* **REPRO001** — a suppression without a justification (including a
  bare ``# noqa: REPRO``) is a finding.
* **REPRO002** — a justified suppression that silenced nothing is a
  finding (stale suppressions rot).

Meta-findings cannot themselves be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.devtools.policy import DEFAULT_POLICY, Policy
from repro.devtools.registry import Finding, all_rules
from repro.errors import LintError

#: Inline suppression syntax: a ``REPRO201``-style code (or comma
#: list) after the noqa marker, optionally followed by ``-- reason``.
#: A code with no digits is matched too so REPRO001 can reject it.
_SUPPRESSION_RE = re.compile(
    r"#\s*noqa:\s*(?P<codes>REPRO[0-9]*(?:\s*,\s*REPRO[0-9]*)*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline ``# noqa: REPRO###`` comment."""

    path: str
    line: int
    codes: Tuple[str, ...]
    reason: str

    @property
    def justified(self) -> bool:
        """True when the noqa names full rule codes and carries a reason."""
        return bool(self.reason) and all(
            len(code) > len("REPRO") for code in self.codes
        )

    def matches(self, finding: Finding) -> bool:
        """True when ``finding`` sits on this line and names a listed code."""
        return finding.line == self.line and finding.rule in self.codes


@dataclass
class ModuleUnit:
    """One parsed module plus everything rules need to inspect it."""

    path: str
    source: str
    tree: ast.Module
    families: FrozenSet[str]
    suppressions: Tuple[Suppression, ...]

    @property
    def lines(self) -> List[str]:
        """The module source split into lines, for line-keyed rules."""
        return self.source.splitlines()


@dataclass
class ProjectContext:
    """Shared state for one engine run (what project-wide rules see)."""

    policy: Policy
    units: List[ModuleUnit] = field(default_factory=list)

    def unit_for(self, path: str) -> Optional[ModuleUnit]:
        """The parsed unit for ``path``, or ``None`` if it was not linted."""
        for unit in self.units:
            if unit.path == path:
                return unit
        return None


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int

    @property
    def exit_code(self) -> int:
        """1 if any finding survived suppression, else 0."""
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        """Surviving-finding totals per rule code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _extract_suppressions(path: str, source: str) -> Tuple[Suppression, ...]:
    """Parse ``# noqa: REPRO...`` comments via the tokenizer (so string
    literals that merely *mention* noqa are never misread)."""
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if not match:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
            )
            suppressions.append(
                Suppression(
                    path=path,
                    line=token.start[0],
                    codes=codes,
                    reason=(match.group("reason") or "").strip(),
                )
            )
    except tokenize.TokenError:
        # The AST parse below will report the real syntax problem.
        pass
    return tuple(suppressions)


class LintEngine:
    """Run the registered rules over a set of paths or source strings."""

    def __init__(self, policy: Optional[Policy] = None):
        self.policy = policy or DEFAULT_POLICY

    # -- collection ---------------------------------------------------------

    def _collect_files(self, paths: Iterable[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                files.append(path)
            else:
                raise LintError(f"no such file or directory: {raw}")
        # De-duplicate while keeping deterministic order.
        seen = set()
        unique: List[Path] = []
        for path in files:
            key = str(path)
            if key not in seen:
                seen.add(key)
                unique.append(path)
        return unique

    def _parse(self, path: str, source: str) -> ModuleUnit:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        return ModuleUnit(
            path=path,
            source=source,
            tree=tree,
            families=self.policy.families_for(path),
            suppressions=_extract_suppressions(path, source),
        )

    # -- running ------------------------------------------------------------

    def lint_paths(self, paths: Iterable[str]) -> LintReport:
        """Parse every ``.py`` file under ``paths`` and run the enabled rules."""
        units = []
        for file_path in self._collect_files(paths):
            source = file_path.read_text(encoding="utf-8")
            units.append(self._parse(str(file_path), source))
        return self._run(units)

    def lint_sources(self, sources: Dict[str, str]) -> LintReport:
        """Lint in-memory sources keyed by virtual path (for tests)."""
        units = [self._parse(path, src) for path, src in sources.items()]
        return self._run(units)

    def _run(self, units: List[ModuleUnit]) -> LintReport:
        context = ProjectContext(policy=self.policy, units=units)
        raw: List[Finding] = []
        for rule in all_rules():
            if rule.project_wide:
                raw.extend(rule.check_project(context))
            else:
                for unit in units:
                    if rule.family in unit.families:
                        raw.extend(rule.check(unit, context))

        findings: List[Finding] = []
        suppressed: List[Finding] = []
        used: Dict[Tuple[str, int], bool] = {}
        suppression_index: Dict[str, Tuple[Suppression, ...]] = {
            unit.path: unit.suppressions for unit in units
        }
        for finding in raw:
            silenced = False
            for sup in suppression_index.get(finding.path, ()):
                if sup.justified and sup.matches(finding):
                    used[(sup.path, sup.line)] = True
                    silenced = True
            (suppressed if silenced else findings).append(finding)

        # Meta-rules: suppression discipline (never themselves
        # suppressible — they are appended after the silencing pass).
        for unit in units:
            for sup in unit.suppressions:
                if not sup.justified:
                    findings.append(
                        Finding(
                            rule="REPRO001",
                            path=sup.path,
                            line=sup.line,
                            col=0,
                            message=(
                                "suppression without justification: add "
                                "a full rule code and a reason, e.g. "
                                "'# noqa: REPRO201 -- why it is safe'"
                            ),
                        )
                    )
                elif not used.get((sup.path, sup.line), False):
                    findings.append(
                        Finding(
                            rule="REPRO002",
                            path=sup.path,
                            line=sup.line,
                            col=0,
                            message=(
                                "unused suppression for "
                                + ",".join(sup.codes)
                                + ": nothing fired on this line; "
                                "remove the stale noqa"
                            ),
                        )
                    )

        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return LintReport(
            findings=findings,
            suppressed=suppressed,
            files_checked=len(units),
        )
