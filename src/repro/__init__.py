"""repro — reproduction of "Optimal Uncoordinated Unique IDs" (PODS 2023).

Public API highlights:

* algorithms: :class:`RandomGenerator`, :class:`ClusterGenerator`,
  :class:`BinsGenerator`, :class:`ClusterStarGenerator`,
  :class:`BinsStarGenerator`, :class:`SkewAwareGenerator`,
  :func:`make_generator`;
* the game: :class:`DemandProfile`, :class:`Game`,
  :class:`ObliviousAdversary`, :class:`ClosestPairAttack`,
  :func:`estimate_collision_probability`;
* exact analysis: :func:`exact_collision_probability`,
  :func:`p_star_lower_bound`, :func:`p_star_upper_bound`,
  :func:`competitive_ratio_upper`;
* the KV-store substrate: :class:`repro.kvstore.MiniRocks`,
  :class:`repro.distributed.ClusterSimulator` (imported lazily; see
  those subpackages).

Estimation plans
----------------

Monte-Carlo estimation runs through one seam
(:mod:`repro.simulation.plan`): a frozen :class:`SimulationPlan`
naming the engine (``python`` game loop, ``batched`` set ops,
``numpy`` vectorized kernels — all pluggable via the engine
registry), the worker-process count, and optionally an adaptive
precision target:

* ``estimate_collision_probability(..., plan=SimulationPlan(workers=N))``
  shards trials across ``N`` processes; per-trial seed derivation
  makes the result **bit-identical at any worker/round split**.
  Factories must pickle to cross process boundaries — use
  :class:`SpecFactory`, :class:`ObliviousFactory`, or
  :class:`AttackFactory` instead of lambdas.
* ``SimulationPlan(target_halfwidth=0.01)`` stops sampling at the
  first seeded checkpoint whose Wilson-CI half-width is tight enough
  (the ``trials=`` argument then caps the budget).
* every :class:`IDGenerator` offers ``generate_batch(count)``, a
  vectorized fast path producing whole demand vectors per call
  (optimized for ``Random``, ``Bins``, ``Cluster`` and ``Cluster*``);
  ``estimate_profile_collision`` uses it by default.
"""

from repro.adversary import (
    ClosestPairAttack,
    DemandProfile,
    GreedyGapAttack,
    ObliviousAdversary,
    PhiDistribution,
    RunSaturationAttack,
)
from repro.analysis import (
    competitive_ratio_upper,
    exact_collision_probability,
    optimal_uniform_collision,
    p_star_lower_bound,
    p_star_upper_bound,
)
from repro.core import (
    BinsGenerator,
    BinsStarGenerator,
    ClusterGenerator,
    ClusterStarGenerator,
    IDGenerator,
    RandomGenerator,
    SkewAwareGenerator,
    available_algorithms,
    make_generator,
)
from repro.errors import (
    ConfigurationError,
    GameError,
    IDSpaceExhaustedError,
    ProfileError,
    ReproError,
)
from repro.simulation import (
    AttackFactory,
    Estimate,
    Game,
    GameResult,
    ObliviousFactory,
    SimulationPlan,
    SpecFactory,
    TrialTask,
    available_engines,
    estimate_collision_probability,
    estimate_profile_collision,
    play_profile,
    run_plan,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "IDGenerator",
    "RandomGenerator",
    "ClusterGenerator",
    "BinsGenerator",
    "ClusterStarGenerator",
    "BinsStarGenerator",
    "SkewAwareGenerator",
    "make_generator",
    "available_algorithms",
    # game
    "DemandProfile",
    "Game",
    "GameResult",
    "play_profile",
    "ObliviousAdversary",
    "ClosestPairAttack",
    "GreedyGapAttack",
    "RunSaturationAttack",
    "PhiDistribution",
    "Estimate",
    "estimate_collision_probability",
    "estimate_profile_collision",
    "SimulationPlan",
    "TrialTask",
    "run_plan",
    "available_engines",
    "SpecFactory",
    "ObliviousFactory",
    "AttackFactory",
    # analysis
    "exact_collision_probability",
    "optimal_uniform_collision",
    "p_star_lower_bound",
    "p_star_upper_bound",
    "competitive_ratio_upper",
    # errors
    "ReproError",
    "ConfigurationError",
    "GameError",
    "ProfileError",
    "IDSpaceExhaustedError",
]
