"""``SkewAware(i, j)`` — the Lemma 24 construction (§8).

For a *known* skewed demand profile ``(i, j)`` with ``i ≤ j``, the paper
exhibits an algorithm with collision probability ``Θ(i/m)`` — up to a
factor ``Θ(j/i)`` better than ``Cluster``'s ``Θ((i+j)/m)``:

* set aside ``j − i`` *hard-wired* IDs (we use the top of the universe,
  ``{m−(j−i), ..., m−1}``);
* serve the first ``i`` requests with ``Bins(i)`` over the remaining
  ``m − (j − i)`` IDs;
* serve every request beyond the ``i``-th from the hard-wired tail,
  deterministically in increasing order.

Two instances of the algorithm collide on the profile ``(i, j)`` iff
their ``Bins(i)`` prefixes collide (the hard-wired tails are identical
but only one instance ever reaches them under ``(i, j)``... whereas if
*both* exceed ``i`` requests they collide deterministically — this
algorithm is tuned to one profile, which is exactly the point of the
competitive lower bound: no single algorithm can match it everywhere).

This class is the baseline against which ``Bins*``'s ``O(log m)``
competitive ratio is measured in experiment E8.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.base import IDGenerator
from repro.core.bins import BinsGenerator
from repro.errors import ConfigurationError


class SkewAwareGenerator(IDGenerator):
    """Bins(i) prefix over a reduced space + hard-wired deterministic tail."""

    name = "skew_aware"

    def __init__(
        self,
        m: int,
        i: int,
        j: int,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(m, rng)
        if not 1 <= i <= j:
            raise ConfigurationError(
                f"skew_aware requires 1 <= i <= j, got i={i}, j={j}"
            )
        if j > m:
            raise ConfigurationError(f"j={j} exceeds universe size m={m}")
        reduced = m - (j - i)
        if reduced < i:
            raise ConfigurationError(
                f"reduced space m-(j-i)={reduced} cannot host Bins({i})"
            )
        self.i = i
        self.j = j
        self._tail_start = reduced
        self._prefix = BinsGenerator(reduced, i, rng=self.rng)

    @property
    def hardwired_count(self) -> int:
        """Number of deterministic tail IDs: ``j − i``."""
        return self.j - self.i

    def _generate(self) -> int:
        if self._count < self.i:
            return self._prefix.next_id()
        # Deterministic tail: positions m-(j-i), ..., m-1, then (if the
        # caller keeps asking past j) continue with the prefix generator
        # so the instance can still emit all m IDs.
        tail_index = self._count - self.i
        if tail_index < self.hardwired_count:
            return self._tail_start + tail_index
        return self._prefix.next_id()
