"""``Bins*`` — the competitively optimal algorithm (§3.4, §7.1).

The ID space is carved into ``C = ⌈log₂ m − log₂ log₂ m⌉`` chunks of
``2^(C−1)`` IDs each (this fits: ``C · 2^(C−1) ≤ m``). Chunk ``i``
(1-based) is split into ``2^(C−i)`` bins of ``2^(i−1)`` IDs. An instance
serves its requests by drawing one uniformly random bin from chunk 1
(size 1), then one from chunk 2 (size 2), then chunk 3 (size 4), ...,
always exhausting a bin in increasing ID order before moving on.

The effect is that instances with similar loads draw most of their IDs
from the *same chunk*, where the bins are sized for that load, while a
low-demand instance only ever exposes a few small bins to a high-demand
instance. That yields competitive ratio ``O(log m)`` against both
oblivious (Theorem 9) and adaptive (Corollary 12, via Theorem 11)
adversaries — optimal by Theorem 10.

After the single bin of the last chunk is exhausted (``2^C − 1`` IDs,
which is ``≥ m / log m``) the paper's schedule ends and Theorem 9 makes
no claim; we raise :class:`~repro.errors.IDSpaceExhaustedError` unless
``fallback_random=True``, in which case the instance continues with
uniform sampling (without replacement) over the never-assigned leftover
IDs and then over unused bins' IDs — a practical completion for users,
excluded from the analysis.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Set

from repro.core.base import IDGenerator
from repro.errors import ConfigurationError, IDSpaceExhaustedError


def chunk_count(m: int) -> int:
    """``C = ⌈log₂ m − log₂ log₂ m⌉``, the number of chunks for universe m.

    Requires ``m >= 4`` so that ``log log m > 0``.
    """
    if m < 4:
        raise ConfigurationError(f"bins_star requires m >= 4, got {m}")
    if m < (1 << 53):
        log_m = math.log2(m)
    else:
        # Avoid float overflow for astronomically large m; the ±1 error
        # of bit_length is absorbed by the ceil and the fit-check below.
        log_m = float(m.bit_length() - 1)
    c = math.ceil(log_m - math.log2(log_m))
    c = max(c, 1)
    # The paper needs C · 2^(C−1) ≤ m; guard against float rounding of
    # the ceil above (relevant for astronomically large m only).
    while c > 1 and c * (1 << (c - 1)) > m:
        c -= 1
    return c


class BinsStarGenerator(IDGenerator):
    """One random bin per chunk, chunk sizes doubling, ascending in-bin."""

    name = "bins_star"

    def __init__(
        self,
        m: int,
        rng: Optional[random.Random] = None,
        fallback_random: bool = False,
        num_chunks_override: Optional[int] = None,
    ):
        super().__init__(m, rng)
        if num_chunks_override is None:
            self.num_chunks = chunk_count(m)
        else:
            # Ablation A2 hook: fewer chunks = fewer size classes (the
            # competitive ratio should suffer), more = less ID space
            # per class. Must still fit: C · 2^(C−1) ≤ m.
            c = num_chunks_override
            if c < 1 or c * (1 << (c - 1)) > m:
                raise ConfigurationError(
                    f"num_chunks_override={c} does not fit m={m}"
                )
            self.num_chunks = c
        self.chunk_size = 1 << (self.num_chunks - 1)
        self.fallback_random = fallback_random
        self._chunk_index = 0  # 0-based chunk currently being served
        self._bin_start = 0
        self._bin_remaining = 0
        self._chosen_bins: List[int] = []  # bin index chosen in each chunk
        # Fallback state (only used when fallback_random=True).
        self._fallback_used: Set[int] = set()
        self._in_fallback = False

    @property
    def scheduled_capacity(self) -> int:
        """IDs producible under the paper's schedule: ``2^C − 1``."""
        return (1 << self.num_chunks) - 1

    @property
    def remaining_capacity(self) -> int:
        """IDs this instance can still mint before its schedule is exhausted."""
        if self.fallback_random:
            return self.m - self._count
        return max(self.scheduled_capacity - self._count, 0)

    @property
    def chosen_bins(self) -> List[int]:
        """Bin index chosen within each chunk visited so far (0-based)."""
        return list(self._chosen_bins)

    def bins_in_chunk(self, chunk_index: int) -> int:
        """Number of bins in 0-based chunk ``chunk_index``: ``2^(C−1−i)``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ConfigurationError(
                f"chunk index must be in [0, {self.num_chunks}), got {chunk_index}"
            )
        return 1 << (self.num_chunks - 1 - chunk_index)

    def bin_size(self, chunk_index: int) -> int:
        """Size of each bin in 0-based chunk ``chunk_index``: ``2^i``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise ConfigurationError(
                f"chunk index must be in [0, {self.num_chunks}), got {chunk_index}"
            )
        return 1 << chunk_index

    def _open_next_bin(self) -> None:
        chunk = self._chunk_index
        if chunk >= self.num_chunks:
            if self.fallback_random:
                self._in_fallback = True
                return
            raise IDSpaceExhaustedError(
                f"bins_star: schedule of {self.scheduled_capacity} IDs "
                f"exhausted (m={self.m}); construct with "
                f"fallback_random=True to keep generating",
                produced=self._count,
            )
        bins = self.bins_in_chunk(chunk)
        size = self.bin_size(chunk)
        bin_index = self.rng.randrange(bins)
        self._chosen_bins.append(bin_index)
        self._bin_start = chunk * self.chunk_size + bin_index * size
        self._bin_remaining = size
        self._chunk_index += 1

    def _scheduled_ids(self) -> Set[int]:
        """All IDs this instance has emitted or reserved via its bins."""
        ids: Set[int] = set()
        for chunk, bin_index in enumerate(self._chosen_bins):
            size = self.bin_size(chunk)
            start = chunk * self.chunk_size + bin_index * size
            ids.update(range(start, start + size))
        return ids

    def _fallback_generate(self) -> int:
        reserved = self._scheduled_ids()
        available = self.m - len(reserved) - len(self._fallback_used)
        if available <= 0:
            raise IDSpaceExhaustedError(
                f"bins_star: universe of {self.m} IDs fully consumed",
                produced=self._count,
            )
        if 2 * (len(reserved) + len(self._fallback_used)) >= self.m:
            candidates = [
                i
                for i in range(self.m)
                if i not in reserved and i not in self._fallback_used
            ]
            value = candidates[self.rng.randrange(len(candidates))]
            self._fallback_used.add(value)
            return value
        while True:
            value = self.rng.randrange(self.m)
            if value not in reserved and value not in self._fallback_used:
                self._fallback_used.add(value)
                return value

    def _generate(self) -> int:
        if self._in_fallback:
            return self._fallback_generate()
        if self._bin_remaining == 0:
            self._open_next_bin()
            if self._in_fallback:
                return self._fallback_generate()
        size = self.bin_size(self._chunk_index - 1)
        offset = size - self._bin_remaining
        self._bin_remaining -= 1
        return self._bin_start + offset
