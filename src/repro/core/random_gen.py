"""``Random`` — the algorithm behind the random part of GUIDs.

Every request returns an integer sampled from ``[m]`` uniformly without
replacement (§3.1 of the paper). Its collision probability on a demand
profile ``D`` is ``Θ(min(1, (‖D‖₁² − ‖D‖₂²)/m))`` (Corollary 3), i.e. the
birthday bound: safe only while the *total* demand stays well below
``sqrt(m)``.

Implementation notes
---------------------
For the huge, sparse universes this algorithm is used with in practice
(``m = 2**128``), rejection sampling against the set of already-produced
IDs is expected O(1) per draw. Once more than half the universe has been
consumed (only possible for small ``m``) we switch to an explicit
shuffle of the remaining IDs so the tail stays O(1) per draw too.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.core.base import IDGenerator


class RandomGenerator(IDGenerator):
    """Uniform sampling without replacement from ``range(m)``."""

    name = "random"

    def __init__(self, m: int, rng: Optional[random.Random] = None):
        super().__init__(m, rng)
        self._used: Set[int] = set()
        # Lazily built once density crosses 1/2: remaining IDs, shuffled.
        self._tail: Optional[List[int]] = None

    def _generate(self) -> int:
        if self._tail is not None:
            value = self._tail.pop()
            return value
        # Dense regime: materialize and shuffle what's left. Only ever
        # reachable for small m, so the list is affordable.
        if 2 * len(self._used) >= self.m:
            remaining = [i for i in range(self.m) if i not in self._used]
            self.rng.shuffle(remaining)
            self._tail = remaining
            self._used = set()  # no longer needed; free the memory
            return self._tail.pop()
        # Sparse regime: rejection sampling, expected < 2 iterations.
        while True:
            value = self.rng.randrange(self.m)
            if value not in self._used:
                self._used.add(value)
                return value
