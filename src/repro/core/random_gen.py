"""``Random`` — the algorithm behind the random part of GUIDs.

Every request returns an integer sampled from ``[m]`` uniformly without
replacement (§3.1 of the paper). Its collision probability on a demand
profile ``D`` is ``Θ(min(1, (‖D‖₁² − ‖D‖₂²)/m))`` (Corollary 3), i.e. the
birthday bound: safe only while the *total* demand stays well below
``sqrt(m)``.

Implementation notes
---------------------
For the huge, sparse universes this algorithm is used with in practice
(``m = 2**128``), rejection sampling against the set of already-produced
IDs is expected O(1) per draw. Once more than half the universe has been
consumed (only possible for small ``m``) we switch to an explicit
shuffle of the remaining IDs so the tail stays O(1) per draw too.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.core.base import IDGenerator
from repro.errors import ConfigurationError


class RandomGenerator(IDGenerator):
    """Uniform sampling without replacement from ``range(m)``."""

    name = "random"

    def __init__(self, m: int, rng: Optional[random.Random] = None):
        super().__init__(m, rng)
        self._used: Set[int] = set()
        # Lazily built once density crosses 1/2: remaining IDs, shuffled.
        self._tail: Optional[List[int]] = None

    def _generate(self) -> int:
        if self._tail is not None:
            value = self._tail.pop()
            return value
        # Dense regime: materialize and shuffle what's left. Only ever
        # reachable for small m, so the list is affordable.
        if 2 * len(self._used) >= self.m:
            remaining = [i for i in range(self.m) if i not in self._used]
            self.rng.shuffle(remaining)
            self._tail = remaining
            self._used = set()  # no longer needed; free the memory
            return self._tail.pop()
        # Sparse regime: rejection sampling, expected < 2 iterations.
        while True:
            value = self.rng.randrange(self.m)
            if value not in self._used:
                self._used.add(value)
                return value

    def generate_batch(self, count: int) -> List[int]:
        """Batched fast path, bit-identical to repeated ``next_id``.

        The per-draw logic (rejection sampling, dense-regime switch,
        tail drain) is replicated with hoisted locals and sliced tail
        pops, consuming ``self.rng`` in exactly the serial order.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        m = self.m
        out: List[int] = []
        append = out.append
        while len(out) < count and self._count < m:
            if self._tail is not None:
                # Tail holds the remaining IDs in pop-from-the-end
                # order: drain a whole slice at once.
                take = min(count - len(out), len(self._tail))
                out.extend(self._tail[: -take - 1 : -1])
                del self._tail[-take:]
                self._count += take
                continue
            used = self._used
            if 2 * len(used) >= m:
                remaining = [i for i in range(m) if i not in used]
                self.rng.shuffle(remaining)
                self._tail = remaining
                self._used = set()
                continue
            randrange = self.rng.randrange
            used_add = used.add
            # The serial path re-checks density before every draw; so
            # must we, or the RNG streams would diverge at the switch.
            while len(out) < count and 2 * len(used) < m:
                while True:
                    value = randrange(m)
                    if value not in used:
                        used_add(value)
                        append(value)
                        break
                self._count += 1
        return out
