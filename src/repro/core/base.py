"""Abstract interface for UUIDP ID-generation algorithms.

The paper models an algorithm ``A`` as a distribution over permutations
of the universe ``[m]``: each instance reveals a uniformly-chosen-by-``A``
permutation one element at a time, with no knowledge of other instances.

This module fixes the concrete contract:

* the universe is ``range(m)`` (0-based; the paper's ``{1..m}`` shifted
  by one, which changes no probability),
* :meth:`IDGenerator.next_id` returns the next element of the permutation,
* within one instance, IDs never repeat (enforced and tested),
* once an instance cannot honour its schedule it raises
  :class:`~repro.errors.IDSpaceExhaustedError`.

``m`` may be an arbitrary-precision integer (``2**128`` works).
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError, IDSpaceExhaustedError


class IDGenerator(abc.ABC):
    """One uncoordinated instance of an ID-generation algorithm.

    Parameters
    ----------
    m:
        Size of the ID universe; IDs are drawn from ``range(m)``.
    rng:
        Source of randomness. Pass an explicitly seeded
        :class:`random.Random` for reproducibility; defaults to a fresh
        unseeded one.
    """

    #: Registry name; subclasses override (e.g. ``"cluster"``).
    name: str = "abstract"

    def __init__(self, m: int, rng: Optional[random.Random] = None):
        if m < 1:
            raise ConfigurationError(f"universe size m must be >= 1, got {m}")
        self.m = m
        self.rng = rng if rng is not None else random.Random()
        self._count = 0

    @property
    def count(self) -> int:
        """Number of IDs produced so far by this instance."""
        return self._count

    @property
    def remaining_capacity(self) -> int:
        """Upper bound on how many more IDs this instance can produce.

        Default: the full universe minus what was already produced.
        Subclasses with structural limits (``Bins*``) override.
        """
        return self.m - self._count

    def next_id(self) -> int:
        """Produce the next ID of this instance's random permutation."""
        if self._count >= self.m:
            raise IDSpaceExhaustedError(
                f"{self.name}: all {self.m} IDs produced", produced=self._count
            )
        value = self._generate()
        self._count += 1
        return value

    def take(self, count: int) -> List[int]:
        """Produce ``count`` IDs (convenience wrapper around ``next_id``)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        return [self.next_id() for _ in range(count)]

    def generate_batch(self, count: int) -> List[int]:
        """Produce up to ``count`` IDs as one vector.

        The returned list is exactly what ``count`` repeated
        :meth:`next_id` calls would have produced — same values, same
        order, same randomness consumption — so batched and serial
        callers are interchangeable bit for bit.

        Exhaustion mid-batch is not an error: the IDs produced before
        the instance ran out are returned, and callers detect the
        condition as ``len(result) < count``. A subsequent ``next_id``
        (or ``generate_batch``) raises (respectively returns ``[]``)
        just as the serial path would.

        Subclasses override this with vectorized fast paths; the
        default simply drives :meth:`next_id`.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        out: List[int] = []
        append = out.append
        for _ in range(count):
            try:
                append(self.next_id())
            except IDSpaceExhaustedError:
                break
        return out

    def iter_ids(self) -> Iterator[int]:
        """Iterate over IDs until the instance is exhausted."""
        while True:
            try:
                yield self.next_id()
            except IDSpaceExhaustedError:
                return

    @abc.abstractmethod
    def _generate(self) -> int:
        """Return the next ID. ``self._count`` IDs were already produced."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.m}, produced={self._count})"
