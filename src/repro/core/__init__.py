"""The paper's ID-generation algorithms (§3): the core contribution.

========================  ==========================================
:class:`RandomGenerator`  GUID-style uniform sampling w/o replacement
:class:`ClusterGenerator` RocksDB's random-start sequential IDs
:class:`BinsGenerator`    ``Bins(k)`` — shuffled k-ID bins
:class:`ClusterStarGenerator` ``Cluster*`` — adaptive-safe runs
:class:`BinsStarGenerator``   ``Bins*`` — competitively optimal
:class:`SkewAwareGenerator`   Lemma 24 per-profile optimum
========================  ==========================================
"""

from repro.core.base import IDGenerator
from repro.core.bins import BinsGenerator
from repro.core.bins_star import BinsStarGenerator, chunk_count
from repro.core.cluster import ClusterGenerator
from repro.core.cluster_star import ClusterStarGenerator
from repro.core.intervals import CircularIntervalSet
from repro.core.random_gen import RandomGenerator
from repro.core.registry import available_algorithms, make_generator, register
from repro.core.skew_aware import SkewAwareGenerator

__all__ = [
    "IDGenerator",
    "RandomGenerator",
    "ClusterGenerator",
    "BinsGenerator",
    "ClusterStarGenerator",
    "BinsStarGenerator",
    "SkewAwareGenerator",
    "CircularIntervalSet",
    "chunk_count",
    "make_generator",
    "register",
    "available_algorithms",
]
