"""``Cluster`` — RocksDB's uncoordinated ID algorithm.

Pick ``x ∈ [m]`` uniformly at random and return ``x, x+1, x+2, ...``
modulo ``m`` (§3.1). One instance therefore occupies a single contiguous
arc of the cycle ``Z_m``, so two instances collide only if their arcs
overlap: ``Pr = (d_i + d_j − 1)/m`` for demands ``d_i, d_j`` (Theorem 1's
pairwise event), giving overall ``p_Cluster(D) = Θ(min(1, n‖D‖₁/m))``.

Theorem 6 shows this is worst-case optimal against oblivious adversaries.
Lemma 7 shows it is *not* safe against adaptive adversaries: after seeing
everyone's first ID, an adversary can drive the two closest instances
into each other, inflating the probability by a factor of ``n``
(implemented in :class:`repro.adversary.attacks.ClosestPairAttack`).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.base import IDGenerator
from repro.errors import ConfigurationError


class ClusterGenerator(IDGenerator):
    """Sequential IDs from a uniformly random starting point (mod m)."""

    name = "cluster"

    def __init__(self, m: int, rng: Optional[random.Random] = None):
        super().__init__(m, rng)
        self._start = self.rng.randrange(self.m)

    @property
    def start(self) -> int:
        """The random starting point ``x`` of this instance's arc."""
        return self._start

    def _generate(self) -> int:
        return (self._start + self._count) % self.m

    def generate_batch(self, count: int) -> List[int]:
        """Vectorized fast path: one arc slice instead of ``count`` calls.

        The next ``count`` IDs are a contiguous arc of ``Z_m``, so they
        come out as at most two ``range`` extensions (the second when
        the arc wraps past ``m``). No randomness is consumed.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        take = min(count, self.m - self._count)
        start = (self._start + self._count) % self.m
        head = min(take, self.m - start)
        out = list(range(start, start + head))
        if take > head:  # the arc wraps around 0
            out.extend(range(take - head))
        self._count += take
        return out
