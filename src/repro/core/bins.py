"""``Bins(k)`` — the binned generalization of ``Random``.

Partition ``[m]`` into ``⌊m/k⌋`` bins of ``k`` consecutive IDs plus
``m mod k`` leftover IDs; visit the bins in a uniformly random order,
emitting each bin's IDs in increasing order, then emit the leftovers in
increasing order (§3.1). ``Bins(1)`` is exactly ``Random`` as a
distribution over permutations (bin = single ID).

Theorem 2 gives

    p_Bins(k)(D) = Θ(min(1, (‖D‖₁² − ‖D‖₂²)/(k·m) + n‖D‖₁/m + n²k/m)),

interpolating between ``Random`` (k = 1, first term dominates) and
``Cluster``-like behaviour (large k). ``Bins(h)`` is *the* optimal
algorithm for the uniform demand profile ``(h, ..., h)`` (Lemma 16),
which is why it anchors the paper's lower bounds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.core.base import IDGenerator
from repro.errors import ConfigurationError


class BinsGenerator(IDGenerator):
    """Random bin order, ascending within each bin, leftovers last."""

    name = "bins"

    def __init__(self, m: int, k: int, rng: Optional[random.Random] = None):
        super().__init__(m, rng)
        if not 1 <= k <= m:
            raise ConfigurationError(f"bin size k must be in [1, m={m}], got {k}")
        self.k = k
        self._num_bins = m // k
        self._leftover_start = self._num_bins * k
        self._used_bins: Set[int] = set()
        self._bin_tail: Optional[List[int]] = None
        self._current_bin: Optional[int] = None
        self._offset = 0  # position within the current bin

    @property
    def num_bins(self) -> int:
        """Number of full bins, ``⌊m/k⌋``."""
        return self._num_bins

    def bins_opened(self) -> int:
        """How many bins this instance has started emitting from."""
        if self._bin_tail is not None:
            opened_dense = self._num_bins - len(self._bin_tail)
            if self._current_bin is not None and self._offset > 0:
                opened_dense += 0  # current bin already excluded from tail
            return opened_dense
        return len(self._used_bins)

    def _pick_fresh_bin(self) -> int:
        """Choose an unused bin uniformly at random."""
        if self._bin_tail is not None:
            return self._bin_tail.pop()
        if 2 * len(self._used_bins) >= self._num_bins:
            remaining = [
                b for b in range(self._num_bins) if b not in self._used_bins
            ]
            self.rng.shuffle(remaining)
            self._bin_tail = remaining
            self._used_bins = set()
            return self._bin_tail.pop()
        while True:
            bin_index = self.rng.randrange(self._num_bins)
            if bin_index not in self._used_bins:
                self._used_bins.add(bin_index)
                return bin_index

    def _generate(self) -> int:
        binned_total = self._num_bins * self.k
        if self._count >= binned_total:
            # All bins exhausted: leftover IDs in increasing order.
            return self._leftover_start + (self._count - binned_total)
        if self._current_bin is None or self._offset == self.k:
            self._current_bin = self._pick_fresh_bin()
            self._offset = 0
        value = self._current_bin * self.k + self._offset
        self._offset += 1
        return value

    def generate_batch(self, count: int) -> List[int]:
        """Batched fast path: whole in-bin runs per iteration.

        Within a bin the IDs are consecutive, so each loop turn emits
        one ``range`` slice (the rest of the current bin, a leftover
        stretch, or a fresh bin). Randomness is consumed only by
        :meth:`_pick_fresh_bin`, in the same order as the serial path.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        k = self.k
        binned_total = self._num_bins * k
        out: List[int] = []
        while len(out) < count and self._count < self.m:
            if self._count >= binned_total:
                # Leftover IDs: one ascending slice to the requested end.
                start = self._leftover_start + (self._count - binned_total)
                take = min(count - len(out), self.m - self._count)
                out.extend(range(start, start + take))
                self._count += take
                continue
            if self._current_bin is None or self._offset == k:
                self._current_bin = self._pick_fresh_bin()
                self._offset = 0
            base = self._current_bin * k + self._offset
            take = min(count - len(out), k - self._offset)
            out.extend(range(base, base + take))
            self._offset += take
            self._count += take
        return out
