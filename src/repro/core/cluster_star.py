"""``Cluster*`` — adaptive-adversary-resistant clustering (§3.3, §6.1).

The instance serves requests from *runs* of exponentially growing
lengths ``r = 1, 2, 4, 8, ...``. Each new run's starting point is drawn
uniformly among all positions where the run would not overlap any run
previously placed *by this same instance* (other instances are unknown,
by the rules of the game).

Why it resists adaptivity: an adversary can only predict a long stretch
of an instance's future IDs after having already extracted roughly that
many IDs from it — the next run's location is fresh randomness. Yet the
exponential growth keeps the number of runs per instance at
``⌈log(1+d_i)⌉``, so the algorithm stays Cluster-like:

    max_Z p_Cluster*(Z) = O(min(1, (nd/m)·log(1 + d/n)))   (Theorem 8)

against adaptive adversaries with total demand ``d``, only a log factor
above the Ω(nd/m) lower bound of Theorem 6.

The paper restricts analysis to at most ``m/(2 log m)`` requests per
instance; an instance then opens at most ``log m`` runs of size at most
``m/(2 log m)`` each, which fit under worst-case fragmentation. This
implementation keeps producing while any valid placement exists and
raises :class:`~repro.errors.IDSpaceExhaustedError` only when the next
run truly cannot be placed (we shrink the final run to the largest
placeable size first, a practical completion the paper leaves open).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.base import IDGenerator
from repro.core.intervals import CircularIntervalSet
from repro.errors import ConfigurationError, IDSpaceExhaustedError


class ClusterStarGenerator(IDGenerator):
    """Exponentially growing runs, each placed uniformly among free slots.

    ``growth`` is the run-length multiplier between consecutive runs —
    the paper's algorithm uses 2. It is exposed for the ablation
    experiment A1: ``growth=1`` degenerates into fresh single-ID runs
    (``Random`` up to placement constraints, losing all locality), and
    large growth approaches plain ``Cluster`` (one dominant run,
    regaining Cluster's adaptive vulnerability).
    """

    name = "cluster_star"

    def __init__(
        self,
        m: int,
        rng: Optional[random.Random] = None,
        growth: int = 2,
    ):
        super().__init__(m, rng)
        if growth < 1:
            raise ConfigurationError(
                f"run growth factor must be >= 1, got {growth}"
            )
        self.growth = growth
        self._placed = CircularIntervalSet(m)
        # Mirror of the covered positions for the length-1 fast path
        # (dominant when growth=1): rejection sampling against a hash
        # set beats rebuilding the gap structure on every run.
        self._covered_ids: set = set()
        self._next_run_length = 1
        self._run_start = 0
        self._run_length = 0  # length of the currently open run
        self._run_remaining = 0  # IDs left in the currently open run

    @property
    def runs(self) -> List[Tuple[int, int]]:
        """The ``(start, length)`` runs opened so far, in order."""
        return self._placed.arcs

    @property
    def open_run_remaining(self) -> int:
        """IDs not yet emitted from the currently open run."""
        return self._run_remaining

    def _sample_single_start(self) -> int:
        """Fast path for length-1 runs: uniform over uncovered positions."""
        free = self.m - len(self._covered_ids)
        if free == 0:
            raise ValueError("cycle fully covered")
        if 2 * len(self._covered_ids) < self.m:
            while True:
                candidate = self.rng.randrange(self.m)
                if candidate not in self._covered_ids:
                    return candidate
        return self._placed.sample_free_start(1, self.rng)

    def _open_run(self) -> None:
        """Place the next run; shrink it if the ideal length cannot fit."""
        length = self._next_run_length
        while length >= 1:
            try:
                if length == 1:
                    start = self._sample_single_start()
                else:
                    start = self._placed.sample_free_start(
                        length, self.rng
                    )
            except ValueError:
                length //= 2
                continue
            self._placed.add(start, length)
            self._covered_ids.update(
                (start + offset) % self.m for offset in range(length)
            )
            self._run_start = start
            self._run_length = length
            self._run_remaining = length
            # The schedule grows based on the *intended* length so a
            # one-off shrink does not reset the exponential growth.
            self._next_run_length *= self.growth
            return
        raise IDSpaceExhaustedError(
            f"cluster_star: no space left on Z_{self.m} "
            f"(covered={self._placed.covered()})",
            produced=self._count,
        )

    def _generate(self) -> int:
        if self._run_remaining == 0:
            self._open_run()
        offset = self._run_length - self._run_remaining
        value = (self._run_start + offset) % self.m
        self._run_remaining -= 1
        return value

    def generate_batch(self, count: int) -> List[int]:
        """Batched fast path: the rest of each run as one arc slice.

        Run placement (the only consumer of randomness) still goes
        through :meth:`_open_run`, so the emitted sequence is
        bit-identical to repeated ``next_id``. Exhaustion mid-batch
        returns the partial batch, as the base contract specifies.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        m = self.m
        out: List[int] = []
        while len(out) < count and self._count < m:
            if self._run_remaining == 0:
                try:
                    self._open_run()
                except IDSpaceExhaustedError:
                    break
            offset = self._run_length - self._run_remaining
            start = (self._run_start + offset) % m
            take = min(count - len(out), self._run_remaining)
            head = min(take, m - start)
            out.extend(range(start, start + head))
            if take > head:  # the run wraps past m
                out.extend(range(take - head))
            self._run_remaining -= take
            self._count += take
        return out
