"""Interval arithmetic on the cycle ``Z_m``.

``Cluster*`` places exponentially growing runs on the cycle such that a
new run never overlaps the instance's previous runs. Rather than
rejection-sample starting points (which stalls as the cycle fills up),
we maintain the exact set of *blocked* positions as a union of circular
intervals and sample uniformly from its complement.

Intervals are half-open arcs ``[start, start + length) mod m`` with
``1 <= length <= m``. Internally every arc is normalized into at most
two linear ``(lo, hi)`` pieces within ``[0, m)``.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Tuple

from repro.errors import ConfigurationError

LinearInterval = Tuple[int, int]  # half-open [lo, hi) with 0 <= lo < hi <= m


def split_arc(start: int, length: int, m: int) -> List[LinearInterval]:
    """Normalize the circular arc ``[start, start+length) mod m``.

    Returns one linear piece if the arc does not wrap, two if it does,
    and the full ``[0, m)`` if ``length >= m``.
    """
    if length <= 0:
        return []
    if length >= m:
        return [(0, m)]
    start %= m
    end = start + length
    if end <= m:
        return [(start, end)]
    return [(start, m), (0, end - m)]


def merge_linear(pieces: List[LinearInterval]) -> List[LinearInterval]:
    """Merge overlapping/adjacent linear intervals into a sorted list."""
    if not pieces:
        return []
    pieces = sorted(pieces)
    merged = [pieces[0]]
    for lo, hi in pieces[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def complement_linear(pieces: List[LinearInterval], m: int) -> List[LinearInterval]:
    """Complement of a merged, sorted list of linear intervals in [0, m)."""
    gaps: List[LinearInterval] = []
    cursor = 0
    for lo, hi in pieces:
        if lo > cursor:
            gaps.append((cursor, lo))
        cursor = max(cursor, hi)
    if cursor < m:
        gaps.append((cursor, m))
    return gaps


def arcs_overlap(start_a: int, len_a: int, start_b: int, len_b: int, m: int) -> bool:
    """Do the circular arcs ``[a, a+len_a)`` and ``[b, b+len_b)`` intersect?"""
    for lo_a, hi_a in split_arc(start_a, len_a, m):
        for lo_b, hi_b in split_arc(start_b, len_b, m):
            if lo_a < hi_b and lo_b < hi_a:
                return True
    return False


class CircularIntervalSet:
    """A growing union of arcs on ``Z_m`` supporting uniform gap sampling.

    Used by ``Cluster*``: arcs are the runs an instance has already
    placed; :meth:`sample_free_start` draws a uniformly random starting
    point for a new run of a given length that cannot touch any existing
    arc.
    """

    def __init__(self, m: int):
        if m < 1:
            raise ConfigurationError(f"cycle size m must be >= 1, got {m}")
        self.m = m
        self._arcs: List[Tuple[int, int]] = []  # (start, length) as inserted

    @property
    def arcs(self) -> List[Tuple[int, int]]:
        """The inserted arcs, in insertion order."""
        return list(self._arcs)

    def covered(self) -> int:
        """Total number of positions covered by the union of arcs."""
        merged = merge_linear(
            [p for s, ln in self._arcs for p in split_arc(s, ln, self.m)]
        )
        return sum(hi - lo for lo, hi in merged)

    def add(self, start: int, length: int) -> None:
        """Insert the arc ``[start, start+length)`` (no overlap check)."""
        if length < 1:
            raise ConfigurationError(f"arc length must be >= 1, got {length}")
        self._arcs.append((start % self.m, length))

    def overlaps(self, start: int, length: int) -> bool:
        """Would the arc ``[start, start+length)`` touch an existing arc?"""
        return any(
            arcs_overlap(start, length, s, ln, self.m) for s, ln in self._arcs
        )

    def free_starts(self, run_length: int) -> List[LinearInterval]:
        """Linear intervals of valid starts for a new arc of ``run_length``.

        A start ``x`` is invalid iff ``[x, x+run_length)`` intersects some
        existing arc ``[s, s+ln)``, i.e. ``x ∈ [s - run_length + 1, s + ln)``
        (mod m) — a circular interval of length ``ln + run_length - 1``.
        """
        if run_length < 1:
            raise ConfigurationError(
                f"run length must be >= 1, got {run_length}"
            )
        blocked: List[LinearInterval] = []
        for s, ln in self._arcs:
            blocked.extend(
                split_arc(s - run_length + 1, ln + run_length - 1, self.m)
            )
        return complement_linear(merge_linear(blocked), self.m)

    def count_free_starts(self, run_length: int) -> int:
        """Number of valid starting points for a run of ``run_length``."""
        return sum(hi - lo for lo, hi in self.free_starts(run_length))

    def sample_free_start(self, run_length: int, rng: random.Random) -> int:
        """Uniformly sample a valid start, or raise ``ValueError`` if none.

        Exact (no rejection): picks the j-th free position for a uniform
        ``j`` via prefix sums over the free gaps.
        """
        gaps = self.free_starts(run_length)
        total = sum(hi - lo for lo, hi in gaps)
        if total == 0:
            raise ValueError(
                f"no room for a run of length {run_length} on Z_{self.m}"
            )
        target = rng.randrange(total)
        prefix = 0
        boundaries = []
        for lo, hi in gaps:
            prefix += hi - lo
            boundaries.append(prefix)
        index = bisect.bisect_right(boundaries, target)
        lo, hi = gaps[index]
        offset_into_gap = target - (boundaries[index] - (hi - lo))
        return lo + offset_into_gap
