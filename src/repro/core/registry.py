"""Name-based registry of ID-generation algorithms.

Experiments, the CLI and the benchmarks refer to algorithms by name
(``"cluster"``, ``"bins:16"``, ...). A *spec* is either a bare name or
``name:arg1:arg2`` for parameterized algorithms:

========  =======================  ==============================
spec      class                    parameters
========  =======================  ==============================
random    RandomGenerator          —
cluster   ClusterGenerator         —
bins:K    BinsGenerator            bin size ``K``
cluster*  ClusterStarGenerator     —  (alias: cluster_star)
bins*     BinsStarGenerator        —  (alias: bins_star)
skew:I:J  SkewAwareGenerator       target profile ``(I, J)``
========  =======================  ==============================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.base import IDGenerator
from repro.core.bins import BinsGenerator
from repro.core.bins_star import BinsStarGenerator
from repro.core.cluster import ClusterGenerator
from repro.core.cluster_star import ClusterStarGenerator
from repro.core.random_gen import RandomGenerator
from repro.core.skew_aware import SkewAwareGenerator
from repro.errors import ConfigurationError

GeneratorFactory = Callable[..., IDGenerator]

_REGISTRY: Dict[str, GeneratorFactory] = {}


def register(name: str, factory: GeneratorFactory) -> None:
    """Register ``factory`` under ``name`` (lowercase, no colons)."""
    if ":" in name:
        raise ConfigurationError(f"algorithm name may not contain ':': {name}")
    _REGISTRY[name.lower()] = factory


def available_algorithms() -> List[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_REGISTRY)


def make_generator(
    spec: str, m: int, rng: Optional[random.Random] = None
) -> IDGenerator:
    """Instantiate a generator from a spec string like ``"bins:16"``.

    Integer arguments after the name are passed positionally to the
    factory. ``cluster*`` / ``bins*`` are accepted as aliases.
    """
    parts = spec.strip().lower().split(":")
    name = parts[0].replace("*", "_star")
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {parts[0]!r}; available: "
            f"{', '.join(available_algorithms())}"
        )
    try:
        args = [int(p) for p in parts[1:]]
    except ValueError as exc:
        raise ConfigurationError(
            f"non-integer parameter in spec {spec!r}"
        ) from exc
    return _REGISTRY[name](m, *args, rng=rng)


register("random", RandomGenerator)
register("cluster", ClusterGenerator)
register("bins", BinsGenerator)
register("cluster_star", ClusterStarGenerator)
register("bins_star", BinsStarGenerator)
register("skew", SkewAwareGenerator)
