"""Workload generators: YCSB-style KV traffic, the serving-benchmark
driver, and UUIDP demand profiles."""

from repro.workloads.demand import (
    doubling_demand_sweep,
    max_skew_profile,
    random_compositions,
    skewed_pair_grid,
    uniform_profiles,
    zipf_profiles,
)
from repro.workloads.distributions import (
    EXACT_CDF_MAX,
    KeyPicker,
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianApproxPicker,
    ZipfianPicker,
    make_zipfian,
)
from repro.workloads.driver import (
    ChaosEvent,
    DriverConfig,
    DriverResult,
    LatencyHistogram,
    ShardResult,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
    store_target_factory,
)
from repro.workloads.ycsb import (
    WorkloadSpec,
    encode_key,
    full_workload,
    load_phase,
    make_value,
    run_phase,
)

__all__ = [
    "KeyPicker",
    "UniformPicker",
    "ZipfianPicker",
    "ZipfianApproxPicker",
    "make_zipfian",
    "EXACT_CDF_MAX",
    "ScrambledZipfianPicker",
    "LatestPicker",
    "WorkloadSpec",
    "encode_key",
    "make_value",
    "load_phase",
    "run_phase",
    "full_workload",
    "ChaosEvent",
    "DriverConfig",
    "DriverResult",
    "LatencyHistogram",
    "ShardResult",
    "WorkloadDriver",
    "store_target_factory",
    "cluster_target_factory",
    "flush_and_report",
    "uniform_profiles",
    "skewed_pair_grid",
    "random_compositions",
    "zipf_profiles",
    "max_skew_profile",
    "doubling_demand_sweep",
]
