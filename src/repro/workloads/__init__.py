"""Workload generators: YCSB-style KV traffic and UUIDP demand profiles."""

from repro.workloads.demand import (
    doubling_demand_sweep,
    max_skew_profile,
    random_compositions,
    skewed_pair_grid,
    uniform_profiles,
    zipf_profiles,
)
from repro.workloads.distributions import (
    KeyPicker,
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianPicker,
)
from repro.workloads.ycsb import (
    WorkloadSpec,
    encode_key,
    full_workload,
    load_phase,
    make_value,
    run_phase,
)

__all__ = [
    "KeyPicker",
    "UniformPicker",
    "ZipfianPicker",
    "ScrambledZipfianPicker",
    "LatestPicker",
    "WorkloadSpec",
    "encode_key",
    "make_value",
    "load_phase",
    "run_phase",
    "full_workload",
    "uniform_profiles",
    "skewed_pair_grid",
    "random_compositions",
    "zipf_profiles",
    "max_skew_profile",
    "doubling_demand_sweep",
]
