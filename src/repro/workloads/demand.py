"""Demand-profile workload generators for UUIDP experiments.

Produces the profile families each experiment sweeps over: uniform,
maximally skewed, power-of-two grids (the Φ support), Zipf-shaped, and
random compositions — all seeded and reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.adversary.profiles import (
    DemandProfile,
    sample_profile_d1,
    zipf_profile,
)
from repro.errors import ProfileError


def uniform_profiles(
    n_values: List[int], h: int
) -> Iterator[DemandProfile]:
    """``(h,)*n`` for each requested ``n``."""
    for n in n_values:
        yield DemandProfile.uniform(n, h)


def skewed_pair_grid(
    max_exponent: int,
) -> Iterator[Tuple[int, int, DemandProfile]]:
    """All two-instance profiles ``(2^i, 2^j)`` with ``i ≤ j ≤ max_exponent``.

    Yields ``(i, j, profile)`` — the grid of Theorem 10's Φ support and
    of the Bins* competitive experiment.
    """
    if max_exponent < 0:
        raise ProfileError("max_exponent must be >= 0")
    for i in range(max_exponent + 1):
        for j in range(i, max_exponent + 1):
            yield i, j, DemandProfile.of(1 << i, 1 << j)


def random_compositions(
    n: int, d: int, count: int, seed: int
) -> Iterator[DemandProfile]:
    """``count`` uniform samples from ``D1(n, d)``."""
    rng = random.Random(seed)
    for _ in range(count):
        yield sample_profile_d1(n, d, rng)


def zipf_profiles(
    n: int, d: int, skews: List[float], seed: int
) -> Iterator[Tuple[float, DemandProfile]]:
    """One Zipf-shaped profile per requested skew."""
    rng = random.Random(seed)
    for skew in skews:
        yield skew, zipf_profile(n, d, skew, rng)


def max_skew_profile(n: int, d: int) -> DemandProfile:
    """``(d−n+1, 1, ..., 1)`` — all excess demand on one instance.

    This is the §3.4 example where ``Cluster`` is a factor Θ(d) from
    optimal, motivating ``Bins*``.
    """
    if not 2 <= n <= d:
        raise ProfileError(f"need 2 <= n <= d, got n={n}, d={d}")
    return DemandProfile((d - n + 1,) + (1,) * (n - 1))


def doubling_demand_sweep(
    start: int, stop: int
) -> Iterator[int]:
    """``start, 2·start, 4·start, ...`` up to ``stop`` inclusive."""
    if start < 1 or stop < start:
        raise ProfileError(f"need 1 <= start <= stop")
    value = start
    while value <= stop:
        yield value
        value *= 2
