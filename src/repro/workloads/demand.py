"""Demand models: static experiment profiles and arrival processes.

Two families of demand live here:

* **Static demand profiles** — the profile families each paper
  experiment sweeps over: uniform, maximally skewed, power-of-two
  grids (the Φ support), Zipf-shaped, and random compositions — all
  seeded and reproducible. These describe *how many IDs each instance
  will mint*, frozen for a whole run.
* **Arrival processes** (:class:`ArrivalProcess`) — *time-varying*
  offered load for the serving stack: the instantaneous demand rate at
  each logical op tick of a
  :class:`~repro.workloads.driver.WorkloadDriver` run. The catalog is
  ``static`` (constant), ``diurnal`` (sinusoid over a fixed period),
  ``flash`` (a flash-crowd step inside a tick window), and ``poisson``
  (Poisson-arriving bursts drawn from a seeded SplitMix64 stream).
  Every process is a **pure function of** ``(seed, tick)`` — no
  internal state, no wall clock — so the rate schedule, and therefore
  every autoscaling decision derived from it
  (:mod:`repro.distributed.autoscaler`), is bit-reproducible at any
  ``workers=`` split.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.adversary.profiles import (
    DemandProfile,
    sample_profile_d1,
    zipf_profile,
)
from repro.errors import ProfileError
from repro.simulation.seeds import derive_seed

#: Seed-path label for arrival-process draws (fixed constant — part of
#: the reproducibility contract, never change it).
_ARRIVAL_LABEL = 0xA221

#: The arrival-process catalog (the ``--arrival`` CLI choices).
ARRIVAL_KINDS = ("static", "diurnal", "flash", "poisson")


def _uniform01(seed: int, *path: int) -> float:
    """A uniform draw in [0, 1) that is a pure function of its inputs.

    Uses the SplitMix64 derivation chain, so adjacent ticks are
    statistically independent and the draw never touches shared RNG
    state.
    """
    return derive_seed(seed, _ARRIVAL_LABEL, *path) / float(1 << 64)


@dataclass(frozen=True)
class ArrivalProcess:
    """A deterministic time-varying demand signal for serving runs.

    :meth:`rate` maps a logical op tick (the driver's 1-based op
    counter — the same clock :class:`~repro.workloads.driver.ChaosEvent`
    and ``rebalance_every`` run on) to the instantaneous offered load,
    in ops per logical second. The process is stateless: the rate at
    tick ``t`` is a pure function of ``(seed, t)`` and the frozen
    parameters, so any subsequence of ticks can be evaluated in any
    order — on any worker — and agree bit-for-bit.

    Parameters
    ----------
    kind:
        One of :data:`ARRIVAL_KINDS`:

        * ``static`` — ``base_rate`` forever.
        * ``diurnal`` — a sinusoid: ``base_rate * (1 + amplitude *
          sin(2π * tick / period))``; one full day per ``period``
          ticks.
        * ``flash`` — ``base_rate``, except a flash crowd multiplies
          demand by ``peak`` for ticks in ``[flash_at, flash_at +
          flash_ticks)``.
        * ``poisson`` — bursts *arrive* as a Poisson process: each
          tick opens a burst with probability ``burst_prob`` (drawn
          from the seeded SplitMix64 stream, independently per tick),
          and an open burst multiplies demand by ``peak`` for
          ``burst_ticks`` ticks. Overlapping bursts do not stack.
    base_rate:
        Mean offered load, in ops per logical second.
    period / amplitude:
        Diurnal shape. ``amplitude`` must stay in [0, 1) so the rate
        stays positive.
    flash_at / flash_ticks / peak:
        Flash-crowd window and its demand multiplier (``peak`` also
        scales poisson bursts).
    burst_prob / burst_ticks:
        Poisson burst arrival probability per tick, and burst length.
    """

    kind: str = "static"
    base_rate: float = 2000.0
    period: int = 2000
    amplitude: float = 0.6
    flash_at: int = 1000
    flash_ticks: int = 2000
    peak: float = 4.0
    burst_prob: float = 0.002
    burst_ticks: int = 200

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ProfileError(
                f"unknown arrival kind {self.kind!r}; "
                f"use one of {', '.join(ARRIVAL_KINDS)}"
            )
        if self.base_rate <= 0:
            raise ProfileError("base_rate must be > 0")
        if self.period < 2:
            raise ProfileError("period must be >= 2 ticks")
        if not 0.0 <= self.amplitude < 1.0:
            raise ProfileError("amplitude must be in [0, 1)")
        if self.flash_at < 1 or self.flash_ticks < 1:
            raise ProfileError("flash window must start at tick >= 1")
        if self.peak < 1.0:
            raise ProfileError("peak must be >= 1.0")
        if not 0.0 <= self.burst_prob <= 1.0:
            raise ProfileError("burst_prob must be in [0, 1]")
        if self.burst_ticks < 1:
            raise ProfileError("burst_ticks must be >= 1")

    def _burst_open(self, seed: int, tick: int) -> bool:
        """Is a poisson burst covering ``tick``?

        A burst opened at any tick in ``(tick - burst_ticks, tick]``
        covers it; each opening is an independent per-tick Bernoulli
        draw, so the answer is a pure function of ``(seed, tick)`` at
        the cost of an O(burst_ticks) window scan.
        """
        start = max(1, tick - self.burst_ticks + 1)
        for opened in range(start, tick + 1):
            if _uniform01(seed, opened) < self.burst_prob:
                return True
        return False

    def rate(self, seed: int, tick: int) -> float:
        """Offered load at ``tick``, in ops per logical second.

        Pure in ``(seed, tick)``: same arguments, same float, on any
        worker, in any evaluation order.
        """
        if tick < 1:
            raise ProfileError("ticks are 1-based (the driver's op counter)")
        if self.kind == "static":
            return self.base_rate
        if self.kind == "diurnal":
            phase = 2.0 * math.pi * (tick % self.period) / self.period
            return self.base_rate * (1.0 + self.amplitude * math.sin(phase))
        if self.kind == "flash":
            if self.flash_at <= tick < self.flash_at + self.flash_ticks:
                return self.base_rate * self.peak
            return self.base_rate
        # poisson
        if self._burst_open(seed, tick):
            return self.base_rate * self.peak
        return self.base_rate


def make_arrival(kind: str, base_rate: float, **knobs) -> ArrivalProcess:
    """Build an :class:`ArrivalProcess` from CLI-shaped arguments.

    ``knobs`` may override any shape parameter; unknown names raise
    :class:`~repro.errors.ProfileError` (dataclass TypeError text makes
    a poor CLI message).
    """
    valid = {
        "period", "amplitude", "flash_at", "flash_ticks", "peak",
        "burst_prob", "burst_ticks",
    }
    unknown = sorted(set(knobs) - valid)
    if unknown:
        raise ProfileError(
            f"unknown arrival knob(s): {', '.join(unknown)}"
        )
    return ArrivalProcess(kind=kind, base_rate=base_rate, **knobs)


def uniform_profiles(
    n_values: List[int], h: int
) -> Iterator[DemandProfile]:
    """``(h,)*n`` for each requested ``n``."""
    for n in n_values:
        yield DemandProfile.uniform(n, h)


def skewed_pair_grid(
    max_exponent: int,
) -> Iterator[Tuple[int, int, DemandProfile]]:
    """All two-instance profiles ``(2^i, 2^j)`` with ``i ≤ j ≤ max_exponent``.

    Yields ``(i, j, profile)`` — the grid of Theorem 10's Φ support and
    of the Bins* competitive experiment.
    """
    if max_exponent < 0:
        raise ProfileError("max_exponent must be >= 0")
    for i in range(max_exponent + 1):
        for j in range(i, max_exponent + 1):
            yield i, j, DemandProfile.of(1 << i, 1 << j)


def random_compositions(
    n: int, d: int, count: int, seed: int
) -> Iterator[DemandProfile]:
    """``count`` uniform samples from ``D1(n, d)``."""
    rng = random.Random(seed)
    for _ in range(count):
        yield sample_profile_d1(n, d, rng)


def zipf_profiles(
    n: int, d: int, skews: List[float], seed: int
) -> Iterator[Tuple[float, DemandProfile]]:
    """One Zipf-shaped profile per requested skew."""
    rng = random.Random(seed)
    for skew in skews:
        yield skew, zipf_profile(n, d, skew, rng)


def max_skew_profile(n: int, d: int) -> DemandProfile:
    """``(d−n+1, 1, ..., 1)`` — all excess demand on one instance.

    This is the §3.4 example where ``Cluster`` is a factor Θ(d) from
    optimal, motivating ``Bins*``.
    """
    if not 2 <= n <= d:
        raise ProfileError(f"need 2 <= n <= d, got n={n}, d={d}")
    return DemandProfile((d - n + 1,) + (1,) * (n - 1))


def doubling_demand_sweep(
    start: int, stop: int
) -> Iterator[int]:
    """``start, 2·start, 4·start, ...`` up to ``stop`` inclusive."""
    if start < 1 or stop < start:
        raise ProfileError(f"need 1 <= start <= stop")
    value = start
    while value <= stop:
        yield value
        value *= 2
