"""YCSB-style workload generators for the KV substrate.

Generates streams of ``(op, key, value)`` tuples consumable by
:meth:`repro.distributed.cluster.ClusterSimulator.run_workload` or a
single :class:`~repro.kvstore.db.MiniRocks`. The standard mixes:

====  ======================  =====================
name  mix                     distribution
====  ======================  =====================
A     50% read / 50% update   zipfian
B     95% read / 5% update    zipfian
C     100% read               zipfian
D     95% read / 5% insert    latest
F     50% read / 50% RMW      zipfian (RMW = get+put)
====  ======================  =====================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
)

Operation = Tuple[str, bytes, bytes]

_MIXES = {
    "a": (0.5, 0.0, 0.5, 0.0),
    "b": (0.95, 0.0, 0.05, 0.0),
    "c": (1.0, 0.0, 0.0, 0.0),
    "d": (0.95, 0.05, 0.0, 0.0),
    "f": (0.5, 0.0, 0.0, 0.5),
}  # (read, insert, update, read-modify-write)


def encode_key(index: int, width: int = 12) -> bytes:
    """Fixed-width decimal key encoding (sortable, like YCSB's)."""
    return b"user" + str(index).zfill(width).encode()


def make_value(rng: random.Random, size: int = 32) -> bytes:
    """A random printable value of ``size`` bytes."""
    return bytes(rng.randrange(32, 127) for _ in range(size))


@dataclass
class WorkloadSpec:
    """Parameters of a YCSB-style run."""

    workload: str = "b"
    record_count: int = 1000
    operation_count: int = 5000
    value_size: int = 32
    zipf_theta: float = 0.99
    uniform: bool = False  # override zipfian with uniform picks


def load_phase(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """The initial bulk load: one put per record."""
    for index in range(spec.record_count):
        yield "put", encode_key(index), make_value(rng, spec.value_size)


def run_phase(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """The measured phase: the op mix over the loaded records."""
    mix = _MIXES.get(spec.workload.lower())
    if mix is None:
        raise ConfigurationError(
            f"unknown workload {spec.workload!r}; known: {sorted(_MIXES)}"
        )
    read_p, insert_p, update_p, rmw_p = mix
    if spec.uniform:
        picker = UniformPicker(spec.record_count)
    else:
        picker = ScrambledZipfianPicker(spec.record_count, spec.zipf_theta)
    latest: Optional[LatestPicker] = None
    next_insert = spec.record_count
    if insert_p > 0:
        latest = LatestPicker(spec.record_count, spec.zipf_theta)
    for _ in range(spec.operation_count):
        roll = rng.random()
        if roll < read_p:
            if latest is not None:
                index = latest.pick(rng)
            else:
                index = picker.pick(rng)
            yield "get", encode_key(index), b""
        elif roll < read_p + insert_p:
            yield "put", encode_key(next_insert), make_value(
                rng, spec.value_size
            )
            next_insert += 1
            if latest is not None:
                latest.insert_count = next_insert
        elif roll < read_p + insert_p + update_p:
            index = picker.pick(rng)
            yield "put", encode_key(index), make_value(rng, spec.value_size)
        else:  # read-modify-write: surface as a get followed by a put
            index = picker.pick(rng)
            yield "get", encode_key(index), b""
            yield "put", encode_key(index), make_value(rng, spec.value_size)


def full_workload(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """Load phase followed by the run phase."""
    yield from load_phase(spec, rng)
    yield from run_phase(spec, rng)
