"""YCSB-style workload generators for the KV substrate.

Generates streams of ``(op, key, value)`` tuples consumable by
:meth:`repro.distributed.cluster.ClusterSimulator.run_workload`, a
single :class:`~repro.kvstore.db.MiniRocks`, or the
:class:`~repro.workloads.driver.WorkloadDriver`. The standard mixes:

====  ======================  =====================
name  mix                     distribution
====  ======================  =====================
A     50% read / 50% update   zipfian
B     95% read / 5% update    zipfian
C     100% read               zipfian
D     95% read / 5% insert    latest
E     95% scan / 5% insert    zipfian (scan starts)
F     50% read / 50% RMW      zipfian
====  ======================  =====================

Every stream emits **exactly** ``operation_count`` logical operations.
Two ops are composite at execution time:

* ``("rmw", key, new_value)`` — read-modify-write, one logical op;
  the executor performs its get + put pair.
* ``("scan", start_key, ascii-length)`` — range scan of up to
  ``int(value)`` rows starting at ``start_key``; the executor runs it
  through the store's scan/iterator path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    KeyPicker,
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
)

Operation = Tuple[str, bytes, bytes]

_MIXES = {
    "a": (0.5, 0.0, 0.5, 0.0, 0.0),
    "b": (0.95, 0.0, 0.05, 0.0, 0.0),
    "c": (1.0, 0.0, 0.0, 0.0, 0.0),
    "d": (0.95, 0.05, 0.0, 0.0, 0.0),
    "e": (0.0, 0.05, 0.0, 0.0, 0.95),
    "f": (0.5, 0.0, 0.0, 0.5, 0.0),
}  # (read, insert, update, read-modify-write, scan)

#: Workloads whose reads target recently inserted keys.
_LATEST_WORKLOADS = frozenset({"d"})


def encode_key(index: int, width: int = 12) -> bytes:
    """Fixed-width decimal key encoding (sortable, like YCSB's)."""
    return b"user" + str(index).zfill(width).encode()


def make_value(rng: random.Random, size: int = 32) -> bytes:
    """A random printable value of ``size`` bytes."""
    return bytes(rng.randrange(32, 127) for _ in range(size))


@dataclass
class WorkloadSpec:
    """Parameters of a YCSB-style run."""

    workload: str = "b"
    record_count: int = 1000
    operation_count: int = 5000
    value_size: int = 32
    zipf_theta: float = 0.99
    uniform: bool = False  # override zipfian with uniform picks
    #: Scan lengths (workload E) are uniform in ``[1, max_scan_length]``.
    max_scan_length: int = 100


def load_phase(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """The initial bulk load: one put per record."""
    for index in range(spec.record_count):
        yield "put", encode_key(index), make_value(rng, spec.value_size)


def run_phase(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """The measured phase: exactly ``operation_count`` logical ops.

    Read-modify-write is budgeted as **one** logical op — it is emitted
    as a single ``"rmw"`` tuple whose executor performs the get + put
    pair — so every workload's stream length equals the requested
    operation count (a prior version emitted the pair inline, making
    workload F overshoot by ~25%).
    """
    mix = _MIXES.get(spec.workload.lower())
    if mix is None:
        raise ConfigurationError(
            f"unknown workload {spec.workload!r}; known: {sorted(_MIXES)}"
        )
    read_p, insert_p, update_p, rmw_p, scan_p = mix
    if spec.max_scan_length < 1:
        raise ConfigurationError("max_scan_length must be >= 1")
    latest: Optional[LatestPicker] = None
    if spec.workload.lower() in _LATEST_WORKLOADS:
        latest = LatestPicker(spec.record_count, spec.zipf_theta)
    # Only build the base-distribution picker when some branch consults
    # it — workload D reads through LatestPicker, so paying the exact
    # CDF build there would be pure setup waste.
    needs_picker = (
        (read_p > 0 and latest is None)
        or update_p > 0 or rmw_p > 0 or scan_p > 0
    )
    picker: Optional[KeyPicker] = None
    if needs_picker:
        if spec.uniform:
            picker = UniformPicker(spec.record_count)
        else:
            picker = ScrambledZipfianPicker(
                spec.record_count, spec.zipf_theta
            )
    # Keys [0, record_count + inserted) exist; the insert branch below
    # is the only place `inserted` (and the latest window) advances, so
    # the two cannot drift even when insert_p rounds to zero ops.
    inserted = 0
    for _ in range(spec.operation_count):
        roll = rng.random()
        if roll < read_p:
            if latest is not None:
                index = latest.pick(rng)
                # Pin the picker's contract: reads may only name keys
                # that exist (the window advances solely through the
                # insert branch below).
                assert 0 <= index < spec.record_count + inserted, (
                    f"LatestPicker picked {index}, outside "
                    f"[0, {spec.record_count + inserted})"
                )
            else:
                index = picker.pick(rng)
            yield "get", encode_key(index), b""
        elif roll < read_p + insert_p:
            index = spec.record_count + inserted
            inserted += 1
            if latest is not None:
                latest.record_insert()
            yield "put", encode_key(index), make_value(rng, spec.value_size)
        elif roll < read_p + insert_p + update_p:
            index = picker.pick(rng)
            yield "put", encode_key(index), make_value(rng, spec.value_size)
        elif roll < read_p + insert_p + update_p + rmw_p:
            # One logical op; executors perform the get + put pair.
            index = picker.pick(rng)
            yield "rmw", encode_key(index), make_value(rng, spec.value_size)
        else:  # scan: zipfian start key, uniform length
            index = picker.pick(rng)
            length = rng.randrange(1, spec.max_scan_length + 1)
            yield "scan", encode_key(index), str(length).encode()


def full_workload(
    spec: WorkloadSpec, rng: random.Random
) -> Iterator[Operation]:
    """Load phase followed by the run phase."""
    yield from load_phase(spec, rng)
    yield from run_phase(spec, rng)
