"""The workload driver: YCSB streams executed as a serving benchmark.

:class:`WorkloadDriver` turns the op streams of
:mod:`repro.workloads.ycsb` into a production-style harness. A run is
``shards`` independent client streams, each driving its **own** target
instance (a :class:`~repro.kvstore.db.MiniRocks` store or a
:class:`~repro.distributed.cluster.ClusterSimulator` fleet) through
three phases: bulk load, warmup (executed, not measured), and the
measured phase, with per-op latency captured in a log-bucketed
:class:`LatencyHistogram` (p50/p95/p99) plus aggregate throughput.

Determinism contract (the same one the engine registry established for
Monte-Carlo in ``repro.simulation.plan``): shard ``s``'s op stream and
its target's RNG derive from
``derive_seed(config.seed, _SHARD_LABEL, s)``, so each shard's op
stream and per-op outcomes are pure functions of ``(seed, shard)``.
``workers`` only chooses how many shards execute concurrently —
fingerprints, op counts, and every per-op outcome are **bit-identical
at any** ``workers=`` **count**; only wall-clock metrics (ops/s,
latency percentiles) vary run to run.

Elastic runs extend the same contract: with
``DriverConfig.autoscaler`` set, each shard's fleet scales up/down and
sheds load under an :class:`~repro.distributed.autoscaler.Autoscaler`
driven by a deterministic arrival process
(:class:`~repro.workloads.demand.ArrivalProcess`) — scale-event
schedules and shed decisions are pure in ``(seed, tick)`` too.
"""

from __future__ import annotations

import random
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.distributed.cluster import ClusterSimulator
from repro.errors import (
    ClusterUnavailableError,
    ConfigurationError,
    RPCTimeoutError,
)
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.simulation.seeds import derive_seed
from repro.workloads.ycsb import WorkloadSpec, load_phase, run_phase

if TYPE_CHECKING:  # runtime import is deferred (circular with driver)
    from repro.distributed.autoscaler import AutoscalerConfig

#: Seed-path labels (arbitrary, fixed constants — part of the
#: reproducibility contract, never change them).
_SHARD_LABEL = 0xD21E
_STREAM_LABEL = 0x0B5
_TARGET_LABEL = 0x7A6

#: Outcome digest recorded for an op that failed with a
#: ``ClusterUnavailableError`` (quorum loss, RPC timeout, dead
#: connection). A fixed marker keeps the fingerprint deterministic
#: whenever the *failure itself* is deterministic (e.g. a chaos
#: schedule that provably breaks quorum); wall-clock-dependent
#: failures such as timeouts make the run non-comparable and are
#: reported separately in :attr:`ShardResult.timeouts`.
FAILED_OP_OUTCOME = b"\xfe"


class LatencyHistogram:
    """Log-bucketed latency histogram with ~6% relative resolution.

    HdrHistogram-style: powers of two split into 16 linear sub-buckets,
    so ``record`` is O(1), memory is O(log(max latency)), and
    percentiles come back with bounded relative error — the structure
    production serving benchmarks use, and cheap enough to sit on the
    per-op hot path.
    """

    SUBBUCKET_BITS = 4
    SUBBUCKETS = 1 << SUBBUCKET_BITS

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    @classmethod
    def _bucket_of(cls, ns: int) -> int:
        if ns < cls.SUBBUCKETS:
            return ns
        msb = ns.bit_length() - 1
        shift = msb - cls.SUBBUCKET_BITS
        sub = ns >> shift  # in [SUBBUCKETS, 2*SUBBUCKETS)
        return (shift + 1) * cls.SUBBUCKETS + (sub - cls.SUBBUCKETS)

    @classmethod
    def _bucket_midpoint(cls, bucket: int) -> int:
        if bucket < cls.SUBBUCKETS:
            return bucket
        level = bucket // cls.SUBBUCKETS  # == shift + 1 from _bucket_of
        sub = bucket % cls.SUBBUCKETS + cls.SUBBUCKETS
        width = 1 << (level - 1)
        return (sub << (level - 1)) + (width - 1) // 2

    def record(self, ns: int) -> None:
        """Record one latency sample, in nanoseconds."""
        if ns < 0:
            ns = 0
        bucket = self._bucket_of(ns)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.count += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for bucket, count in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0) + count
        self.count += other.count
        self.total_ns += other.total_ns
        self.max_ns = max(self.max_ns, other.max_ns)

    def percentile(self, q: float) -> int:
        """Latency (ns) at quantile ``q`` in [0, 1], to bucket accuracy."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0
        threshold = q * self.count
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= threshold:
                return self._bucket_midpoint(bucket)
        return self.max_ns

    @property
    def mean_ns(self) -> float:
        """Mean recorded latency in nanoseconds (0.0 when empty)."""
        return self.total_ns / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The tail numbers a serving benchmark reports, in microseconds."""
        return {
            "count": self.count,
            "mean_us": self.mean_ns / 1000.0,
            "p50_us": self.percentile(0.50) / 1000.0,
            "p95_us": self.percentile(0.95) / 1000.0,
            "p99_us": self.percentile(0.99) / 1000.0,
            "max_us": self.max_ns / 1000.0,
        }


@dataclass(frozen=True)
class ChaosEvent:
    """One fault-injection action on a shard's cluster target.

    ``at_op`` is a **logical op tick**: the 1-based count of executed
    logical ops across the shard's load, warmup, and measured phases —
    the same counter that drives ``rebalance_every``. Because the tick
    stream is a pure function of ``(seed, shard)``, a chaos schedule
    preserves the driver's determinism contract: op streams and
    per-op outcome fingerprints stay bit-identical at any ``workers=``
    count for a fixed seed + schedule. Events whose tick exceeds the
    stream length never fire.
    """

    at_op: int
    #: ``"kill"`` or ``"recover"``.
    action: str
    #: Node index within the shard's cluster target.
    node: int
    #: Failure model for kill events: ``"outage"`` (unreachable, state
    #: kept — the default) or ``"crash"`` (process death on a durable
    #: cluster: memtable lost, recover() replays the WAL). Ignored on
    #: recover events.
    mode: str = "outage"

    def __post_init__(self) -> None:
        if self.at_op < 1:
            raise ConfigurationError("chaos at_op must be >= 1")
        if self.action not in ("kill", "recover"):
            raise ConfigurationError(
                f"chaos action must be 'kill' or 'recover', "
                f"got {self.action!r}"
            )
        if self.node < 0:
            raise ConfigurationError("chaos node index must be >= 0")
        if self.mode not in ("outage", "crash"):
            raise ConfigurationError(
                f"chaos mode must be 'outage' or 'crash', "
                f"got {self.mode!r}"
            )


def validate_chaos_schedule(events) -> None:
    """Reject chaos schedules that cannot play out as written.

    The driver applies events sorted by tick (same-tick events in the
    order given), so a recover at or before its kill tick would either
    crash mid-run ("already alive") or — worse — kill-then-recover
    within one tick and silently no-op the outage the schedule meant to
    inject. Per node, this walks the schedule in driver order and
    requires: no kill of an already-dead node, no recover of a node
    that is alive, and every recover strictly after the kill it undoes.
    Raises :class:`~repro.errors.ConfigurationError` with the offending
    pair spelled out; used by the ``uuidp kv`` pre-flight so
    misconfigurations fail before the load phase, not 90% into a run.
    """
    ordered = sorted(events, key=lambda event: event.at_op)
    last_kill: Dict[int, int] = {}
    dead: set = set()
    for event in ordered:
        if event.action == "kill":
            if event.node in dead:
                raise ConfigurationError(
                    f"chaos schedule kills node {event.node} at op "
                    f"{event.at_op} but it is already dead (killed at "
                    f"op {last_kill[event.node]} with no recover in "
                    "between)"
                )
            dead.add(event.node)
            last_kill[event.node] = event.at_op
        else:  # recover
            if event.node not in dead:
                raise ConfigurationError(
                    f"chaos schedule recovers node {event.node} at op "
                    f"{event.at_op} but no earlier kill left it dead "
                    "(a recover tick at or before its kill tick "
                    "silently no-ops — recover must come strictly "
                    "after the kill)"
                )
            if event.at_op <= last_kill[event.node]:
                raise ConfigurationError(
                    f"chaos schedule recovers node {event.node} at op "
                    f"{event.at_op}, at or before its kill at op "
                    f"{last_kill[event.node]} — recover must come "
                    "strictly after the kill it undoes"
                )
            dead.discard(event.node)


@dataclass(frozen=True)
class DriverConfig:
    """Policy object for one :class:`WorkloadDriver` run."""

    spec: WorkloadSpec
    #: Independent client streams, each with its own target instance.
    #: Fixed by config — NOT by ``workers`` — so results don't depend
    #: on execution parallelism.
    shards: int = 4
    #: How many shards execute concurrently (wall-clock only).
    workers: int = 1
    #: Ops per shard executed (and discarded) before measurement; the
    #: measured phase continues the same stream.
    warmup_operations: int = 0
    seed: int = 0
    #: Cluster targets only: run the load balancer after every k
    #: logical ops (load + warmup + measured all count).
    rebalance_every: Optional[int] = None
    moves_per_rebalance: int = 2
    #: Cluster targets only: kill/recover nodes at fixed logical op
    #: ticks (applied identically to every shard's own fleet). Stored
    #: sorted by tick; same-tick events apply in the order given.
    chaos: Tuple[ChaosEvent, ...] = ()
    #: Elastic serving: run each shard under an
    #: :class:`~repro.distributed.autoscaler.Autoscaler` driving
    #: time-varying demand (the config's ``arrival`` process) through
    #: a deterministic queue model — scale/shed decisions are pure in
    #: ``(seed, tick)``, so fingerprints and scale schedules stay
    #: bit-identical at any ``workers=`` count. ``None`` (default)
    #: keeps the classic statically provisioned run.
    autoscaler: Optional["AutoscalerConfig"] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.warmup_operations < 0:
            raise ConfigurationError("warmup_operations must be >= 0")
        if self.rebalance_every is not None and self.rebalance_every < 1:
            raise ConfigurationError("rebalance_every must be >= 1")
        object.__setattr__(
            self,
            "chaos",
            tuple(
                sorted(self.chaos, key=lambda event: event.at_op)
            ),
        )


@dataclass
class ShardResult:
    """What one shard's client stream produced."""

    shard: int
    #: Measured logical ops executed (== spec.operation_count).
    operations: int
    histogram: LatencyHistogram
    #: CRC32 over every measured op and its outcome — the determinism
    #: witness: pure in (seed, shard).
    fingerprint: int
    op_counts: Dict[str, int]
    #: Wall-clock duration of this shard's measured phase.
    elapsed_seconds: float
    #: Absolute perf_counter() bounds of the measured phase (equal when
    #: nothing was measured); the aggregate throughput span comes from
    #: these, so concurrent shards aren't double-counted.
    measure_started: float = 0.0
    measure_ended: float = 0.0
    #: Whatever the ``collect`` callback returned for this shard's
    #: target (e.g. a ClusterReport), or None.
    collected: Any = None
    #: Ops (warmup + measured) that failed with a
    #: ``ClusterUnavailableError``-class error, per op type. Failed
    #: measured ops still count toward :attr:`operations` and hash the
    #: :data:`FAILED_OP_OUTCOME` marker into the fingerprint.
    op_errors: Dict[str, int] = field(default_factory=dict)
    #: The subset of those failures that were RPC timeouts
    #: (latency-dependent — a run with any is not
    #: fingerprint-comparable to a clean run).
    timeouts: int = 0
    #: Ops shed by autoscaler admission control: never sent to the
    #: target, fingerprinted as :data:`FAILED_OP_OUTCOME`, and counted
    #: here — NOT in :attr:`op_errors` (a shed is a policy decision,
    #: not a failure). Deterministic, unlike timeouts.
    shed_ops: int = 0
    #: :meth:`Autoscaler.summary` payload (scale events, SLO
    #: accounting, schedule fingerprint) when the shard ran under an
    #: autoscaler, else ``None``.
    elasticity: Optional[Dict[str, Any]] = None


@dataclass
class DriverResult:
    """Aggregate of a full driver run."""

    config: DriverConfig
    shard_results: List[ShardResult]
    #: Whole-run wall clock (target build + load + warmup + measured +
    #: collect); throughput uses :attr:`measured_elapsed_seconds`.
    elapsed_seconds: float
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def __post_init__(self) -> None:
        for shard in self.shard_results:
            self.histogram.merge(shard.histogram)

    @property
    def operations(self) -> int:
        """Total measured logical ops across shards."""
        return sum(s.operations for s in self.shard_results)

    @property
    def measured_elapsed_seconds(self) -> float:
        """Wall-clock time spent inside measured phases: the union of
        the shards' measured intervals. Load, warmup, and collect time
        are excluded (serial shards contribute disjoint intervals that
        sum; concurrent shards overlap rather than double-counting)."""
        intervals = sorted(
            (s.measure_started, s.measure_ended)
            for s in self.shard_results
            if s.operations > 0
        )
        total = 0.0
        span_start: Optional[float] = None
        span_end = 0.0
        for start, end in intervals:
            if span_start is None or start > span_end:
                if span_start is not None:
                    total += span_end - span_start
                span_start, span_end = start, end
            else:
                span_end = max(span_end, end)
        if span_start is not None:
            total += span_end - span_start
        return total

    @property
    def ops_per_second(self) -> float:
        """Measured-phase throughput (measured ops / measured span)."""
        span = self.measured_elapsed_seconds
        if span <= 0:
            return 0.0
        return self.operations / span

    @property
    def fingerprint(self) -> int:
        """Order-fixed combination of the per-shard fingerprints."""
        crc = 0
        for shard in self.shard_results:
            crc = zlib.crc32(
                shard.fingerprint.to_bytes(4, "little"), crc
            )
        return crc

    @property
    def op_counts(self) -> Dict[str, int]:
        """Per-op totals merged across all shards."""
        merged: Dict[str, int] = {}
        for shard in self.shard_results:
            for op, count in shard.op_counts.items():
                merged[op] = merged.get(op, 0) + count
        return merged

    @property
    def op_errors(self) -> Dict[str, int]:
        """Failed ops per op type, across shards (see ShardResult)."""
        merged: Dict[str, int] = {}
        for shard in self.shard_results:
            for op, count in shard.op_errors.items():
                merged[op] = merged.get(op, 0) + count
        return merged

    @property
    def timeouts(self) -> int:
        """RPC timeouts across shards."""
        return sum(s.timeouts for s in self.shard_results)

    @property
    def shed_ops(self) -> int:
        """Ops shed by autoscaler admission control, across shards."""
        return sum(s.shed_ops for s in self.shard_results)

    @property
    def elasticity(self) -> Optional[Dict[str, Any]]:
        """Merged autoscaler payload (see
        :func:`~repro.distributed.autoscaler.summarize_shards`), or
        ``None`` for classic statically provisioned runs."""
        from repro.distributed.autoscaler import summarize_shards

        return summarize_shards(
            [s.elasticity for s in self.shard_results]
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the bench artifact schema).

        ``config`` echoes the full resolved run configuration — every
        spec and driver knob, chaos schedule included — so uploaded
        artifacts are self-describing: the run can be reproduced from
        the JSON alone.
        """
        summary = self.histogram.summary()
        spec = self.config.spec
        autoscaler = self.config.autoscaler
        elasticity = self.elasticity
        extra: Dict[str, Any] = {}
        if elasticity is not None:
            extra["elasticity"] = elasticity
        return {
            "workload": spec.workload,
            "record_count": spec.record_count,
            "operations": self.operations,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "measured_elapsed_seconds": self.measured_elapsed_seconds,
            "ops_per_second": self.ops_per_second,
            "fingerprint": self.fingerprint,
            "op_counts": self.op_counts,
            "op_errors": self.op_errors,
            "timeouts": self.timeouts,
            "shed_ops": self.shed_ops,
            "config": {
                "workload": spec.workload,
                "record_count": spec.record_count,
                "operation_count": spec.operation_count,
                "value_size": spec.value_size,
                "zipf_theta": spec.zipf_theta,
                "uniform": spec.uniform,
                "max_scan_length": spec.max_scan_length,
                "shards": self.config.shards,
                "workers": self.config.workers,
                "warmup_operations": self.config.warmup_operations,
                "seed": self.config.seed,
                "rebalance_every": self.config.rebalance_every,
                "moves_per_rebalance": self.config.moves_per_rebalance,
                "chaos": [
                    {
                        "at_op": event.at_op,
                        "action": event.action,
                        "node": event.node,
                        "mode": event.mode,
                    }
                    for event in self.config.chaos
                ],
                "autoscaler": (
                    autoscaler.to_dict()
                    if autoscaler is not None
                    else None
                ),
            },
            **summary,
            **extra,
        }


#: Builds one shard's target. Called with (shard index, shard seed).
TargetFactory = Callable[[int, int], Any]


def execute_op(target: Any, op: str, key: bytes, value: bytes) -> bytes:
    """Run one logical op against a store/cluster target; return its
    outcome digest bytes.

    This is **the** executor for the composite ops of
    :mod:`repro.workloads.ycsb` — ``rmw`` performs its get + put pair,
    ``scan`` reads up to ``int(value)`` rows from ``key`` — shared by
    the driver and ``ClusterSimulator.run_workload`` so the two can
    never drift on op semantics.

    A target exposing ``execute(op, key, value)`` (a
    :class:`~repro.distributed.rpc.NetworkTarget`) receives the whole
    logical op instead: the remote server runs this very function
    against its backing store and returns the outcome digest, so
    composites stay one RPC and fingerprints match the in-process run.
    """
    remote = getattr(target, "execute", None)
    if remote is not None:
        return remote(op, key, value)
    if op == "get":
        result = target.get(key)
        return b"\x00" if result is None else b"\x01" + result
    if op == "put":
        target.put(key, value)
        return b"\x02"
    if op == "delete":
        target.delete(key)
        return b"\x03"
    if op == "rmw":
        current = target.get(key)
        target.put(key, value)
        return b"\x00" if current is None else b"\x01" + current
    if op == "scan":
        rows = target.scan(key, None, int(value))
        digest = 0
        for row_key, row_value in rows:
            digest = zlib.crc32(row_value, zlib.crc32(row_key, digest))
        return len(rows).to_bytes(4, "little") + digest.to_bytes(4, "little")
    raise ConfigurationError(f"unknown workload op {op!r}")


def flush_and_report(sim: ClusterSimulator):
    """The standard cluster ``collect`` callback: flush every node's
    memtable (so trailing writes mint their file IDs) and return the
    :class:`~repro.distributed.cluster.ClusterReport`."""
    sim.flush_all()
    return sim.report()


def store_target_factory(
    options_factory: Callable[[], Options],
    durable: bool = False,
) -> TargetFactory:
    """Each shard drives a private :class:`MiniRocks` instance.

    With ``durable=True`` each shard's store opens on its own
    fault-injecting :class:`~repro.kvstore.storage.SimulatedStorage`
    (seeded from the shard seed), running the group-commit WAL data
    path per ``options.write_mode`` — the target for benchmarking the
    durable write path.
    """
    # Deferred import: keep the non-durable path free of storage deps.
    from repro.kvstore.storage import SimulatedStorage

    def factory(shard: int, shard_seed: int) -> MiniRocks:
        storage = None
        if durable:
            storage = SimulatedStorage(
                seed=derive_seed(shard_seed, _TARGET_LABEL, 1)
            )
        return MiniRocks(
            options_factory(),
            rng=random.Random(derive_seed(shard_seed, _TARGET_LABEL)),
            name=f"shard{shard}",
            storage=storage,
        )

    return factory


def cluster_target_factory(
    num_nodes: int,
    options_factory: Callable[[], Options],
    cache_blocks: int = 8192,
    replication_factor: int = 1,
    read_quorum: Optional[int] = None,
    write_quorum: Optional[int] = None,
    routing: str = "ring",
    durable: bool = False,
) -> TargetFactory:
    """Each shard drives a private :class:`ClusterSimulator` fleet.

    ``replication_factor``/``read_quorum``/``write_quorum`` configure
    quorum replication (defaults: single-copy, majority quorums);
    ``routing`` selects ring (default) or the legacy modulo shim;
    ``durable=True`` gives every node fault-injecting storage so chaos
    schedules may use ``mode="crash"`` kills.
    """

    def factory(shard: int, shard_seed: int) -> ClusterSimulator:
        return ClusterSimulator(
            num_nodes,
            options_factory,
            cache_blocks=cache_blocks,
            seed=derive_seed(shard_seed, _TARGET_LABEL),
            replication_factor=replication_factor,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
            routing=routing,
            durable=durable,
        )

    return factory


class WorkloadDriver:
    """Executes a :class:`DriverConfig` against per-shard targets.

    Parameters
    ----------
    target_factory:
        Builds one shard's target; see :func:`store_target_factory`
        and :func:`cluster_target_factory`. The target must expose
        ``put/get/delete`` and ``scan(start, end=None, limit=None)``.
    config:
        The run policy.
    collect:
        Optional callback invoked with each shard's target after its
        measured phase; its return value lands in
        :attr:`ShardResult.collected` (e.g. flush + report a cluster).
    """

    def __init__(
        self,
        target_factory: TargetFactory,
        config: DriverConfig,
        collect: Optional[Callable[[Any], Any]] = None,
    ):
        self.target_factory = target_factory
        self.config = config
        self.collect = collect

    # -- op execution -------------------------------------------------------

    _execute = staticmethod(execute_op)

    # -- shard execution ----------------------------------------------------

    def _run_shard(self, shard: int) -> ShardResult:
        config = self.config
        shard_seed = derive_seed(config.seed, _SHARD_LABEL, shard)
        target = self.target_factory(shard, shard_seed)
        rng = random.Random(derive_seed(shard_seed, _STREAM_LABEL))
        spec = config.spec
        rebalance_every = config.rebalance_every
        can_rebalance = (
            rebalance_every is not None
            and hasattr(target, "rebalance")
            and len(getattr(target, "nodes", ())) >= 2
        )
        chaos = config.chaos
        if chaos and not hasattr(target, "kill"):
            raise ConfigurationError(
                "chaos schedules need a fault-injectable target "
                "(a ClusterSimulator); store targets have no kill()"
            )
        scaler = None
        if config.autoscaler is not None:
            # Deferred import: autoscaler.py imports demand from this
            # package, so a module-level import would be circular.
            from repro.distributed.autoscaler import Autoscaler

            scaler = Autoscaler(
                target, config.autoscaler, seed=shard_seed
            )
        op_index = 0
        chaos_index = 0

        def tick() -> None:
            nonlocal op_index, chaos_index
            op_index += 1
            while (
                chaos_index < len(chaos)
                and chaos[chaos_index].at_op == op_index
            ):
                event = chaos[chaos_index]
                if event.action == "kill":
                    if event.mode == "crash":
                        # Crash kills are opt-in per event; the plain
                        # call keeps outage semantics working against
                        # targets whose kill() has no mode parameter
                        # (e.g. the network RPC target).
                        target.kill(event.node, mode="crash")
                    else:
                        target.kill(event.node)
                else:
                    target.recover(event.node)
                chaos_index += 1
            if scaler is not None:
                scaler.on_tick(op_index)
            if can_rebalance and op_index % rebalance_every == 0:
                target.rebalance(max_moves=config.moves_per_rebalance)

        op_errors: Dict[str, int] = {}
        timeouts = 0

        def guarded_execute(op: str, key: bytes, value: bytes) -> bytes:
            """Execute one op, folding unavailability into the result.

            Quorum loss and RPC timeouts are *outcomes* of a serving
            benchmark, not harness crashes: the op counts, the failure
            is tallied per op type, and the fingerprint absorbs the
            fixed :data:`FAILED_OP_OUTCOME` marker (deterministic
            failures keep fingerprints comparable; timeouts are
            tracked separately because they are not).
            """
            nonlocal timeouts
            try:
                return self._execute(target, op, key, value)
            except ClusterUnavailableError as exc:
                op_errors[op] = op_errors.get(op, 0) + 1
                if isinstance(exc, RPCTimeoutError):
                    timeouts += 1
                return FAILED_OP_OUTCOME

        # Phase 1: bulk load (unmeasured). Errors propagate — a failed
        # load means the dataset the measured phase assumes is absent.
        # The autoscaler observes demand (warming its queue model) but
        # never sheds a load op — the dataset must exist in full.
        for op, key, value in load_phase(spec, rng):
            if scaler is not None:
                scaler.observe_op(op_index + 1, "load")
            self._execute(target, op, key, value)
            tick()
        # Phases 2+3 continue one stream: warmup ops are executed and
        # discarded, the rest are measured.
        stream_spec = replace(
            spec,
            operation_count=spec.operation_count + config.warmup_operations,
        )
        histogram = LatencyHistogram()
        fingerprint = 0
        op_counts: Dict[str, int] = {}
        measured = 0
        start_measure: Optional[float] = None
        for index, (op, key, value) in enumerate(
            run_phase(stream_spec, rng)
        ):
            if index < config.warmup_operations:
                if scaler is None or scaler.observe_op(
                    op_index + 1, "warmup"
                ):
                    guarded_execute(op, key, value)
                tick()
                continue
            if start_measure is None:
                start_measure = time.perf_counter()
            began = time.perf_counter_ns()
            if scaler is None or scaler.observe_op(
                op_index + 1, "measured"
            ):
                outcome = guarded_execute(op, key, value)
            else:
                # Shed: admission control rejected the op before it
                # reached the target. Same outcome marker as a quorum
                # failure, but tallied as shed_ops, not op_errors.
                outcome = FAILED_OP_OUTCOME
            histogram.record(time.perf_counter_ns() - began)
            tick()
            measured += 1
            op_counts[op] = op_counts.get(op, 0) + 1
            fingerprint = zlib.crc32(
                op.encode() + key + outcome, fingerprint
            )
        measure_ended = time.perf_counter()
        if start_measure is None:
            start_measure = measure_ended
        collected = self.collect(target) if self.collect else None
        return ShardResult(
            shard=shard,
            operations=measured,
            histogram=histogram,
            fingerprint=fingerprint,
            op_counts=op_counts,
            elapsed_seconds=measure_ended - start_measure,
            measure_started=start_measure,
            measure_ended=measure_ended,
            collected=collected,
            op_errors=op_errors,
            timeouts=timeouts,
            shed_ops=scaler.shed_ops if scaler is not None else 0,
            elasticity=(
                scaler.summary() if scaler is not None else None
            ),
        )

    # -- the run ------------------------------------------------------------

    def run(self) -> DriverResult:
        """Execute every shard; aggregate latency + throughput."""
        config = self.config
        started = time.perf_counter()
        if config.workers == 1 or config.shards == 1:
            shard_results = [
                self._run_shard(shard) for shard in range(config.shards)
            ]
        else:
            workers = min(config.workers, config.shards)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                shard_results = list(
                    pool.map(self._run_shard, range(config.shards))
                )
        elapsed = time.perf_counter() - started
        return DriverResult(
            config=config,
            shard_results=shard_results,
            elapsed_seconds=elapsed,
        )
