"""Key-popularity distributions for KV workloads.

Implements the pickers YCSB uses: uniform, Zipfian — exact inverse-CDF
for small key spaces and a constant-time zeta-approximation sampler
for production-scale ones — scrambled Zipfian (decorrelates popularity
from key order), and latest-biased.

The two Zipfian implementations trade off differently:

* :class:`ZipfianPicker` precomputes the exact CDF: O(n) memory and
  startup, exact probabilities. It is the test oracle and the right
  choice up to ~10^5 keys.
* :class:`ZipfianApproxPicker` is YCSB's sampler (after Gray et al.,
  "Quickly Generating Billion-Record Synthetic Databases", SIGMOD '94):
  O(1) memory, O(1) startup via an Euler–Maclaurin zeta tail, O(1) per
  pick. Its per-rank probabilities differ from exact Zipf by a small
  approximation error concentrated in the mid ranks; the head (which
  drives cache behaviour) matches closely. Use it for ``n`` beyond the
  exact picker's reach — :func:`make_zipfian` chooses automatically.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import List

from repro.errors import ConfigurationError

#: Largest key space for which :func:`make_zipfian` builds the exact
#: CDF; beyond it the constant-time approximation takes over.
EXACT_CDF_MAX = 100_000

#: Exact head terms used before the Euler–Maclaurin tail in
#: :func:`_zeta`; the tail error at this cutoff is far below float ulp
#: noise for every theta in (0, 1).
_ZETA_EXACT_CUTOFF = 10_000


def _zeta(n: int, theta: float) -> float:
    """``sum_{i=1..n} 1/i**theta`` — exact head + Euler–Maclaurin tail.

    Exact for ``n <= _ZETA_EXACT_CUTOFF``; above it the remaining terms
    are approximated by the integral plus the first two Euler–Maclaurin
    corrections, so the whole computation is O(cutoff) regardless of
    ``n`` (this is what lets a 10^7-key sampler initialize in
    milliseconds).
    """
    head_terms = min(n, _ZETA_EXACT_CUTOFF)
    total = 0.0
    for i in range(1, head_terms + 1):
        total += 1.0 / (i**theta)
    if n <= _ZETA_EXACT_CUTOFF:
        return total
    k = float(head_terms)
    # sum_{i=k+1..n} i^-theta  ~=  integral + trapezoid + derivative terms
    a, b = k + 1.0, float(n)
    tail = (b ** (1.0 - theta) - a ** (1.0 - theta)) / (1.0 - theta)
    tail += 0.5 * (a**-theta + b**-theta)
    tail -= (theta / 12.0) * (b ** (-theta - 1.0) - a ** (-theta - 1.0))
    return total + tail


class KeyPicker:
    """Interface: pick an integer key index in ``[0, n)``."""

    def pick(self, rng: random.Random) -> int:
        """Draw one key index in ``[0, n)`` using ``rng``."""
        raise NotImplementedError


class UniformPicker(KeyPicker):
    """Uniform over ``[0, n)``."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        self.n = n

    def pick(self, rng: random.Random) -> int:
        """Uniform draw over ``[0, n)``."""
        return rng.randrange(self.n)


class ZipfianPicker(KeyPicker):
    """Zipf(θ): rank ``r`` has weight ``1/r^θ``. Exact inverse-CDF.

    O(n) startup and memory — the oracle implementation. For key
    spaces beyond ~10^5 use :class:`ZipfianApproxPicker` (or let
    :func:`make_zipfian` decide).
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if theta <= 0:
            raise ConfigurationError("theta must be > 0")
        self.n = n
        self.theta = theta
        cdf: List[float] = []
        cumulative = 0.0
        for rank in range(1, n + 1):
            cumulative += 1.0 / (rank**theta)
            cdf.append(cumulative)
        total = cdf[-1]
        self._cdf = [c / total for c in cdf]

    def pick(self, rng: random.Random) -> int:
        """Exact Zipfian draw via binary search on the inverse CDF."""
        return bisect.bisect_left(self._cdf, rng.random())


class ZipfianApproxPicker(KeyPicker):
    """Zipf(θ) via YCSB's constant-time rejection-free approximation.

    One uniform draw per pick, O(1) state: the Gray et al. sampler
    used by YCSB's ``ZipfianGenerator``, with the zeta normalizer
    computed through :func:`_zeta` so initialization stays O(1) in
    ``n``. Requires ``theta < 1`` (the closed form divides by
    ``1 - theta``); YCSB's default 0.99 is fine.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ConfigurationError(
                "ZipfianApproxPicker needs 0 < theta < 1 "
                f"(got {theta}); use ZipfianPicker for other thetas"
            )
        self.n = n
        self.theta = theta
        self._zetan = _zeta(n, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._half_pow_theta = 0.5**theta
        zeta2 = 1.0 + self._half_pow_theta
        if n > 2:
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - zeta2 / self._zetan
            )
        else:
            # n <= 2: zetan <= zeta2 makes eta's formula 0/0, but every
            # draw resolves in the first two branches of pick() (uz is
            # always < 1 + 0.5^theta), so eta is never consulted.
            self._eta = 0.0

    def pick(self, rng: random.Random) -> int:
        """Constant-time approximate Zipfian draw (one uniform sample)."""
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + self._half_pow_theta:
            return min(1, self.n - 1)
        index = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return min(index, self.n - 1)


def make_zipfian(
    n: int, theta: float = 0.99, exact_max: int = EXACT_CDF_MAX
) -> KeyPicker:
    """Exact Zipfian for small ``n``, constant-time approximation beyond.

    The split point defaults to :data:`EXACT_CDF_MAX`: below it the
    exact CDF costs little and is, well, exact; above it the
    approximation initializes in O(1) time/memory. Thetas outside the
    approximation's ``(0, 1)`` domain always use the exact picker
    (paying its O(n) startup), so every theta the exact picker accepts
    keeps working at any ``n``.
    """
    if n <= exact_max or not 0.0 < theta < 1.0:
        return ZipfianPicker(n, theta)
    return ZipfianApproxPicker(n, theta)


class ScrambledZipfianPicker(KeyPicker):
    """Zipfian popularity hashed onto the key space (YCSB's default).

    Without scrambling, hot keys are the lexicographically smallest,
    which clusters them into few SSTs and understates cache pressure.
    Uses :func:`make_zipfian`, so it scales to 10^7+ keys.
    """

    def __init__(self, n: int, theta: float = 0.99):
        self._zipf = make_zipfian(n, theta)
        self.n = n

    def pick(self, rng: random.Random) -> int:
        """Zipfian popularity rank, hashed onto the key space."""
        rank = self._zipf.pick(rng)
        digest = hashlib.blake2b(
            rank.to_bytes(8, "little"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") % self.n


class LatestPicker(KeyPicker):
    """Skewed toward recently inserted keys (YCSB workload D).

    The caller advances the window with :meth:`record_insert` as it
    inserts; picks are Zipfian over recency rank (rank 1 = the newest
    key) within a capped trailing window.
    """

    #: Recency window cap: only the newest this-many keys draw reads.
    WINDOW_CAP = 1024

    def __init__(self, initial_count: int, theta: float = 0.99):
        if initial_count < 1:
            raise ConfigurationError("initial_count must be >= 1")
        if theta <= 0:
            raise ConfigurationError("theta must be > 0")
        self.insert_count = initial_count
        self.theta = theta
        # Unnormalized Zipf CDF over recency ranks, grown lazily and
        # shared by every window size: prefix [0:window] is the CDF
        # for that window. The window is capped at WINDOW_CAP, so the
        # build cost is O(WINDOW_CAP) once — after that a pick is one
        # uniform draw plus an O(log window) bisect.
        self._cdf: List[float] = []

    def record_insert(self, count: int = 1) -> None:
        """Advance the recency window by ``count`` new insertions."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        self.insert_count += count

    def _cdf_for(self, window: int) -> List[float]:
        while len(self._cdf) < window:
            rank = len(self._cdf) + 1
            previous = self._cdf[-1] if self._cdf else 0.0
            self._cdf.append(previous + 1.0 / (rank**self.theta))
        return self._cdf

    def pick(self, rng: random.Random) -> int:
        """Recency-skewed draw over the keys inserted so far."""
        window = min(self.insert_count, self.WINDOW_CAP)
        cdf = self._cdf_for(window)
        target = rng.random() * cdf[window - 1]
        rank = bisect.bisect_left(cdf, target, 0, window) + 1
        return self.insert_count - rank
