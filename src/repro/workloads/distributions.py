"""Key-popularity distributions for KV workloads.

Implements the pickers YCSB uses: uniform, Zipfian (via the exact
precomputed CDF — fine at the key-space sizes we simulate), scrambled
Zipfian (decorrelates popularity from key order), and latest-biased.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import List

from repro.errors import ConfigurationError


class KeyPicker:
    """Interface: pick an integer key index in ``[0, n)``."""

    def pick(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformPicker(KeyPicker):
    """Uniform over ``[0, n)``."""

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        self.n = n

    def pick(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianPicker(KeyPicker):
    """Zipf(θ): rank ``r`` has weight ``1/r^θ``. Exact inverse-CDF."""

    def __init__(self, n: int, theta: float = 0.99):
        if n < 1:
            raise ConfigurationError("n must be >= 1")
        if theta <= 0:
            raise ConfigurationError("theta must be > 0")
        self.n = n
        self.theta = theta
        cdf: List[float] = []
        cumulative = 0.0
        for rank in range(1, n + 1):
            cumulative += 1.0 / (rank**theta)
            cdf.append(cumulative)
        total = cdf[-1]
        self._cdf = [c / total for c in cdf]

    def pick(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


class ScrambledZipfianPicker(KeyPicker):
    """Zipfian popularity hashed onto the key space (YCSB's default).

    Without scrambling, hot keys are the lexicographically smallest,
    which clusters them into few SSTs and understates cache pressure.
    """

    def __init__(self, n: int, theta: float = 0.99):
        self._zipf = ZipfianPicker(n, theta)
        self.n = n

    def pick(self, rng: random.Random) -> int:
        rank = self._zipf.pick(rng)
        digest = hashlib.blake2b(
            rank.to_bytes(8, "little"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") % self.n


class LatestPicker(KeyPicker):
    """Skewed toward recently inserted keys (YCSB workload D).

    The caller advances :attr:`insert_count` as it inserts; picks are
    Zipfian over recency.
    """

    def __init__(self, initial_count: int, theta: float = 0.99):
        if initial_count < 1:
            raise ConfigurationError("initial_count must be >= 1")
        self.insert_count = initial_count
        self.theta = theta

    def pick(self, rng: random.Random) -> int:
        # Re-derive a small Zipfian over the current window each pick;
        # window capped so the CDF build stays O(1) amortized.
        window = min(self.insert_count, 1024)
        weights_total = sum(1.0 / (r**self.theta) for r in range(1, window + 1))
        target = rng.random() * weights_total
        cumulative = 0.0
        for r in range(1, window + 1):
            cumulative += 1.0 / (r**self.theta)
            if target <= cumulative:
                return self.insert_count - r
        return self.insert_count - window
