"""Exception hierarchy for the UUIDP reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters."""


class IDSpaceExhaustedError(ReproError):
    """An ID generator was asked for more IDs than it can produce.

    ``Random``, ``Cluster`` and ``Bins(k)`` can produce all ``m`` IDs.
    ``Bins*`` can only produce ``2^C - 1`` IDs before its schedule ends
    (the paper makes no claim beyond that point), and ``Cluster*`` may
    fail earlier due to fragmentation for demand beyond the analyzed
    ``m / (2 log m)`` per-instance regime.
    """

    def __init__(self, message: str, produced: int = 0):
        super().__init__(message)
        #: Number of IDs successfully produced before exhaustion.
        self.produced = produced


class GameError(ReproError):
    """The adversary/game protocol was violated."""


class ProfileError(ReproError):
    """A demand profile was malformed or outside the allowed family."""


class KVStoreError(ReproError):
    """Base class for the MiniRocks key-value store errors."""


class CorruptionDetectedError(KVStoreError):
    """A read returned bytes from the wrong SST due to an ID collision."""


class WALCorruptionError(KVStoreError):
    """A write-ahead-log record failed validation during recovery.

    A checksum/framing failure at the *tail* of the final live segment
    is an expected torn write (the crash interrupted an unsynced
    append) and recovery stops there cleanly. This error is raised for
    the other case: corruption in the *middle* of the log — a bad
    record with valid records after it, or a damaged sealed segment —
    which no crash can produce and which therefore means the storage
    itself is damaged. Only raised under ``Options.paranoid_checks``;
    otherwise recovery stops at the corruption and the remainder of
    the log is dropped (counted, not silent).
    """


class SimulatedCrashError(KVStoreError):
    """The fault-injecting storage layer hit its planned crash point.

    Raised by :class:`~repro.kvstore.storage.SimulatedStorage` when a
    planned crash triggers: the op does **not** take effect, the
    storage freezes, and every subsequent storage op fails until
    :meth:`~repro.kvstore.storage.SimulatedStorage.restart` applies
    the crash semantics (synced data survives; the unsynced suffix of
    each file is replaced by a deterministic torn tail).
    """


class ClusterUnavailableError(KVStoreError):
    """Too few live replicas to satisfy a quorum read or write.

    Raised by :class:`~repro.distributed.cluster.ClusterSimulator` when
    fewer than ``write_quorum`` (for writes) or ``read_quorum`` (for
    reads) of a key's preference-list replicas are alive. The operation
    was *not* acknowledged; for writes, hinted handoff may still
    propagate the data to dead replicas on recovery.
    """


class RPCError(KVStoreError):
    """Base class for the ``repro.distributed.rpc`` network layer.

    Covers failures of the serving path itself (framing, transport,
    server-side execution) as opposed to quorum unavailability, which
    keeps its own :class:`ClusterUnavailableError` family.
    """


class RPCProtocolError(RPCError):
    """A peer violated the framed wire protocol.

    Truncated frames, length prefixes beyond the frame-size cap,
    unknown op codes, malformed payloads, or data ops before an
    attach. The server answers with a protocol-error status where it
    still can and then closes *that* connection; other connections are
    unaffected.
    """


class RPCConnectionError(ClusterUnavailableError):
    """The RPC connection could not be established or died mid-call.

    A :class:`ClusterUnavailableError`: from the client's perspective a
    dead server and a lost quorum look the same — the op was not
    acknowledged.
    """


class LintError(ReproError):
    """The ``repro.devtools`` static-analysis engine was misused.

    Raised for configuration problems of the engine itself (duplicate
    rule codes, unknown reporters, unreadable targets) — *findings* in
    linted code are data, not exceptions.
    """


class DeterminismViolation(ReproError):
    """Unsanctioned nondeterminism reached a sanitized code path.

    Raised at the call site by the runtime determinism sanitizer
    (:mod:`repro.devtools.sanitizer`) when library code under
    ``src/repro`` calls a wall-clock, global-RNG, or
    PYTHONHASHSEED-sensitive entry point (``time.time``,
    ``random.random``, builtin ``hash`` ...) while a determinism suite
    is running. The sanctioned forms — injected
    :class:`random.Random` instances via
    :func:`repro.simulation.seeds.rng_for` / ``derive_seed``, and
    ``time.perf_counter`` for durations — never trip it.
    """


class RPCTimeoutError(ClusterUnavailableError):
    """An RPC op exceeded its configured timeout.

    Timeouts-as-failures: the op may or may not have executed
    server-side; the client treats it as unacknowledged, and the
    workload driver counts it in ``DriverResult.timeouts``. Timeouts
    are latency-dependent, so a run that suffers any is **not**
    fingerprint-comparable to a clean run (see the determinism-contract
    caveat in the README's "Network serving" section).
    """
