"""Adversaries, demand profiles, and attacks for the UUIDP game (§2, §6, §9)."""

from repro.adversary.adaptive import AdaptiveAdversary, circular_gap
from repro.adversary.attacks import (
    ClosestPairAttack,
    GreedyGapAttack,
    RunSaturationAttack,
    closest_trailing_pair,
)
from repro.adversary.base import (
    NEW_INSTANCE,
    Adversary,
    GameView,
    ObliviousAdversary,
)
from repro.adversary.phi import PhiDistribution, WeightedProfile
from repro.adversary.profiles import (
    DemandProfile,
    ProfileFamily,
    count_profiles_d1,
    family_d1,
    family_dinf,
    geometric_profile,
    is_epsilon_good,
    sample_profile_d1,
    zipf_profile,
)
from repro.adversary.semi_adaptive import DemandSequence, FollowerAdversary

__all__ = [
    "Adversary",
    "GameView",
    "ObliviousAdversary",
    "AdaptiveAdversary",
    "NEW_INSTANCE",
    "circular_gap",
    "ClosestPairAttack",
    "GreedyGapAttack",
    "RunSaturationAttack",
    "closest_trailing_pair",
    "DemandProfile",
    "ProfileFamily",
    "family_d1",
    "family_dinf",
    "sample_profile_d1",
    "count_profiles_d1",
    "is_epsilon_good",
    "geometric_profile",
    "zipf_profile",
    "PhiDistribution",
    "WeightedProfile",
    "DemandSequence",
    "FollowerAdversary",
]
