"""Concrete adaptive attacks (§6, Lemma 7 and generalizations).

:class:`ClosestPairAttack`
    The paper's Lemma 7 adversary, implemented literally: request one ID
    from each of ``n`` instances, find the two whose first IDs are the
    closest on the cycle, then dump the entire remaining budget on the
    *trailing* instance of that pair so its sequential arc runs into the
    leader's first ID. Against ``Cluster`` this forces collision
    probability ``Ω(min(1, n²d/m))`` — a factor ``n`` worse than the
    oblivious worst case.

:class:`GreedyGapAttack`
    A stronger heuristic: after probing, every remaining request goes to
    the instance whose *predicted next ID* (last ID + 1 — exact for
    ``Cluster``, correct within a run for ``Cluster*``) is currently
    closest, in forward circular distance, to any ID owned by a
    different instance. Re-evaluated every step, so it tracks
    ``Cluster*``'s run jumps as they are revealed.

:class:`RunSaturationAttack`
    Tailored to ``Cluster*``: spreads requests to *equalize* per-instance
    demand first (maximizing the number of open runs, the quantity λ in
    Theorem 8's proof), then switches to greedy-gap pressure. This is
    the natural attempt to defeat the run structure; Theorem 8 says it
    still cannot beat ``O((nd/m) log(1+d/n))``.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.adversary.adaptive import AdaptiveAdversary, circular_gap
from repro.adversary.base import GameView


def closest_trailing_pair(view: GameView) -> Tuple[int, int, int]:
    """Find the ordered pair with the minimal forward gap of first IDs.

    Returns ``(trailing, leading, gap)`` where ``trailing``'s first ID
    reaches ``leading``'s first ID after ``gap`` forward steps, with the
    minimum positive ``gap`` over all ordered pairs.
    """
    m = view.m
    firsts = [view.ids_of(i)[0] for i in range(view.num_instances)]
    best: Optional[Tuple[int, int, int]] = None
    for i, x_i in enumerate(firsts):
        for j, x_j in enumerate(firsts):
            if i == j:
                continue
            gap = circular_gap(x_i, x_j, m)
            if gap == 0:
                # Identical first IDs: a collision already happened.
                return (i, j, 0)
            if best is None or gap < best[2]:
                best = (i, j, gap)
    assert best is not None
    return best


class ClosestPairAttack(AdaptiveAdversary):
    """Lemma 7's adversary: press the trailing instance of the closest pair."""

    def __init__(self, n: int, d: int, rng=None):
        super().__init__(n, d, rng=rng)
        self._target: Optional[int] = None

    def exploit(self, view: GameView) -> Optional[int]:
        """Replay the trailing end of the closest pair every remaining step."""
        if self._target is None:
            trailing, _leading, _gap = closest_trailing_pair(view)
            self._target = trailing
        return self._target


class GreedyGapAttack(AdaptiveAdversary):
    """Every step: press the instance predicted to hit foreign IDs soonest.

    Keeps an incrementally maintained sorted index of every observed ID
    (with its owner), so each decision costs ``O(n log d)`` instead of
    rescanning the full transcript.
    """

    def __init__(self, n: int, d: int, rng=None):
        super().__init__(n, d, rng=rng)
        self._sorted_ids: List[int] = []
        self._owner_of: Dict[int, int] = {}
        self._events_seen = 0

    def _ingest_new_events(self, view: GameView) -> None:
        for instance, value in view.events_since(self._events_seen):
            if value not in self._owner_of:
                bisect.insort(self._sorted_ids, value)
            self._owner_of[value] = instance
        self._events_seen = view.steps

    def _forward_gap_to_foreign(self, predicted: int, me: int, m: int) -> int:
        """Circular forward distance from ``predicted`` to the nearest
        ID owned by another instance (scanning past own IDs)."""
        ids = self._sorted_ids
        count = len(ids)
        start = bisect.bisect_left(ids, predicted)
        for step in range(count):
            candidate = ids[(start + step) % count]
            if self._owner_of[candidate] != me:
                return circular_gap(predicted, candidate, m)
        return m  # no foreign IDs at all

    def exploit(self, view: GameView) -> Optional[int]:
        """Drive the instance whose predicted next ID has the smallest gap."""
        self._ingest_new_events(view)
        m = view.m
        best_instance = 0
        best_gap = m + 1
        for i in range(view.num_instances):
            predicted = (view.last_id_of(i) + 1) % m
            gap = self._forward_gap_to_foreign(predicted, i, m)
            if gap < best_gap:
                best_gap = gap
                best_instance = i
        return best_instance


class RunSaturationAttack(AdaptiveAdversary):
    """Maximize open runs of ``Cluster*`` first, then apply gap pressure.

    ``equalize_fraction`` of the post-probe budget is spent keeping all
    instances at (near-)equal demand — each doubling of an instance's
    demand forces it to reveal a fresh run, maximizing λ, the number of
    runs an adaptive adversary can aim at. The rest of the budget runs
    the greedy-gap policy.
    """

    def __init__(
        self, n: int, d: int, equalize_fraction: float = 0.5, rng=None
    ):
        super().__init__(n, d, rng=rng)
        if not 0.0 <= equalize_fraction <= 1.0:
            raise ValueError(
                f"equalize_fraction must be in [0,1], got {equalize_fraction}"
            )
        self._equalize_budget = int((d - n) * equalize_fraction)
        self._greedy = GreedyGapAttack(n, d)

    def exploit(self, view: GameView) -> Optional[int]:
        """Equalize per-instance counts for a budgeted prefix, then go greedy."""
        spent_after_probe = view.steps - self.n
        if spent_after_probe < self._equalize_budget:
            counts = view.counts()
            return min(range(len(counts)), key=counts.__getitem__)
        return self._greedy.exploit(view)
