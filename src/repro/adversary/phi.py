"""The hard input distribution ``Φ`` of the Ω(log m) lower bound (§8).

Equation (7) of the paper: with ``k = ⌊log₂(m)/2⌋``,

    Pr[D = (2^i, 2^j)] = 2^(−max(i,j)) / W      for 0 ≤ i, j ≤ k,

where ``W = Σ 2^(−max(i,j)) ≤ 8`` normalizes. Lemma 25 shows **every**
algorithm satisfies ``E_Φ[p_A(D)] = Ω(log²m / m)`` while
``E_Φ[p*(D)] = O(log m / m)``, so every algorithm's competitive ratio on
``[√m]²`` is ``Ω(log m)`` — the bound ``Bins*`` meets.

This module provides exact iteration over the support (weights as exact
fractions via big ints) and seeded sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Tuple

from repro.adversary.profiles import DemandProfile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WeightedProfile:
    """A support point of Φ with its exact probability."""

    profile: DemandProfile
    weight: Fraction
    i: int
    j: int


class PhiDistribution:
    """The distribution Φ over two-instance power-of-two profiles."""

    def __init__(self, m: int):
        if m < 4:
            raise ConfigurationError(f"phi needs m >= 4, got {m}")
        self.m = m
        # k = floor(log2(m) / 2)  <=>  largest k with 2^(2k) <= m.
        self.k = (m.bit_length() - 1) // 2
        raw: List[Tuple[int, int, Fraction]] = []
        for i in range(self.k + 1):
            for j in range(self.k + 1):
                raw.append((i, j, Fraction(1, 1 << max(i, j))))
        total = sum(w for _, _, w in raw)
        self._support = [
            WeightedProfile(
                profile=DemandProfile((1 << i, 1 << j)),
                weight=w / total,
                i=i,
                j=j,
            )
            for i, j, w in raw
        ]

    @property
    def normalizer(self) -> Fraction:
        """The exact W = Σ 2^(−max(i,j)) before normalization."""
        return sum(
            Fraction(1, 1 << max(p.i, p.j)) for p in self._support
        )

    def support(self) -> Iterator[WeightedProfile]:
        """Iterate over all (profile, exact weight) pairs."""
        return iter(self._support)

    def sample(self, rng: random.Random) -> DemandProfile:
        """Draw one profile from Φ."""
        target = rng.random()
        cumulative = 0.0
        for point in self._support:
            cumulative += float(point.weight)
            if target < cumulative:
                return point.profile
        return self._support[-1].profile

    def expectation(self, value_of_profile) -> float:
        """``E_Φ[f(D)]`` computed exactly over the support.

        ``value_of_profile`` maps a :class:`DemandProfile` to a float
        (e.g. an exact collision probability).
        """
        return float(
            sum(
                point.weight * Fraction(value_of_profile(point.profile))
                for point in self._support
            )
        )
