"""Support classes for adaptive adversaries (§2, §6).

An adaptive adversary sees each produced ID and may steer future
requests accordingly. This module provides:

* :class:`AdaptiveAdversary` — a small base class with the common
  two-phase structure (probe every instance once, then exploit);
* :func:`circular_gap` — forward distance on the cycle ``Z_m``, the
  geometric primitive every Cluster-style attack needs.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.adversary.base import NEW_INSTANCE, Adversary, GameView
from repro.errors import GameError


def circular_gap(from_id: int, to_id: int, m: int) -> int:
    """Forward (clockwise) distance from ``from_id`` to ``to_id`` on Z_m.

    ``circular_gap(x, x, m) == 0``; the result is in ``[0, m)``.
    """
    return (to_id - from_id) % m


class AdaptiveAdversary(Adversary, abc.ABC):
    """Probe-then-exploit template shared by the concrete attacks.

    Phase 1 activates ``n`` instances, requesting exactly one ID from
    each. Phase 2 (:meth:`exploit`) is attack-specific and runs until
    the total budget ``d`` is spent or the subclass stops early.

    ``rng`` is the attack's own randomness source. The concrete attacks
    shipped here are deterministic and never touch it, but accepting
    the keyword lets :class:`~repro.simulation.batch.AttackFactory`
    inject the derived per-trial RNG, so randomized subclasses are
    fully seed-derived instead of falling back to ambient randomness.
    """

    def __init__(
        self, n: int, d: int, rng: Optional[random.Random] = None
    ):
        if n < 2:
            raise GameError(f"adaptive attacks need n >= 2, got {n}")
        if d < n:
            raise GameError(f"budget d={d} cannot cover n={n} probes")
        self.n = n
        self.d = d
        self.rng = rng if rng is not None else random.Random()

    def next_request(self, view: GameView) -> Optional[int]:
        """Probe each instance once, then hand off to :meth:`exploit`."""
        if view.steps >= self.d:
            return None
        if view.num_instances < self.n:
            return NEW_INSTANCE
        return self.exploit(view)

    @abc.abstractmethod
    def exploit(self, view: GameView) -> Optional[int]:
        """Phase-2 decision: which instance to press next (or stop)."""
