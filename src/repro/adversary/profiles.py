"""Demand profiles and profile families (§2, §5, §7.2).

A *demand profile* ``D = (d_1, ..., d_n)`` says instance ``i`` receives
``d_i`` requests. The paper analyzes families of profiles:

* ``D1(n, d)``  — exactly ``n`` instances, L1-norm (total demand) ``d``;
* ``Dinf(n, h)`` — up to ``n`` instances, every entry ``≤ h``;

plus two derived notions used by the competitive analysis of ``Bins*``:

* the *rounded* profile ``D⁻`` (entries rounded down to powers of two,
  then a unique maximum reduced to the second maximum — Lemma 19), and
* the *rank distribution* ``(s_1, ..., s_k)`` of ``D⁻``, where ``s_i``
  counts entries equal to ``2^(i−1)`` (Lemma 20/22).

Theorem 6 partitions ``D1(n, d)`` into ε-good profiles (at least ``εn``
entries exceed ``εd/n``) and the exponentially rare ε-bad remainder;
:func:`is_epsilon_good` implements the test and
:func:`sample_profile_d1` samples uniformly from ``D1(n, d)`` so the
rarity claim can be measured.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ProfileError


@dataclass(frozen=True)
class DemandProfile:
    """An immutable demand profile with the norms the paper uses."""

    demands: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.demands):
            raise ProfileError(
                f"demand entries must be >= 1, got {self.demands}"
            )

    @staticmethod
    def of(*demands: int) -> "DemandProfile":
        """Build a profile from positional demands: ``DemandProfile.of(3, 5)``."""
        return DemandProfile(tuple(demands))

    @staticmethod
    def uniform(n: int, h: int) -> "DemandProfile":
        """The uniform profile ``(h, ..., h)`` with ``n`` entries."""
        if n < 1:
            raise ProfileError(f"n must be >= 1, got {n}")
        return DemandProfile((h,) * n)

    @property
    def n(self) -> int:
        """Number of instances."""
        return len(self.demands)

    @property
    def total(self) -> int:
        """L1 norm ``‖D‖₁`` — total number of requests."""
        return sum(self.demands)

    @property
    def l2_squared(self) -> int:
        """``‖D‖₂²`` — sum of squared demands."""
        return sum(d * d for d in self.demands)

    @property
    def max_demand(self) -> int:
        """L∞ norm — the largest per-instance demand."""
        return max(self.demands)

    @property
    def is_trivial(self) -> bool:
        """Trivial profiles (n < 2) have collision probability zero."""
        return self.n < 2

    def sorted_desc(self) -> "DemandProfile":
        """The same multiset of demands in non-increasing order."""
        return DemandProfile(tuple(sorted(self.demands, reverse=True)))

    def rounded(self) -> "DemandProfile":
        """The rounded profile ``D⁻`` of Lemma 19.

        Each entry is rounded down to a power of two; then, if a unique
        largest entry exists (the *heavy* instance), it is reduced to the
        second-largest entry.
        """
        if self.n == 0:
            raise ProfileError("cannot round an empty profile")
        powers = [1 << (d.bit_length() - 1) for d in self.demands]
        if len(powers) >= 2:
            ordered = sorted(powers, reverse=True)
            if ordered[0] > ordered[1]:
                heavy = powers.index(ordered[0])
                powers[heavy] = ordered[1]
        return DemandProfile(tuple(powers))

    def rank_distribution(self) -> Tuple[int, ...]:
        """``(s_1, ..., s_k)`` for the *rounded* profile (§7.2).

        ``s_i`` is the number of entries equal to ``2^(i−1)``; ``k`` is
        the rank of the largest entry. Raises if called on a profile
        with non-power-of-two entries (round first).
        """
        for d in self.demands:
            if d & (d - 1):
                raise ProfileError(
                    f"rank distribution needs power-of-two entries; got {d}. "
                    "Call .rounded() first."
                )
        k = max(d.bit_length() for d in self.demands)
        counts = [0] * k
        for d in self.demands:
            counts[d.bit_length() - 1] += 1
        return tuple(counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self.demands)

    def __len__(self) -> int:
        return len(self.demands)

    def __getitem__(self, index: int) -> int:
        return self.demands[index]


def is_epsilon_good(profile: DemandProfile, epsilon: float) -> bool:
    """Theorem 6's goodness test: ≥ ``εn`` entries exceed ``εd/n``."""
    if not 0 < epsilon <= 0.5:
        raise ProfileError(f"epsilon must be in (0, 1/2], got {epsilon}")
    n, d = profile.n, profile.total
    threshold = epsilon * d / n
    big_entries = sum(1 for x in profile.demands if x > threshold)
    return big_entries >= epsilon * n


def sample_profile_d1(
    n: int, d: int, rng: random.Random
) -> DemandProfile:
    """Uniform sample from ``D1(n, d)`` (compositions of d into n parts ≥ 1).

    Uses the stars-and-bars bijection: choose ``n−1`` distinct cut
    points among ``d−1`` gaps.
    """
    if not 1 <= n <= d:
        raise ProfileError(f"need 1 <= n <= d, got n={n}, d={d}")
    cuts = sorted(rng.sample(range(1, d), n - 1))
    bounds = [0] + cuts + [d]
    return DemandProfile(
        tuple(bounds[i + 1] - bounds[i] for i in range(n))
    )


def count_profiles_d1(n: int, d: int) -> int:
    """``|D1(n, d)| = C(d−1, n−1)`` — exact, arbitrary precision."""
    if not 1 <= n <= d:
        raise ProfileError(f"need 1 <= n <= d, got n={n}, d={d}")
    return math.comb(d - 1, n - 1)


def geometric_profile(n: int, largest: int) -> DemandProfile:
    """``(largest, largest/2, ..., )`` — a canonical skewed profile.

    Entries halve (floor, min 1) from ``largest``; used in competitive
    experiments where `Cluster` is far from optimal.
    """
    if n < 1 or largest < 1:
        raise ProfileError("need n >= 1 and largest >= 1")
    demands: List[int] = []
    value = largest
    for _ in range(n):
        demands.append(max(value, 1))
        value //= 2
    return DemandProfile(tuple(demands))


def zipf_profile(
    n: int, total: int, skew: float, rng: random.Random
) -> DemandProfile:
    """A profile with demands proportional to ``1/rank^skew``, summing ~total.

    Every entry is at least 1; the rounding remainder is assigned to the
    largest entry so the total is exact.
    """
    if n < 1 or total < n:
        raise ProfileError(f"need total >= n >= 1, got n={n}, total={total}")
    weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    weight_sum = sum(weights)
    demands = [max(1, int(total * w / weight_sum)) for w in weights]
    # Fix the total exactly: add/subtract the remainder on the largest
    # entries, never letting any entry drop below 1.
    delta = total - sum(demands)
    index = 0
    while delta != 0:
        if delta > 0:
            demands[index % n] += 1
            delta -= 1
        else:
            if demands[index % n] > 1:
                demands[index % n] -= 1
                delta += 1
        index += 1
    shuffled = demands[:]
    rng.shuffle(shuffled)
    return DemandProfile(tuple(shuffled))


def family_d1(n: int, d: int) -> "ProfileFamily":
    """The family ``D1(n, d)``: exactly n instances, total demand d."""
    return ProfileFamily(kind="d1", n=n, bound=d)


def family_dinf(n: int, h: int) -> "ProfileFamily":
    """The family ``D∞(n, h)``: at most n instances, each demand ≤ h."""
    return ProfileFamily(kind="dinf", n=n, bound=h)


@dataclass(frozen=True)
class ProfileFamily:
    """A constraint set of demand profiles, as used by ``Adv(D)``.

    ``kind="d1"`` requires exactly ``n`` entries summing to ``bound``;
    ``kind="dinf"`` requires between 2 and ``n`` entries, each ≤ ``bound``.
    """

    kind: str
    n: int
    bound: int

    def __post_init__(self) -> None:
        if self.kind not in ("d1", "dinf"):
            raise ProfileError(f"unknown family kind {self.kind!r}")
        if self.n < 2:
            raise ProfileError(f"families need n >= 2, got {self.n}")
        if self.bound < 1:
            raise ProfileError(f"bound must be >= 1, got {self.bound}")

    def contains(self, profile: DemandProfile) -> bool:
        """Is ``profile`` a member of this family?"""
        if self.kind == "d1":
            return profile.n == self.n and profile.total == self.bound
        return 2 <= profile.n <= self.n and profile.max_demand <= self.bound

    def admits_continuation(self, partial: Sequence[int]) -> bool:
        """Can a game with current per-instance counts ``partial`` still
        end inside the family? Used to validate adaptive adversaries.
        """
        n_used = len(partial)
        total = sum(partial)
        if self.kind == "d1":
            if n_used > self.n or total > self.bound:
                return False
            # Remaining instances must each get >= 1 request.
            return total + (self.n - n_used) <= self.bound
        return n_used <= self.n and all(x <= self.bound for x in partial)
