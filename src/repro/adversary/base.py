"""Adversary protocol and the oblivious adversary (§2).

The game: at each step the adversary either *activates* a new instance
(requesting its first ID), requests another ID from an existing
instance, or stops. An **oblivious** adversary commits to the final
demand profile before the game; an **adaptive** one sees every ID as it
is produced and decides on the fly.

The engine (:mod:`repro.simulation.game`) exposes the game state to the
adversary through a read-only :class:`GameView`; adaptive adversaries
base decisions on it, oblivious ones ignore it.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.profiles import DemandProfile
from repro.errors import GameError


class GameView:
    """Read-only snapshot of a running game, as visible to the adversary.

    The adversary legitimately sees everything the instances have output
    (the model grants adaptive adversaries full observation); it does
    *not* see generator internals.
    """

    def __init__(self, m: int):
        self.m = m
        self._ids_by_instance: List[List[int]] = []
        self._events: List[Tuple[int, int]] = []  # (instance, id) in order
        self._collided = False
        self._collision_step: Optional[int] = None

    # -- engine-side mutation (package-internal) -------------------------

    def _record(self, instance: int, value: int, collided_now: bool) -> None:
        while instance >= len(self._ids_by_instance):
            self._ids_by_instance.append([])
        self._ids_by_instance[instance].append(value)
        self._events.append((instance, value))
        if collided_now and not self._collided:
            self._collided = True
            self._collision_step = len(self._events)

    # -- adversary-side observation ---------------------------------------

    @property
    def num_instances(self) -> int:
        """Number of instances activated so far."""
        return len(self._ids_by_instance)

    @property
    def steps(self) -> int:
        """Total IDs produced so far."""
        return len(self._events)

    @property
    def collided(self) -> bool:
        """Has a cross-instance collision occurred?"""
        return self._collided

    @property
    def collision_step(self) -> Optional[int]:
        """1-based step index of the first collision, if any."""
        return self._collision_step

    def ids_of(self, instance: int) -> Sequence[int]:
        """All IDs produced by ``instance`` so far, in order."""
        return tuple(self._ids_by_instance[instance])

    def last_id_of(self, instance: int) -> int:
        """The most recent ID produced by ``instance``."""
        ids = self._ids_by_instance[instance]
        if not ids:
            raise GameError(f"instance {instance} has produced no IDs")
        return ids[-1]

    def counts(self) -> Tuple[int, ...]:
        """Current per-instance request counts (the partial profile)."""
        return tuple(len(ids) for ids in self._ids_by_instance)

    def current_profile(self) -> DemandProfile:
        """The partial demand profile accumulated so far."""
        return DemandProfile(self.counts())

    def events(self) -> Sequence[Tuple[int, int]]:
        """The full ``(instance, id)`` transcript."""
        return tuple(self._events)

    def events_since(self, index: int) -> Sequence[Tuple[int, int]]:
        """Transcript suffix from ``index`` on — O(new events), for
        adversaries that maintain incremental state."""
        return self._events[index:]


#: Sentinel request meaning "activate a new instance".
NEW_INSTANCE = -1


class Adversary(abc.ABC):
    """Decides, step by step, which instance is asked for the next ID."""

    def begin(self, view: GameView) -> None:
        """Hook called once before the first request."""

    @abc.abstractmethod
    def next_request(self, view: GameView) -> Optional[int]:
        """Return the instance to probe next.

        * an existing 0-based instance index,
        * :data:`NEW_INSTANCE` to activate a fresh instance, or
        * ``None`` to stop the game.
        """


class ObliviousAdversary(Adversary):
    """Replays a fixed demand profile, ignoring all observed IDs.

    The request *interleaving* is irrelevant to the collision probability
    for an oblivious adversary (instances are independent), but it is
    configurable to exercise the engine: ``"sequential"`` drains each
    instance in turn, ``"round_robin"`` cycles, ``"random"`` shuffles the
    request order (seeded).
    """

    def __init__(
        self,
        profile: DemandProfile,
        order: str = "sequential",
        rng: Optional[random.Random] = None,
    ):
        if order not in ("sequential", "round_robin", "random"):
            raise GameError(f"unknown interleaving order {order!r}")
        self.profile = profile
        self._schedule = self._build_schedule(profile, order, rng)
        self._cursor = 0
        # Logical instance (index into the profile) -> engine instance.
        # Needed because with a shuffled schedule logical instance 3 may
        # be activated before logical instance 1.
        self._engine_index: Dict[int, int] = {}

    @staticmethod
    def _build_schedule(
        profile: DemandProfile, order: str, rng: Optional[random.Random]
    ) -> List[int]:
        if order == "sequential":
            schedule = [
                i for i, d in enumerate(profile.demands) for _ in range(d)
            ]
        elif order == "round_robin":
            schedule = []
            pending: Dict[int, int] = dict(enumerate(profile.demands))
            while pending:
                for i in sorted(pending):
                    schedule.append(i)
                    pending[i] -= 1
                    if pending[i] == 0:
                        del pending[i]
        else:  # random
            schedule = [
                i for i, d in enumerate(profile.demands) for _ in range(d)
            ]
            (rng or random.Random()).shuffle(schedule)
        return schedule

    def next_request(self, view: GameView) -> Optional[int]:
        """Next scheduled logical instance; ``None`` once the schedule is spent."""
        if self._cursor >= len(self._schedule):
            return None
        logical = self._schedule[self._cursor]
        self._cursor += 1
        if logical not in self._engine_index:
            # First request to this logical instance: the engine will
            # activate it as instance number `view.num_instances`.
            self._engine_index[logical] = view.num_instances
            return NEW_INSTANCE
        return self._engine_index[logical]
