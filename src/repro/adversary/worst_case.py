"""Search for the worst oblivious demand profile of an algorithm.

Corollary 5 pins the worst case of ``Cluster`` and ``Random`` over
``D1(n, d)`` analytically; for other algorithms (or to sanity-check the
analysis), this module finds a worst profile *empirically* using the
exact probability formulas:

1. evaluate the canonical candidate shapes (uniform, maximally skewed,
   geometric, two-heavy);
2. hill-climb from the best candidate by moving one unit of demand
   between instances while the exact probability improves.

The search is exact-evaluation-driven, so the returned profile carries
a certificate (its exact probability); it is a *lower bound* on the
true worst case, which suffices for the "who is worse where" questions
the experiments ask.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Tuple

from repro.adversary.profiles import DemandProfile
from repro.errors import ConfigurationError
from repro.workloads.demand import max_skew_profile

ProbabilityFn = Callable[[DemandProfile], Fraction]


def candidate_profiles(n: int, d: int) -> List[DemandProfile]:
    """The canonical extremal shapes in ``D1(n, d)``."""
    if not 2 <= n <= d:
        raise ConfigurationError(f"need 2 <= n <= d, got n={n}, d={d}")
    candidates = [max_skew_profile(n, d)]
    base, remainder = divmod(d, n)
    uniform = tuple(
        base + (1 if index < remainder else 0) for index in range(n)
    )
    candidates.append(DemandProfile(uniform))
    # Two heavy instances, the rest minimal.
    if n >= 2 and d - (n - 2) >= 2:
        half = (d - (n - 2)) // 2
        rest = d - (n - 2) - half
        candidates.append(
            DemandProfile((half, rest) + (1,) * (n - 2))
        )
    # Geometric decay, rescaled to total exactly d.
    weights = [1 << (n - 1 - index) for index in range(n)]
    total_weight = sum(weights)
    geometric = [max(1, d * w // total_weight) for w in weights]
    deficit = d - sum(geometric)
    geometric[0] += deficit
    if geometric[0] >= 1:
        candidates.append(DemandProfile(tuple(geometric)))
    return candidates


def _neighbors(profile: DemandProfile) -> List[DemandProfile]:
    """Profiles reachable by moving one unit between two instances."""
    demands = list(profile.demands)
    moves = []
    n = len(demands)
    for source in range(n):
        if demands[source] <= 1:
            continue
        for target in range(n):
            if source == target:
                continue
            moved = list(demands)
            moved[source] -= 1
            moved[target] += 1
            moves.append(DemandProfile(tuple(sorted(moved, reverse=True))))
    # Deduplicate (sorting above canonicalizes).
    unique = []
    seen = set()
    for candidate in moves:
        if candidate.demands not in seen:
            seen.add(candidate.demands)
            unique.append(candidate)
    return unique


def find_worst_profile(
    probability: ProbabilityFn,
    n: int,
    d: int,
    max_steps: int = 50,
) -> Tuple[DemandProfile, Fraction]:
    """Best-effort worst profile in ``D1(n, d)`` for ``probability``.

    Returns ``(profile, exact probability)``. Deterministic: greedy
    ascent from the best canonical candidate, first-improvement order.
    """
    best_profile = None
    best_value = Fraction(-1)
    for candidate in candidate_profiles(n, d):
        value = probability(candidate)
        if value > best_value:
            best_profile, best_value = candidate, value
    assert best_profile is not None
    for _ in range(max_steps):
        improved = False
        for neighbor in _neighbors(best_profile):
            value = probability(neighbor)
            if value > best_value:
                best_profile, best_value = neighbor, value
                improved = True
                break
        if not improved:
            break
    return best_profile, best_value
