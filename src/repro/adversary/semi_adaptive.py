"""Demand sequences and the semi-adaptive follower ``fol(S)`` (§9).

Theorem 11 reduces adaptive to oblivious adversaries for ``Bins(k)`` and
``Bins*`` through *semi-adaptive* adversaries: follow a predetermined
demand sequence ``S = (D_0, D_1, ..., D_k)`` — each ``D_{i+1}`` extends
``D_i`` by one request — and, the moment a collision occurs, stop as
early as the family allows (at a reachable profile minimizing ``p*``).

Because the only adaptive decision is "has a collision happened yet",
these adversaries bound the power of fully adaptive ones against
symmetric algorithms, at a cost of a factor of at most 4 in competitive
ratio. Experiment E10 measures this factor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.adversary.base import NEW_INSTANCE, Adversary, GameView
from repro.adversary.profiles import DemandProfile
from repro.errors import GameError


class DemandSequence:
    """A ``D``-demand sequence encoded as the order of instance probes.

    ``steps[t]`` is the (0-based) logical instance receiving the
    ``t``-th request. Validity requires that an instance's first request
    appears only after all lower-numbered instances have been activated
    (activation order is the numbering, as in the paper's model).
    """

    def __init__(self, steps: Sequence[int]):
        active = 0
        for t, instance in enumerate(steps):
            if instance > active:
                raise GameError(
                    f"step {t} requests instance {instance} before "
                    f"instance {active} was activated"
                )
            if instance == active:
                active += 1
        if active == 0:
            raise GameError("a demand sequence must contain >= 1 request")
        self.steps: List[int] = list(steps)
        self.num_instances = active

    @staticmethod
    def from_profile(
        profile: DemandProfile, order: str = "round_robin"
    ) -> "DemandSequence":
        """Encode an oblivious profile as a demand sequence."""
        if order == "sequential":
            steps = [
                i for i, d in enumerate(profile.demands) for _ in range(d)
            ]
        elif order == "round_robin":
            steps = []
            remaining = list(profile.demands)
            # First activate everyone in numbering order, then cycle.
            while any(r > 0 for r in remaining):
                for i, r in enumerate(remaining):
                    if r > 0:
                        steps.append(i)
                        remaining[i] -= 1
        else:
            raise GameError(f"unknown order {order!r}")
        return DemandSequence(steps)

    def final_profile(self) -> DemandProfile:
        """The profile reached when the sequence completes unharmed."""
        counts = [0] * self.num_instances
        for instance in self.steps:
            counts[instance] += 1
        return DemandProfile(tuple(counts))

    def __len__(self) -> int:
        return len(self.steps)


class FollowerAdversary(Adversary):
    """``fol(S)``: follow ``S`` until a collision, then stop early.

    ``min_stop_requests`` models the "reach a profile in D" constraint:
    after a collision, the follower keeps following ``S`` only while the
    current profile is not yet stoppable (e.g. for ``D1(n, d)`` it must
    first activate all ``n`` instances), then halts. With a
    downward-closed family it stops immediately (the default).
    """

    def __init__(
        self,
        sequence: DemandSequence,
        stop_immediately_on_collision: bool = True,
        min_instances_to_stop: int = 1,
    ):
        self.sequence = sequence
        self.stop_immediately = stop_immediately_on_collision
        self.min_instances_to_stop = min_instances_to_stop
        self._cursor = 0

    def next_request(self, view: GameView) -> Optional[int]:
        """Next step of the fixed sequence; may stop early on a collision."""
        if self._cursor >= len(self.sequence.steps):
            return None
        if view.collided:
            if self.stop_immediately:
                return None
            if view.num_instances >= self.min_instances_to_stop:
                return None
        logical = self.sequence.steps[self._cursor]
        self._cursor += 1
        if logical >= view.num_instances:
            return NEW_INSTANCE
        return logical
