"""Game engine, Monte-Carlo estimation, and seed management."""

from repro.simulation.game import Game, GameResult, play_profile
from repro.simulation.montecarlo import (
    Estimate,
    estimate_collision_probability,
    estimate_profile_collision,
    wilson_interval,
)
from repro.simulation.seeds import derive_seed, rng_for, seed_stream

__all__ = [
    "Game",
    "GameResult",
    "play_profile",
    "Estimate",
    "estimate_collision_probability",
    "estimate_profile_collision",
    "wilson_interval",
    "derive_seed",
    "rng_for",
    "seed_stream",
]
