"""Game engine, the SimulationPlan estimation seam, engine registry,
Monte-Carlo estimation, parallel batching, vectorized NumPy kernels,
and seeds."""

from repro.simulation.batch import (
    AttackFactory,
    ObliviousFactory,
    SpecFactory,
    count_range,
    play_trial,
    resolve_workers,
    run_trials,
)
from repro.simulation.engines import (
    BatchedEngine,
    NumpyEngine,
    PythonEngine,
)
from repro.simulation.game import Game, GameResult, play_profile
from repro.simulation.montecarlo import (
    Estimate,
    estimate_collision_probability,
    estimate_profile_collision,
    wilson_interval,
)
from repro.simulation.plan import (
    Engine,
    EngineRegistry,
    RoundResult,
    SimulationPlan,
    TrialTask,
    available_engines,
    get_engine,
    iter_rounds,
    register_engine,
    run_plan,
)
from repro.simulation.seeds import derive_seed, rng_for, seed_stream
from repro.simulation.vectorized import (
    NUMPY_SEED_LABEL,
    VectorPlan,
    numpy_available,
    plan_profile,
)

__all__ = [
    "Game",
    "GameResult",
    "play_profile",
    "Estimate",
    "estimate_collision_probability",
    "estimate_profile_collision",
    "wilson_interval",
    "derive_seed",
    "rng_for",
    "seed_stream",
    "SpecFactory",
    "ObliviousFactory",
    "AttackFactory",
    "play_trial",
    "run_trials",
    "count_range",
    "resolve_workers",
    "SimulationPlan",
    "TrialTask",
    "RoundResult",
    "Engine",
    "EngineRegistry",
    "run_plan",
    "iter_rounds",
    "get_engine",
    "register_engine",
    "available_engines",
    "PythonEngine",
    "BatchedEngine",
    "NumpyEngine",
    "NUMPY_SEED_LABEL",
    "VectorPlan",
    "numpy_available",
    "plan_profile",
]
