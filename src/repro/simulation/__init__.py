"""Game engine, Monte-Carlo estimation, parallel batching, vectorized
NumPy kernels, and seeds."""

from repro.simulation.batch import (
    AttackFactory,
    ObliviousFactory,
    SpecFactory,
    play_trial,
    resolve_workers,
    run_trials,
)
from repro.simulation.vectorized import (
    NUMPY_SEED_LABEL,
    VectorPlan,
    numpy_available,
    plan_profile,
)
from repro.simulation.game import Game, GameResult, play_profile
from repro.simulation.montecarlo import (
    Estimate,
    estimate_collision_probability,
    estimate_profile_collision,
    wilson_interval,
)
from repro.simulation.seeds import derive_seed, rng_for, seed_stream

__all__ = [
    "Game",
    "GameResult",
    "play_profile",
    "Estimate",
    "estimate_collision_probability",
    "estimate_profile_collision",
    "wilson_interval",
    "derive_seed",
    "rng_for",
    "seed_stream",
    "SpecFactory",
    "ObliviousFactory",
    "AttackFactory",
    "play_trial",
    "run_trials",
    "resolve_workers",
    "NUMPY_SEED_LABEL",
    "VectorPlan",
    "numpy_available",
    "plan_profile",
]
