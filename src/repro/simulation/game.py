"""The UUIDP game engine (§2).

A :class:`Game` wires together ``n`` lazily created, *independent*
instances of an ID-generation algorithm and an adversary. The engine:

* activates instances on demand (the adversary never learns generator
  internals, only the produced IDs, via the shared ``GameView``);
* maintains the global ledger of produced IDs and flags the first
  cross-instance collision;
* optionally enforces that the final demand profile lands in a declared
  :class:`~repro.adversary.profiles.ProfileFamily` (the paper's
  ``Adv(D)`` requirement);
* returns a :class:`GameResult` with everything experiments need.

Within-instance duplicates are a *generator bug*, not a collision; the
engine raises :class:`~repro.errors.GameError` if one ever appears.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.adversary.base import NEW_INSTANCE, Adversary, GameView
from repro.adversary.profiles import DemandProfile, ProfileFamily
from repro.core.base import IDGenerator
from repro.errors import GameError, IDSpaceExhaustedError
from repro.simulation.seeds import rng_for

#: A factory building one generator instance given (m, rng).
InstanceFactory = Callable[[int, random.Random], IDGenerator]


@dataclass(frozen=True)
class GameResult:
    """Outcome of one play of the UUIDP game."""

    collided: bool
    collision_step: Optional[int]
    profile: DemandProfile
    steps: int
    #: (instance, id) transcript; empty unless the game kept it.
    transcript: Tuple[Tuple[int, int], ...]
    #: True if some instance raised IDSpaceExhaustedError mid-game.
    exhausted: bool = False


class Game:
    """One play of the game between an algorithm and an adversary.

    Parameters
    ----------
    factory:
        Builds a fresh instance: ``factory(m, rng) -> IDGenerator``.
    m:
        Universe size.
    adversary:
        The request strategy.
    seed:
        Root seed; instance ``i`` of trial gets an independent RNG
        derived from it (see :mod:`repro.simulation.seeds`).
    stop_on_collision:
        End the game at the first collision (the usual setting: the
        adversary has already won).
    family:
        If given, validate that the final profile is in the family
        (raises ``GameError`` otherwise) — this is ``Adv(D)``.
    keep_transcript:
        Retain the full (instance, id) event list in the result.
    """

    def __init__(
        self,
        factory: InstanceFactory,
        m: int,
        adversary: Adversary,
        seed: int = 0,
        stop_on_collision: bool = True,
        family: Optional[ProfileFamily] = None,
        keep_transcript: bool = False,
    ):
        self.factory = factory
        self.m = m
        self.adversary = adversary
        self.seed = seed
        self.stop_on_collision = stop_on_collision
        self.family = family
        self.keep_transcript = keep_transcript
        self._instances: List[IDGenerator] = []
        self._owner_of_id: Dict[int, int] = {}
        self._duplicate_guard: List[Set[int]] = []

    def _activate_instance(self) -> int:
        index = len(self._instances)
        instance_rng = rng_for(self.seed, index)
        self._instances.append(self.factory(self.m, instance_rng))
        self._duplicate_guard.append(set())
        return index

    def run(self, max_steps: Optional[int] = None) -> GameResult:
        """Play until the adversary stops, a collision ends the game
        (if ``stop_on_collision``), or ``max_steps`` is reached.
        """
        view = GameView(self.m)
        self.adversary.begin(view)
        exhausted = False
        while max_steps is None or view.steps < max_steps:
            if view.collided and self.stop_on_collision:
                break
            choice = self.adversary.next_request(view)
            if choice is None:
                break
            if choice == NEW_INSTANCE:
                target = self._activate_instance()
            else:
                if not 0 <= choice < len(self._instances):
                    raise GameError(
                        f"adversary requested unknown instance {choice} "
                        f"(active: {len(self._instances)})"
                    )
                target = choice
            try:
                value = self._instances[target].next_id()
            except IDSpaceExhaustedError:
                exhausted = True
                break
            if value in self._duplicate_guard[target]:
                raise GameError(
                    f"generator bug: instance {target} repeated ID {value}"
                )
            self._duplicate_guard[target].add(value)
            collided_now = (
                value in self._owner_of_id
                and self._owner_of_id[value] != target
            )
            if value not in self._owner_of_id:
                self._owner_of_id[value] = target
            view._record(target, value, collided_now)
        profile = (
            view.current_profile()
            if view.num_instances > 0
            else DemandProfile((1,))  # degenerate: adversary never played
        )
        if view.num_instances == 0:
            raise GameError("adversary stopped without making any request")
        if self.family is not None and not view.collided:
            if not self.family.contains(profile):
                raise GameError(
                    f"final profile {profile.demands} outside the declared "
                    f"family {self.family}"
                )
        return GameResult(
            collided=view.collided,
            collision_step=view.collision_step,
            profile=profile,
            steps=view.steps,
            transcript=tuple(view.events()) if self.keep_transcript else (),
            exhausted=exhausted,
        )


def play_profile(
    factory: InstanceFactory,
    m: int,
    profile: DemandProfile,
    seed: int = 0,
    order: str = "sequential",
) -> GameResult:
    """Convenience: play one oblivious game on ``profile``."""
    from repro.adversary.base import ObliviousAdversary

    adversary = ObliviousAdversary(
        profile, order=order, rng=rng_for(seed, 0xAD)
    )
    game = Game(factory, m, adversary, seed=seed, stop_on_collision=False)
    return game.run()
