"""Parallel, batched Monte-Carlo trial execution.

This module is the engine room beneath the
:mod:`repro.simulation.plan` seam (and thus behind
:func:`repro.simulation.montecarlo.estimate_collision_probability`):
the registered engines slice trial-index ranges into rounds and hand
them to :func:`count_range` here. Three mechanisms live in this file:

* **Sharding** — independent seeded trials are strided across worker
  processes (``concurrent.futures.ProcessPoolExecutor``). Every trial's
  randomness derives from ``(root seed, trial index)`` alone via
  :func:`repro.simulation.seeds.derive_seed`, so the collision count —
  and therefore the :class:`~repro.simulation.montecarlo.Estimate` — is
  bit-identical at any worker count, including the serial path.
* **Batching** — oblivious sequential games skip the step-by-step game
  loop entirely: each instance produces its whole demand vector through
  :meth:`repro.core.base.IDGenerator.generate_batch` and collisions are
  detected with set operations. The per-trial collision outcome is
  provably the same as the game loop's, so estimates never change.
* **Vectorization** — ``engine="numpy"`` goes further and simulates a
  whole block of oblivious trials as array operations
  (:mod:`repro.simulation.vectorized`). Dispatch requires a
  :class:`SpecFactory` for one of the five core algorithms plus a
  sequential :class:`ObliviousFactory`; anything else (adaptive
  attacks, custom factories, out-of-regime profiles, a missing NumPy)
  silently runs the python path. Unlike ``workers``/``batch`` — pure
  go-faster knobs — the NumPy engine is a *separate RNG universe*:
  estimates are reproducible per engine but differ across engines by
  ordinary Monte-Carlo noise.

Worker processes must be able to *pickle* the instance and adversary
factories. The lambdas that are idiomatic for in-process use don't
pickle, so this module also ships three picklable factory shims:
:class:`SpecFactory` (registry spec string → generator),
:class:`ObliviousFactory` (demand profile → oblivious adversary) and
:class:`AttackFactory` (adversary class + kwargs → adaptive adversary).
Unpicklable factories silently degrade to the serial path (same
results, no speedup) after emitting a :class:`RuntimeWarning`.
"""

from __future__ import annotations

import inspect
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Optional, Tuple

from repro.adversary.base import Adversary, ObliviousAdversary
from repro.adversary.profiles import DemandProfile
from repro.core.registry import make_generator
from repro.errors import ConfigurationError, GameError
from repro.simulation import vectorized
from repro.simulation.game import Game, InstanceFactory
from repro.simulation.seeds import derive_seed, rng_for

#: Seed-path label for the per-trial adversary RNG. Must stay in sync
#: with the historical value used by ``estimate_collision_probability``
#: so existing seeds reproduce existing estimates.
ADVERSARY_SEED_LABEL = 0xAD

AdversaryFactory = Callable[..., Adversary]


# ---------------------------------------------------------------------------
# Picklable factory shims
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecFactory:
    """A picklable :data:`InstanceFactory` built from a registry spec.

    ``SpecFactory("bins:16")(m, rng)`` is
    ``make_generator("bins:16", m, rng)``; unlike the equivalent lambda
    it crosses process boundaries, which is what lets experiments and
    the CLI fan trials out across workers.
    """

    spec: str

    def __call__(self, m: int, rng) -> Any:
        return make_generator(self.spec, m, rng)


@dataclass(frozen=True)
class ObliviousFactory:
    """A picklable adversary factory replaying a fixed demand profile.

    With the default ``order="sequential"`` the factory is also
    *batchable*: :func:`play_trial` recognizes it and switches to the
    vectorized ``generate_batch`` trial path.
    """

    profile: DemandProfile
    order: str = "sequential"

    def __call__(self, rng) -> Adversary:
        return ObliviousAdversary(self.profile, order=self.order, rng=rng)


@lru_cache(maxsize=None)
def _accepts_rng(attack_cls: type) -> bool:
    """Whether ``attack_cls.__init__`` takes an ``rng`` keyword."""
    try:
        parameters = inspect.signature(attack_cls.__init__).parameters
    except (TypeError, ValueError):  # pragma: no cover - C extensions
        return False
    if "rng" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


@dataclass(frozen=True)
class AttackFactory:
    """A picklable adversary factory from a class and keyword arguments.

    ``AttackFactory(ClosestPairAttack, n=8, d=1024)`` builds a fresh
    (stateful) attack per trial, like the lambdas it replaces. The class
    is pickled by reference, so any module-level adversary class works.

    Attack classes whose ``__init__`` accepts an ``rng`` keyword get the
    derived per-trial RNG, so any randomness they use is fully
    seed-derived (an explicit ``rng=`` in ``kwargs`` wins); classes
    without the keyword are built from ``kwargs`` alone.
    """

    attack_cls: type
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __init__(self, attack_cls: type, **kwargs: Any):
        object.__setattr__(self, "attack_cls", attack_cls)
        object.__setattr__(self, "kwargs", kwargs)

    def __call__(self, rng) -> Adversary:
        if "rng" not in self.kwargs and _accepts_rng(self.attack_cls):
            return self.attack_cls(rng=rng, **self.kwargs)
        return self.attack_cls(**self.kwargs)


# ---------------------------------------------------------------------------
# Single-trial execution (game loop or vectorized batch path)
# ---------------------------------------------------------------------------


def _batchable_profile(
    adversary_factory: AdversaryFactory,
) -> Optional[DemandProfile]:
    """The demand profile, if the factory admits the batched fast path."""
    if (
        isinstance(adversary_factory, ObliviousFactory)
        and adversary_factory.order == "sequential"
        # Empty profiles must keep flowing through the game loop, which
        # rejects them ("adversary stopped without making any request");
        # the batched path would silently report no collision instead.
        and len(adversary_factory.profile.demands) > 0
    ):
        return adversary_factory.profile
    return None


def _play_profile_trial_batched(
    factory: InstanceFactory,
    m: int,
    profile: DemandProfile,
    game_seed: int,
) -> bool:
    """One oblivious sequential trial without the game loop.

    Instance ``i`` gets ``rng_for(game_seed, i)`` — the exact RNG the
    :class:`Game` engine would hand it — and emits its whole demand via
    ``generate_batch``. The trial collides iff two instances share an
    ID, and stops at the first mid-batch exhaustion, mirroring the
    engine's semantics, so the collision outcome is identical.
    """
    seen: set = set()
    for index, demand in enumerate(profile.demands):
        generator = factory(m, rng_for(game_seed, index))
        ids = generator.generate_batch(demand)
        fresh = set(ids)
        if len(fresh) != len(ids):
            raise GameError(
                f"generator bug: instance {index} repeated an ID"
            )
        if not seen.isdisjoint(fresh):
            return True
        seen |= fresh
        if len(ids) < demand:  # exhausted mid-batch: the game stops here
            return False
    return False


def play_trial(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
    seed: int,
    trial: int,
    stop_on_collision: bool = True,
    max_steps: Optional[int] = None,
    batch: bool = False,
) -> bool:
    """Play trial number ``trial`` and return whether it collided.

    This is *the* definition of a trial: both the serial loop and every
    worker process call it, which is what makes estimates independent
    of how trials are scheduled.
    """
    if batch and max_steps is None:
        profile = _batchable_profile(adversary_factory)
        if profile is not None:
            return _play_profile_trial_batched(
                factory, m, profile, derive_seed(seed, trial)
            )
    adversary = adversary_factory(rng_for(seed, trial, ADVERSARY_SEED_LABEL))
    game = Game(
        factory,
        m,
        adversary,
        seed=derive_seed(seed, trial),
        stop_on_collision=stop_on_collision,
    )
    return game.run(max_steps=max_steps).collided


# ---------------------------------------------------------------------------
# Sharded execution
# ---------------------------------------------------------------------------

def _vector_plan(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
) -> Optional["vectorized.VectorPlan"]:
    """The NumPy execution plan, if this workload admits one.

    Requires a :class:`SpecFactory` (the kernels dispatch on the spec
    string) and a batchable oblivious profile; the remaining gates live
    in :func:`repro.simulation.vectorized.plan_profile`. Deterministic
    in its arguments, so every worker process reaches the same verdict.
    """
    if not isinstance(factory, SpecFactory):
        return None
    profile = _batchable_profile(adversary_factory)
    if profile is None:
        return None
    return vectorized.plan_profile(factory.spec, m, profile)


#: Everything a worker needs to play its stride of trials.
_TrialBlock = Tuple[
    InstanceFactory,  # factory
    int,  # m
    AdversaryFactory,  # adversary_factory
    int,  # seed
    int,  # offset — first trial index of this block
    int,  # stride — number of blocks (trials offset, offset+stride, ...)
    int,  # trials — total trial count across all blocks
    bool,  # stop_on_collision
    Optional[int],  # max_steps
    bool,  # batch
    str,  # engine
]


def _run_trial_block(payload: _TrialBlock) -> int:
    """Play trials ``offset, offset+stride, ...`` and count collisions."""
    (
        factory,
        m,
        adversary_factory,
        seed,
        offset,
        stride,
        trials,
        stop_on_collision,
        max_steps,
        batch,
        engine,
    ) = payload
    if engine == "numpy" and max_steps is None:
        plan = _vector_plan(factory, m, adversary_factory)
        if plan is not None:
            return plan.count_collisions(seed, offset, stride, trials)
    collisions = 0
    for trial in range(offset, trials, stride):
        if play_trial(
            factory,
            m,
            adversary_factory,
            seed,
            trial,
            stop_on_collision=stop_on_collision,
            max_steps=max_steps,
            batch=batch,
        ):
            collisions += 1
    return collisions


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` option to a concrete process count.

    ``None`` and ``1`` mean in-process serial execution; ``0`` means
    "one per CPU"; anything negative is a configuration error.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _pickle_obstacle(*objects: Any) -> Optional[BaseException]:
    """The exception pickling ``objects`` raises, or ``None`` if they
    round-trip. The concrete exception is surfaced in the serial-
    fallback warning so users see *why* their factory stayed serial."""
    try:
        pickle.dumps(objects)
        return None
    except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
        # The documented failure modes of pickle.dumps: closures and
        # local classes (PicklingError/AttributeError), unsupported
        # types (TypeError), recursive/invalid state (ValueError).
        return exc


def _warn_unpicklable(
    obstacle: BaseException, stacklevel: int = 3
) -> None:
    warnings.warn(
        "factories are not picklable "
        f"({type(obstacle).__name__}: {obstacle}); running trials "
        "serially (use SpecFactory / ObliviousFactory / AttackFactory "
        "for cross-process execution)",
        RuntimeWarning,
        stacklevel=stacklevel,
    )


#: Fires the numpy-missing fallback warning once per process instead of
#: once per ``estimate_*`` call (experiment sweeps made it deafening).
_numpy_fallback_warned = False


def _resolve_engine_kind(engine: str) -> str:
    """Normalize an engine name to a trial-block kind.

    ``batched`` is the python RNG universe with the batched fast path
    forced on, so blocks execute as ``python``; ``numpy`` degrades to
    ``python`` (with a once-per-process warning) when NumPy is absent.
    Anything else is rejected loudly: this module only knows how to
    execute the built-in kinds, and silently running the python loop
    for, say, a registered third-party engine name would return
    wrong-universe counts with no warning.
    """
    if engine == "batched":
        return "python"
    if engine == "numpy" and not vectorized.numpy_available():
        global _numpy_fallback_warned
        if not _numpy_fallback_warned:
            _numpy_fallback_warned = True
            warnings.warn(
                "NumPy is not installed; engine='numpy' falling back to "
                "the python engine (estimates will match "
                "engine='python', not a NumPy-equipped host; this "
                "warning fires once per process)",
                RuntimeWarning,
                stacklevel=4,
            )
        return "python"
    if engine not in ("python", "numpy"):
        raise ConfigurationError(
            f"count_range cannot execute engine {engine!r}; it only "
            "implements the built-in python/batched/numpy kinds — "
            "custom engines must provide their own run_rounds"
        )
    return engine


def count_range(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
    seed: int,
    start: int,
    stop: int,
    stop_on_collision: bool = True,
    max_steps: Optional[int] = None,
    workers: Optional[int] = None,
    batch: bool = False,
    engine: str = "python",
    executor: Optional[ProcessPoolExecutor] = None,
) -> int:
    """Count collisions over the trial indices ``[start, stop)``.

    The partition-invariant primitive beneath :func:`run_trials` and
    the plan-layer engines: each trial's outcome is a pure function of
    ``(seed, trial index)``, so counts over any index range compose by
    addition and never depend on ``workers``, ``batch``, or how a
    caller slices the range into rounds.

    Callers issuing many calls (the plan layer's rounds) pass a shared
    ``executor`` so worker processes are spawned once, not per call;
    without one a fresh pool is created when ``workers`` asks for it.
    """
    kind = _resolve_engine_kind(engine)  # validate even for empty ranges
    if stop <= start:
        return 0
    count = min(resolve_workers(workers), stop - start)
    # A caller-supplied executor proves picklability — skip re-probing
    # (a full pickle round-trip of both factories) on every round.
    if count > 1 and executor is None:
        obstacle = _pickle_obstacle(factory, adversary_factory)
        if obstacle is not None:
            _warn_unpicklable(obstacle)
            count = 1
    if engine == "batched":
        batch = True
    payloads = [
        (
            factory,
            m,
            adversary_factory,
            seed,
            start + shard,
            count,
            stop,
            stop_on_collision,
            max_steps,
            batch,
            kind,
        )
        for shard in range(count)
    ]
    if count <= 1:
        return _run_trial_block(payloads[0])
    if executor is not None:
        return sum(executor.map(_run_trial_block, payloads))
    with ProcessPoolExecutor(max_workers=count) as pool:
        return sum(pool.map(_run_trial_block, payloads))


def run_trials(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
    trials: int,
    seed: int = 0,
    stop_on_collision: bool = True,
    max_steps: Optional[int] = None,
    workers: Optional[int] = None,
    batch: bool = False,
    engine: str = "python",
) -> int:
    """Count collisions over ``trials`` independent seeded games.

    Within one RNG universe the result depends only on ``(seed,
    trials)`` and the factories — never on ``workers`` or ``batch`` —
    because each trial's outcome is a pure function of its derived seed
    and addition commutes across shards. ``engine="numpy"`` switches
    batchable oblivious workloads to the vectorized kernels of
    :mod:`repro.simulation.vectorized` (a separate, equally
    reproducible RNG universe); non-vectorizable workloads run the
    python path unchanged. ``engine`` accepts any registered engine
    name (see :func:`repro.simulation.plan.available_engines`) —
    execution goes through that engine's own ``run_rounds``.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    from repro.simulation.plan import SimulationPlan, TrialTask, get_engine

    plan = SimulationPlan(engine=engine, workers=workers, batch=batch)
    task = TrialTask(
        factory=factory,
        m=m,
        adversary_factory=adversary_factory,
        stop_on_collision=stop_on_collision,
        max_steps=max_steps,
    )
    return sum(
        round_result.collisions
        for round_result in get_engine(engine).run_rounds(
            plan, task, seed, 0, trials
        )
    )
