"""Deterministic seed derivation for reproducible experiments.

All randomness in this package flows from explicit :class:`random.Random`
instances. Experiments take one *root seed* and derive per-trial and
per-instance seeds with :func:`derive_seed`, a SplitMix64-style mixer, so

* any trial can be re-run in isolation given the root seed, and
* instance RNGs are statistically independent even for adjacent seeds
  (a plain ``seed + i`` scheme would correlate Mersenne-Twister streams
  far less thoroughly than a 64-bit avalanche mixer).
"""

from __future__ import annotations

import random
from typing import Iterator

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele, Lea, Flood 2014).
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One SplitMix64 output step: full-avalanche 64-bit mix of ``x``."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def derive_seed(root: int, *path: int) -> int:
    """Derive a child seed from ``root`` and a tuple of path components.

    The path is typically ``(trial_index, instance_index)``. Derivation is
    associative-free by design: ``derive_seed(s, 1, 2)`` is unrelated to
    ``derive_seed(s, 12)``.
    """
    state = _splitmix64(root & _MASK64)
    for component in path:
        state = _splitmix64(state ^ _splitmix64(component & _MASK64))
    return state


def rng_for(root: int, *path: int) -> random.Random:
    """Return a fresh :class:`random.Random` seeded along ``path``."""
    return random.Random(derive_seed(root, *path))


def seed_stream(root: int, label: int = 0) -> Iterator[int]:
    """Yield an unbounded stream of independent seeds under ``root``."""
    index = 0
    while True:
        yield derive_seed(root, label, index)
        index += 1
