"""The built-in estimation engines, registered behind the plan seam.

Three backends self-register into :data:`repro.simulation.plan.REGISTRY`
on import:

``python``
    The reference engine: per-trial game loop, with the batched
    oblivious fast path enabled per ``plan.batch`` and trials sharded
    across ``plan.workers`` processes. Bit-identical at any split.
``batched``
    The python RNG universe with the batched set-operation path forced
    on regardless of ``plan.batch`` — bit-identical to ``python``
    (batching is a pure go-faster knob), listed separately so callers
    can pin the fast path explicitly.
``numpy``
    The vectorized kernels of :mod:`repro.simulation.vectorized`:
    whole rounds of oblivious trials as array operations, same
    split-invariance, but a *separate RNG universe* from the python
    pair. Workloads the kernels cannot express — and hosts without
    NumPy (once-per-process warning) — degrade to the python path.

All three delegate range counting to
:func:`repro.simulation.batch.count_range`, whose per-trial purity is
what lets the plan layer promise split-invariant estimates. A new
backend only needs :meth:`Engine.run_rounds` yielding partition-pure
:class:`RoundResult` chunks and a ``register_engine`` call.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterator

from repro.simulation.batch import (
    _pickle_obstacle,
    _warn_unpicklable,
    count_range,
    resolve_workers,
)
from repro.simulation.plan import (
    Engine,
    RoundResult,
    SimulationPlan,
    TrialTask,
    register_engine,
)


class _RangeEngine(Engine):
    """Shared round-slicing logic over :func:`count_range` backends."""

    #: Trial-block kind handed to ``count_range``.
    kind: str = "python"
    #: ``None`` defers to ``plan.batch``; a bool forces the fast path.
    force_batch = None

    def _slices(
        self, plan: SimulationPlan, start: int, stop: int
    ) -> "list[tuple[int, int]]":
        """Round boundaries: checkpoint-aligned, then ``round_size``-cut.

        Aligning rounds to ``plan.checkpoints(stop)`` is what lets the
        :func:`~repro.simulation.plan.run_plan` driver evaluate its
        stop rule mid-stream; sub-slicing by ``round_size`` is pure
        execution granularity. Neither changes any count.
        """
        boundaries = [
            c for c in plan.checkpoints(stop) if start < c <= stop
        ]
        if not boundaries or boundaries[-1] != stop:
            boundaries.append(stop)
        slices = []
        low = start
        for boundary in boundaries:
            size = plan.round_size or max(1, boundary - low)
            while low < boundary:
                high = min(boundary, low + size)
                slices.append((low, high))
                low = high
        return slices

    def run_rounds(
        self,
        plan: SimulationPlan,
        task: TrialTask,
        seed: int,
        start: int,
        stop: int,
    ) -> Iterator[RoundResult]:
        if stop <= start:
            return
        batch = plan.batch if self.force_batch is None else self.force_batch
        slices = self._slices(plan, start, stop)
        # One worker pool and one picklability probe for the whole
        # call: neither small round sizes nor adaptive checkpoints may
        # pay a process-spawn (or a pickle round-trip, or a repeated
        # warning) per round. The estimate is unchanged either way —
        # pooling is pure execution detail. The pool is created even
        # for a single slice so count_range never re-probes.
        workers = min(resolve_workers(plan.workers), stop - start)
        plan_workers = plan.workers
        obstacle = (
            _pickle_obstacle(task.factory, task.adversary_factory)
            if workers > 1
            else None
        )
        if obstacle is not None:
            _warn_unpicklable(obstacle, stacklevel=2)
            workers = 1
            plan_workers = None
        executor = None
        if workers > 1:
            executor = ProcessPoolExecutor(max_workers=workers)
        try:
            for low, high in slices:
                collisions = count_range(
                    task.factory,
                    task.m,
                    task.adversary_factory,
                    seed,
                    low,
                    high,
                    stop_on_collision=task.stop_on_collision,
                    max_steps=task.max_steps,
                    workers=plan_workers,
                    batch=batch,
                    engine=self.kind,
                    executor=executor,
                )
                yield RoundResult(low, high, collisions)
        finally:
            if executor is not None:
                executor.shutdown()


class PythonEngine(_RangeEngine):
    """Per-trial game loop (optionally batched) — the reference engine."""

    name = "python"
    kind = "python"


class BatchedEngine(_RangeEngine):
    """Python universe with the batched oblivious fast path pinned on."""

    name = "batched"
    kind = "python"
    force_batch = True


class NumpyEngine(_RangeEngine):
    """Vectorized NumPy kernels; python fallback outside their regime."""

    name = "numpy"
    kind = "numpy"


PYTHON_ENGINE = register_engine(PythonEngine())
BATCHED_ENGINE = register_engine(BatchedEngine())
NUMPY_ENGINE = register_engine(NumpyEngine())

__all__ = [
    "PythonEngine",
    "BatchedEngine",
    "NumpyEngine",
    "PYTHON_ENGINE",
    "BATCHED_ENGINE",
    "NUMPY_ENGINE",
]
