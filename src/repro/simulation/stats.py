"""Binomial-proportion statistics shared by every estimation path.

:class:`Estimate` and :func:`wilson_interval` used to live in
:mod:`repro.simulation.montecarlo`; they moved here so the
:mod:`repro.simulation.plan` layer (which decides *when to stop
sampling* from the width of the interval) can use them without a
circular import. The old import sites keep working — ``montecarlo``
re-exports both names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Estimate:
    """A binomial proportion estimate with a confidence interval."""

    probability: float
    trials: int
    successes: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def halfwidth(self) -> float:
        """Half the Wilson interval — the adaptive stopping criterion."""
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return (
            f"{self.probability:.4g} "
            f"[{self.ci_low:.4g}, {self.ci_high:.4g}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0,1), got {confidence}"
        )
    # Normal quantile via the Acklam-style inverse error approximation:
    # for the common confidences this is plenty accurate.
    z = _normal_quantile(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(
            phat * (1 - phat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    low = max(0.0, center - half)
    high = min(1.0, center + half)
    # Exact boundary cases: float dust must not push the interval off
    # the observed proportion.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return low, high


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Beasley-Springer-Moro)."""
    if not 0 < p < 1:
        raise ConfigurationError("quantile argument must be in (0,1)")
    a = [
        -3.969683028665376e01, 2.209460984245205e02,
        -2.759285104469687e02, 1.383577518672690e02,
        -3.066479806614716e01, 2.506628277459239e00,
    ]
    b = [
        -5.447609879822406e01, 1.615858368580409e02,
        -1.556989798598866e02, 6.680131188771972e01,
        -1.328068155288572e01,
    ]
    c = [
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e00, -2.549732539343734e00,
        4.374664141464968e00, 2.938163982698783e00,
    ]
    d = [
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e00, 3.754408661907416e00,
    ]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
