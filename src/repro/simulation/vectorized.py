"""NumPy-vectorized Monte-Carlo trial kernels — the ``engine="numpy"`` path.

:mod:`repro.simulation.batch` parallelizes trials *across* processes;
this module parallelizes *within* one: a whole block of oblivious
trials is simulated as a handful of array operations instead of
thousands of Python-level ``random.Random`` calls and set updates. For
each algorithm family the per-trial collision event reduces to a
closed-form array computation:

=============  =========================================================
``Random``     each instance is a uniform ``d_i``-subset of ``[m]``
               (sampled by per-row rejection until duplicate-free);
               collision ⇔ a duplicate in the sorted concatenation.
``Bins(k)``    same kernel over the reduced universe of ``⌊m/k⌋`` bins
               with ``⌈d_i/k⌉`` picks per instance (a shared bin always
               collides: both prefixes contain its first ID).
``Cluster``    one uniform arc start per instance; collision ⇔ the
               circular consecutive-gap test fails after sorting the
               starts of each trial row.
``Bins*``      instances with ``d ≥ 2^c`` pick one uniform bin among
               the ``2^(C−1−c)`` bins of chunk ``c``; collision ⇔ a
               duplicate bin pick inside any chunk row.
``Cluster*``   run placements are vectorized across trials round by
               round (rejection sampling against the instance's own
               previous runs — the same uniform-over-free-starts law as
               ``CircularIntervalSet.sample_free_start``); the rare
               trials whose placement cannot be resolved fall back to
               the exact Python game loop.
=============  =========================================================

Randomness is *counter-based* SplitMix64: trial ``t`` draws from the
stream keyed by ``derive_seed(root, t, NUMPY_SEED_LABEL)``, so every
trial's outcome is a pure function of ``(root seed, trial index)`` and
estimates are bit-identical at any ``workers=`` count or internal chunk
size. The label makes the NumPy engine a *separate RNG universe* from
the python engine: both are exact samplers of the same per-trial
collision distribution (equivalence is asserted statistically against
:mod:`repro.analysis.exact` in the test suite), but their estimates
differ by ordinary Monte-Carlo noise.

The module imports cleanly without NumPy installed —
:func:`numpy_available` reports the capability and every planner entry
point degrades to ``None`` (callers then use the python engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

try:  # soft dependency: everything degrades to the python engine
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

from repro.adversary.profiles import DemandProfile
from repro.core.bins_star import chunk_count
from repro.errors import ConfigurationError, GameError
from repro.simulation.seeds import _MASK64, _splitmix64

#: Seed-path label appended to ``(root seed, trial index)`` when keying
#: a trial's NumPy stream. Distinct from every label the python engine
#: uses, which is what makes the two engines separate RNG universes.
NUMPY_SEED_LABEL = 0x4E505633  # "NPV3"

#: Universes above this bound stay on the python engine: the kernels
#: do modular arithmetic like ``start + (m - other)`` in uint64, which
#: needs ``2m < 2**63`` of headroom.
_MAX_UNIVERSE = 1 << 61

#: Target array elements per internal trial chunk (bounds peak memory;
#: invisible in the results because trials are keyed individually).
_CHUNK_ELEMENTS = 1 << 22

#: Rejection-round caps. The planner's gates keep per-round acceptance
#: at ≥ exp(-2) (duplicate-free rows) and ≥ 1/2 (unbiased range and
#: run placement), so the caps are unreachable in practice; placement
#: overruns fall back to the game loop, the others are generator bugs.
_MAX_REJECT_ROUNDS = 512
_MAX_PLACEMENT_ROUNDS = 64


def numpy_available() -> bool:
    """Whether the NumPy engine can run at all on this host."""
    return _np is not None


if _np is not None:
    _GAMMA = _np.uint64(0x9E3779B97F4A7C15)
    _MIX1 = _np.uint64(0xBF58476D1CE4E5B9)
    _MIX2 = _np.uint64(0x94D049BB133111EB)
    _S30 = _np.uint64(30)
    _S27 = _np.uint64(27)
    _S31 = _np.uint64(31)


def _mix64(x):
    """Vectorized SplitMix64 output step (wraps mod 2**64, like uint64).

    Bit-identical to :func:`repro.simulation.seeds._splitmix64` on every
    element; operates on uint64 *arrays* only (NumPy warns on scalar
    overflow but wraps arrays silently).
    """
    x = x + _GAMMA
    x = (x ^ (x >> _S30)) * _MIX1
    x = (x ^ (x >> _S27)) * _MIX2
    return x ^ (x >> _S31)


def trial_keys(seed: int, trial_indices) -> "object":
    """Per-trial stream keys: ``derive_seed(seed, t, NUMPY_SEED_LABEL)``.

    Vectorized over ``trial_indices`` (any integer array); the scalar
    path components are pre-mixed with the pure-python SplitMix64 so
    only array arithmetic touches NumPy.
    """
    trials = _np.asarray(trial_indices).astype(_np.uint64)
    state = _np.uint64(_splitmix64(seed & _MASK64))
    state = _mix64(state ^ _mix64(trials))
    mixed_label = _np.uint64(_splitmix64(NUMPY_SEED_LABEL))
    return _mix64(state ^ mixed_label)


class _Streams:
    """One independent counter-based SplitMix64 stream per trial row.

    Row ``r``'s ``j``-th draw is ``mix(key_r + (j+1)·γ)`` — exactly the
    SplitMix64 generator seeded with ``key_r`` — so the values a trial
    sees depend only on its key and how many draws *it* has consumed,
    never on which other trials share the block.
    """

    def __init__(self, keys):
        self.keys = keys
        self.pos = _np.zeros(keys.shape, dtype=_np.uint64)

    def draw(self, cols: int, rows=None):
        """Next ``cols`` raw 64-bit values for every row (or ``rows``)."""
        keys = self.keys if rows is None else self.keys[rows]
        pos = self.pos if rows is None else self.pos[rows]
        offsets = pos[:, None] + _np.arange(cols, dtype=_np.uint64)[None, :]
        values = _mix64(keys[:, None] + (offsets + _np.uint64(1)) * _GAMMA)
        if rows is None:
            self.pos = self.pos + _np.uint64(cols)
        else:
            self.pos[rows] += _np.uint64(cols)
        return values

    def uniform(self, bound: int, cols: int, rows=None):
        """Exactly uniform draws in ``[0, bound)`` — (rows, cols) array.

        Values at or above the largest multiple of ``bound`` below
        ``2**64`` are redrawn (per element), so the modulo at the end
        carries no bias; acceptance is ≥ 1/2 per draw.
        """
        values = self.draw(cols, rows)
        threshold = ((1 << 64) // bound) * bound
        if threshold < (1 << 64):
            limit = _np.uint64(threshold)
            for _ in range(_MAX_REJECT_ROUNDS):
                bad = values >= limit
                bad_rows = _np.nonzero(bad.any(axis=1))[0]
                if bad_rows.size == 0:
                    break
                absolute = bad_rows if rows is None else rows[bad_rows]
                fresh = self.draw(cols, absolute)
                values[bad_rows] = _np.where(
                    bad[bad_rows], fresh, values[bad_rows]
                )
            else:  # pragma: no cover - P(reach) <= 2**-512 per element
                raise GameError("uniform rejection sampling did not converge")
        return values % _np.uint64(bound)

    def distinct_uniform(self, bound: int, cols: int):
        """Uniformly random *duplicate-free* rows of ``cols`` draws.

        Rows containing a repeated value are redrawn whole, i.e. the
        result is conditioned on all-distinct — exactly the law of
        sequential sampling without replacement (what the python
        generators implement with per-draw rejection against a set).
        """
        values = self.uniform(bound, cols)
        if cols <= 1:
            return values
        for _ in range(_MAX_REJECT_ROUNDS):
            ordered = _np.sort(values, axis=1)
            dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            dup_rows = _np.nonzero(dup)[0]
            if dup_rows.size == 0:
                return values
            values[dup_rows] = self.uniform(bound, cols, dup_rows)
        raise GameError(  # pragma: no cover - gated to acceptance >= e^-2
            "duplicate-free row sampling did not converge; "
            "the planner's density gate should have routed this "
            "profile to the python engine"
        )


# ---------------------------------------------------------------------------
# Per-family collision kernels (one boolean per trial row)
# ---------------------------------------------------------------------------


def _subsets_collisions(universe: int, sizes, streams: "_Streams"):
    """Random / Bins(k): duplicate detection across per-instance subsets."""
    blocks = [streams.distinct_uniform(universe, size) for size in sizes]
    ids = blocks[0] if len(blocks) == 1 else _np.concatenate(blocks, axis=1)
    ordered = _np.sort(ids, axis=1)
    if ordered.shape[1] < 2:
        return _np.zeros(ordered.shape[0], dtype=bool)
    # Within-instance duplicates were rejected away, so any duplicate
    # in the concatenated row is a cross-instance collision.
    return (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)


def _circular_arcs_disjoint(m: int, starts, lengths):
    """Row-wise: are the circular arcs ``[start, start+length)`` disjoint?

    ``starts`` is (trials, arcs) uint64, ``lengths`` (arcs,) uint64 and
    shared by all rows. Sort each row by start; the arcs are pairwise
    disjoint iff every consecutive forward gap fits the earlier arc,
    including the wrap-around pair.
    """
    order = _np.argsort(starts, axis=1, kind="stable")
    sorted_starts = _np.take_along_axis(starts, order, axis=1)
    sorted_lengths = lengths[order]
    if starts.shape[1] > 1:
        gaps = sorted_starts[:, 1:] - sorted_starts[:, :-1]
        ok = (gaps >= sorted_lengths[:, :-1]).all(axis=1)
    else:
        ok = _np.ones(starts.shape[0], dtype=bool)
    # Wrap gap, computed as (m - last) + first to stay inside uint64.
    wrap = (_np.uint64(m) - sorted_starts[:, -1]) + sorted_starts[:, 0]
    return ok & (wrap >= sorted_lengths[:, -1])


def _cluster_collisions(m: int, demands, streams: "_Streams"):
    """Cluster: one uniform arc start per instance, overlap ⇔ collision."""
    starts = streams.uniform(m, len(demands))
    lengths = _np.asarray(demands, dtype=_np.uint64)
    return ~_circular_arcs_disjoint(m, starts, lengths)


def _bins_star_collisions(m: int, demands, streams: "_Streams"):
    """Bins*: per-chunk birthday events over the reaching instances."""
    num_chunks = chunk_count(m)
    collided = _np.zeros(len(streams.keys), dtype=bool)
    for chunk in range(num_chunks):
        reaching = sum(1 for d in demands if d >= (1 << chunk))
        if reaching <= 1:
            break  # chunks only get emptier as the threshold doubles
        bins_here = 1 << (num_chunks - 1 - chunk)
        picks = streams.uniform(bins_here, reaching)
        ordered = _np.sort(picks, axis=1)
        collided |= (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
    return collided


def _cluster_star_run_lengths(demand: int) -> Tuple[List[int], int]:
    """Intended run lengths ``1, 2, ..., 2^(k-1)`` and the emitted tail.

    ``k = ⌈log₂(demand+1)⌉ = demand.bit_length()`` runs cover the
    demand; the final run is placed at full length but only its first
    ``demand - (2^(k-1) - 1)`` IDs are emitted.
    """
    k = demand.bit_length()
    lengths = [1 << j for j in range(k)]
    emitted_tail = demand - ((1 << (k - 1)) - 1)
    return lengths, emitted_tail


def _cluster_star_collisions(m: int, demands, streams: "_Streams"):
    """Cluster*: vectorized run placement, then the arcs-disjoint test.

    Returns ``(collided, fallback)``; rows flagged in ``fallback`` hit
    the placement-round cap (possible only under extreme fragmentation,
    which the planner's ``k·2^k ≤ m`` gate makes astronomically rare)
    and must be replayed through the python game loop.
    """
    trials = len(streams.keys)
    m_u64 = _np.uint64(m)
    fallback = _np.zeros(trials, dtype=bool)
    arc_start_columns = []
    arc_lengths: List[int] = []
    for demand in demands:
        lengths, emitted_tail = _cluster_star_run_lengths(demand)
        placed: List[Tuple[object, int]] = []
        for index, length in enumerate(lengths):
            length_u64 = _np.uint64(length)
            starts = streams.uniform(m, 1)[:, 0]
            for _ in range(_MAX_PLACEMENT_ROUNDS):
                bad = _np.zeros(trials, dtype=bool)
                for prev_starts, prev_length in placed:
                    forward = (starts + (m_u64 - prev_starts)) % m_u64
                    backward = (prev_starts + (m_u64 - starts)) % m_u64
                    bad |= (forward < _np.uint64(prev_length)) | (
                        backward < length_u64
                    )
                bad_rows = _np.nonzero(bad)[0]
                if bad_rows.size == 0:
                    break
                starts[bad_rows] = streams.uniform(m, 1, bad_rows)[:, 0]
            else:
                # Same trials keep failing: their free space is too
                # fragmented for rejection sampling (the python engine
                # would shrink the run). Replay them exactly.
                fallback |= bad
            placed.append((starts, length))
            arc_start_columns.append(starts)
            arc_lengths.append(
                length if index < len(lengths) - 1 else emitted_tail
            )
    starts_matrix = _np.stack(arc_start_columns, axis=1)
    lengths_array = _np.asarray(arc_lengths, dtype=_np.uint64)
    collided = ~_circular_arcs_disjoint(m, starts_matrix, lengths_array)
    return collided, fallback


# ---------------------------------------------------------------------------
# Planning and execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorPlan:
    """A picklable recipe for counting collisions of one (spec, m, D).

    Built by :func:`plan_profile`; executed with
    :meth:`count_collisions`. The plan is pure data, so worker
    processes can reconstruct results bit-identically.
    """

    kind: str  # "subsets" | "cluster" | "bins_star" | "cluster_star"
    spec: str
    m: int
    demands: Tuple[int, ...]
    #: Subsets kernel only: the sampling universe (m, or ⌊m/k⌋ bins)
    #: and how many distinct elements each instance picks from it.
    universe: int = 0
    sizes: Tuple[int, ...] = ()

    def _row_width(self) -> int:
        """Array elements one trial needs — sizes the internal chunks."""
        if self.kind == "subsets":
            return max(1, sum(self.sizes))
        if self.kind == "cluster":
            return max(1, len(self.demands))
        if self.kind == "bins_star":
            return max(1, len(self.demands) * chunk_count(self.m))
        return max(1, sum(d.bit_length() for d in self.demands))

    def count_collisions(
        self, seed: int, offset: int, stride: int, trials: int
    ) -> int:
        """Collision count over trials ``offset, offset+stride, ... < trials``.

        A pure function of ``seed`` and the trial indices: chunking is
        internal and workers may split the index set any way they like.
        """
        indices = _np.arange(offset, trials, stride, dtype=_np.int64)
        if indices.size == 0:
            return 0
        chunk = max(256, _CHUNK_ELEMENTS // self._row_width())
        total = 0
        for low in range(0, indices.size, chunk):
            total += self._count_chunk(seed, indices[low:low + chunk])
        return total

    def _count_chunk(self, seed: int, trial_indices) -> int:
        streams = _Streams(trial_keys(seed, trial_indices))
        if self.kind == "subsets":
            collided = _subsets_collisions(self.universe, self.sizes, streams)
        elif self.kind == "cluster":
            collided = _cluster_collisions(self.m, self.demands, streams)
        elif self.kind == "bins_star":
            collided = _bins_star_collisions(self.m, self.demands, streams)
        elif self.kind == "cluster_star":
            collided, fallback = _cluster_star_collisions(
                self.m, self.demands, streams
            )
            if fallback.any():
                collided = self._replay_fallback(
                    seed, trial_indices, collided, fallback
                )
        else:  # pragma: no cover - plans are built by plan_profile only
            raise ConfigurationError(f"unknown vector plan kind {self.kind!r}")
        return int(_np.count_nonzero(collided))

    def _replay_fallback(self, seed, trial_indices, collided, fallback):
        """Replay placement-capped trials through the python game path."""
        from repro.simulation.batch import (
            ObliviousFactory,
            SpecFactory,
            play_trial,
        )

        factory = SpecFactory(self.spec)
        adversary_factory = ObliviousFactory(DemandProfile(self.demands))
        collided = collided.copy()
        for row in _np.nonzero(fallback)[0]:
            collided[row] = play_trial(
                factory,
                self.m,
                adversary_factory,
                seed,
                int(trial_indices[row]),
                stop_on_collision=False,
                batch=True,
            )
        return collided


def plan_profile(
    spec: str, m: int, profile: DemandProfile
) -> Optional[VectorPlan]:
    """Build a :class:`VectorPlan` for ``(spec, m, profile)``, or ``None``.

    ``None`` means "use the python engine": NumPy missing, the spec is
    outside the five vectorized families, the universe exceeds uint64
    headroom, or the profile sits in a regime the kernels do not model
    (overflowing bins, demands beyond the Bins* schedule, rejection
    densities past the gates). The decision is deterministic in the
    arguments, so parent and worker processes always agree.
    """
    if _np is None or not 1 <= m <= _MAX_UNIVERSE:
        return None
    demands = tuple(profile.demands)
    if not demands or max(demands) > m:
        return None
    parts = spec.strip().lower().split(":")
    name = parts[0].replace("*", "_star")
    args = parts[1:]
    if name == "random" and not args:
        # Whole-row rejection needs acceptance ~exp(-d²/2m) per row.
        if any(d * d > 4 * m for d in demands):
            return None
        return VectorPlan(
            "subsets", spec, m, demands, universe=m, sizes=demands
        )
    if name == "bins" and len(args) == 1:
        try:
            k = int(args[0])
        except ValueError:
            return None
        if not 1 <= k <= m:
            return None
        num_bins = m // k
        # The shared-bin ⇔ collision reduction only holds while every
        # instance stays inside the binned region (no leftover tail).
        if any(d > num_bins * k for d in demands):
            return None
        sizes = tuple(-(-d // k) for d in demands)
        if any(b * b > 4 * num_bins for b in sizes):
            return None
        return VectorPlan(
            "subsets", spec, m, demands, universe=num_bins, sizes=sizes
        )
    if name == "cluster" and not args:
        # Total demand beyond m would exhaust instances mid-trial; the
        # game loop owns those semantics.
        if sum(demands) > m:
            return None
        return VectorPlan("cluster", spec, m, demands)
    if name == "bins_star" and not args:
        if m < 4:
            return None
        if max(demands) > (1 << chunk_count(m)) - 1:
            return None  # beyond the paper's schedule: python fallback
        return VectorPlan("bins_star", spec, m, demands)
    if name == "cluster_star" and not args:
        # The paper's own regime (d ≲ m/(2 log m)): placement rejection
        # keeps acceptance >= 1/2 per draw when k·2^k <= m.
        if any(
            d.bit_length() * (1 << d.bit_length()) > m for d in demands
        ):
            return None
        return VectorPlan("cluster_star", spec, m, demands)
    return None
