"""The estimation seam: :class:`SimulationPlan`, engines, adaptive stopping.

Monte-Carlo estimation used to thread three hand-rolled go-faster
knobs (``engine=``, ``workers=``, ``batch=``) through every call site.
This module replaces that with one frozen policy object plus a
registry of pluggable execution backends:

* :class:`SimulationPlan` — *how* to estimate: which engine, how many
  worker processes, execution granularity, and — new — *to what
  precision*. With ``target_halfwidth`` set, trials run in seeded
  rounds and stop early at the first checkpoint whose Wilson-CI
  half-width is small enough (or at the trial cap).
* :class:`Engine` / :class:`EngineRegistry` — the protocol behind
  which the python game-loop engine, the batched set-operation engine,
  and the NumPy vectorized engine self-register
  (:mod:`repro.simulation.engines`). Future backends (GPU,
  distributed) plug in here instead of growing another kwarg.
* :func:`run_plan` — the driver: executes a :class:`TrialTask` under a
  plan and returns an :class:`~repro.simulation.stats.Estimate`.

Determinism contract
--------------------

For a fixed plan and root seed the returned estimate is **bit
identical** regardless of ``workers=`` count, ``round_size``, or any
internal chunking, because

1. every trial's outcome is a pure function of ``(root seed, trial
   index)`` (PRs 1–2 established this for all three engines), so
   collision counts over an index range are partition-invariant; and
2. adaptive stopping is evaluated only at *checkpoints* — a trial-count
   schedule derived purely from the plan's precision fields
   (``min_trials`` doubling up to the cap), never from how trials were
   scheduled onto rounds or workers.

Changing the engine between the python/batched pair and ``numpy``
changes the RNG universe (documented in
:mod:`repro.simulation.vectorized`); everything else is execution
detail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.simulation.stats import Estimate, wilson_interval


@dataclass(frozen=True)
class SimulationPlan:
    """A frozen estimation policy: execution backend + precision target.

    Execution fields (never change the estimate):

    * ``engine`` — registry name of the backend (``python``,
      ``batched``, ``numpy``, …).
    * ``workers`` — process count per round (``None``/``1`` serial,
      ``0`` one per CPU).
    * ``batch`` — let the python engine use the batched oblivious
      fast path where it applies (bit-identical either way).
    * ``round_size`` — trials per engine dispatch inside a checkpoint
      segment (``None`` = one dispatch per segment). Memory/latency
      knob only.

    Sampling fields (define the estimate):

    * ``seed`` — root seed when the call site does not supply one;
      every trial derives from ``(seed, trial index)``.
    * ``confidence`` — Wilson interval confidence level.
    * ``target_halfwidth`` — adaptive mode: stop at the first
      checkpoint where the Wilson half-width is ≤ this (``None`` =
      fixed mode, run the cap exactly). The returned interval is the
      plain Wilson CI at the stopped sample size; sequential looking
      makes its realized coverage slightly below nominal (optional
      stopping over the handful of geometric checkpoints) — consumers
      needing strict coverage should add slack or use fixed mode.
    * ``min_trials`` / ``growth`` — the checkpoint schedule:
      ``min_trials``, then geometric growth by ``growth``, capped.
    * ``max_trials`` — the trial cap. Call sites may pass their own
      ``trials=``; the effective cap is the smaller of the two.
    """

    engine: str = "python"
    workers: Optional[int] = None
    batch: bool = True
    round_size: Optional[int] = None
    seed: int = 0
    confidence: float = 0.95
    target_halfwidth: Optional[float] = None
    min_trials: int = 128
    growth: float = 2.0
    max_trials: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.engine or not isinstance(self.engine, str):
            raise ConfigurationError(
                f"engine must be a non-empty string, got {self.engine!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.round_size is not None and self.round_size < 1:
            raise ConfigurationError(
                f"round_size must be >= 1, got {self.round_size}"
            )
        if not 0 < self.confidence < 1:
            raise ConfigurationError(
                f"confidence must be in (0,1), got {self.confidence}"
            )
        if self.target_halfwidth is not None and not (
            0 < self.target_halfwidth < 1
        ):
            raise ConfigurationError(
                "target_halfwidth must be in (0,1), got "
                f"{self.target_halfwidth}"
            )
        if self.min_trials < 1:
            raise ConfigurationError(
                f"min_trials must be >= 1, got {self.min_trials}"
            )
        if not self.growth > 1:
            raise ConfigurationError(
                f"growth must be > 1, got {self.growth}"
            )
        if self.max_trials is not None and self.max_trials < 1:
            raise ConfigurationError(
                f"max_trials must be >= 1, got {self.max_trials}"
            )

    @property
    def adaptive(self) -> bool:
        """Whether this plan stops on precision rather than count."""
        return self.target_halfwidth is not None

    def evolve(self, **changes: Any) -> "SimulationPlan":
        """A copy of the plan with ``changes`` applied (it is frozen)."""
        return replace(self, **changes)

    def resolve_cap(self, trials: Optional[int] = None) -> int:
        """The effective trial cap for a call site asking for ``trials``.

        The smaller of the call site's ``trials`` and the plan's
        ``max_trials``; at least one of the two must be set.
        """
        if trials is None and self.max_trials is None:
            raise ConfigurationError(
                "no trial cap: pass trials= or set SimulationPlan.max_trials"
            )
        if trials is None:
            cap = self.max_trials
        elif self.max_trials is None:
            cap = trials
        else:
            cap = min(trials, self.max_trials)
        if cap < 1:
            raise ConfigurationError(f"trials must be >= 1, got {cap}")
        return cap

    def checkpoints(self, cap: int) -> Iterator[int]:
        """Cumulative trial counts at which the stop rule is evaluated.

        Fixed mode yields ``cap`` once. Adaptive mode yields
        ``min(min_trials, cap)`` then grows geometrically by
        ``growth`` up to ``cap``. The schedule depends only on plan
        fields and ``cap`` — never on ``workers`` or ``round_size`` —
        which is what makes adaptive estimates split-invariant.
        """
        if not self.adaptive:
            yield cap
            return
        count = min(self.min_trials, cap)
        while True:
            yield count
            if count >= cap:
                return
            count = min(cap, max(count + 1, math.ceil(count * self.growth)))


@dataclass(frozen=True)
class TrialTask:
    """One estimation workload: what the engines execute.

    ``factory(m, rng)`` builds a generator instance;
    ``adversary_factory(rng)`` builds the (stateful) adversary for one
    trial. Both must pickle for cross-process execution — see the
    shims in :mod:`repro.simulation.batch`.
    """

    factory: Callable[..., Any]
    m: int
    adversary_factory: Callable[..., Any]
    stop_on_collision: bool = True
    max_steps: Optional[int] = None


@dataclass(frozen=True)
class RoundResult:
    """Collision count of one executed round of trials.

    Covers trial indices ``[start, stop)``; a pure function of the
    task, the root seed, and those indices.
    """

    start: int
    stop: int
    collisions: int

    @property
    def trials(self) -> int:
        """Trials this slice covers (``stop - start``)."""
        return self.stop - self.start


class Engine:
    """Protocol for estimation backends.

    An engine turns a contiguous range of trial indices into
    :class:`RoundResult` chunks. Implementations must guarantee that
    each trial's collision outcome is a pure function of ``(seed,
    trial index)`` — that purity is what the plan layer's determinism
    contract rests on.
    """

    #: Registry name; set by subclasses.
    name: str = ""

    def run_rounds(
        self,
        plan: SimulationPlan,
        task: TrialTask,
        seed: int,
        start: int,
        stop: int,
    ) -> Iterator[RoundResult]:
        """Yield collision counts covering trials ``[start, stop)``."""
        raise NotImplementedError


class EngineRegistry:
    """Name → :class:`Engine` mapping with helpful failure messages."""

    def __init__(self) -> None:
        self._engines: Dict[str, Engine] = {}

    def register(self, engine: Engine) -> Engine:
        """Register ``engine`` under ``engine.name`` (idempotent)."""
        if not engine.name:
            raise ConfigurationError("engine must define a non-empty name")
        self._engines[engine.name] = engine
        return engine

    def get(self, name: str) -> Engine:
        """The engine registered as ``name``; ConfigurationError if unknown."""
        self._ensure_builtin_engines()
        try:
            return self._engines[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown engine {name!r}; expected one of "
                f"{', '.join(self.names())}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered engine names, in registration order."""
        self._ensure_builtin_engines()
        return tuple(self._engines)

    def _ensure_builtin_engines(self) -> None:
        # The built-in engines self-register on import; importing here
        # (rather than at module load) avoids a plan <-> batch cycle.
        import repro.simulation.engines  # noqa: F401


#: The process-wide default registry the built-in engines register into.
REGISTRY = EngineRegistry()


def register_engine(engine: Engine) -> Engine:
    """Register ``engine`` in the default registry (returns it)."""
    return REGISTRY.register(engine)


def get_engine(name: str) -> Engine:
    """Look up an engine by name in the default registry."""
    return REGISTRY.get(name)


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, registration order."""
    return REGISTRY.names()


def fold_legacy_kwargs(
    base: SimulationPlan,
    overrides: Dict[str, Any],
    context: str,
    stacklevel: int = 3,
) -> SimulationPlan:
    """Fold deprecated execution kwargs into ``base``, warning once.

    The single implementation behind every pre-plan shim
    (``estimate_*``'s ``workers=/batch=/engine=`` and
    ``ExperimentConfig``'s ``workers=/engine=``), so the deprecation
    wording and folding semantics cannot drift apart during the
    removal window. ``overrides`` holds only the kwargs the caller
    actually passed.
    """
    if not overrides:
        return base
    import warnings

    warnings.warn(
        f"{context} is deprecated; pass plan=SimulationPlan("
        + ", ".join(f"{key}={value!r}" for key, value in overrides.items())
        + ") instead",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )
    return base.evolve(**overrides)


def run_plan(
    plan: SimulationPlan,
    task: TrialTask,
    seed: Optional[int] = None,
    trials: Optional[int] = None,
    confidence: Optional[float] = None,
) -> Estimate:
    """Execute ``task`` under ``plan`` and return the estimate.

    ``seed``, ``trials`` (cap) and ``confidence`` default to the
    plan's own fields; call sites that sweep seeds or budgets pass
    them explicitly without rebuilding plans.

    Fixed mode runs exactly the cap. Adaptive mode consumes the
    engine's round stream, evaluating the Wilson interval whenever a
    round lands exactly on a checkpoint of the plan's schedule, and
    stops at the first one whose half-width is ≤
    ``plan.target_halfwidth`` (or at the cap). Either way the result
    is bit-identical for any ``workers``/``round_size`` split — see
    the module docstring for why.

    Statistical caveat: the returned CI is the ordinary Wilson
    interval at the stopped ``n`` with no sequential correction, so
    under adaptive stopping its realized coverage sits a little below
    the nominal ``confidence`` (optional-stopping bias over the ≤
    ``log_growth(cap/min_trials)`` looks). The experiments' straddle
    checks carry explicit slack for exactly this reason.

    The engine is asked for the whole ``[0, cap)`` range in one
    ``run_rounds`` call (so it can hold worker pools open across
    rounds) and its generator is closed on early stop. Engine rounds
    must tile ``[0, cap)`` contiguously in index order with sane
    collision counts — violations raise :class:`ConfigurationError`
    instead of corrupting the estimate. Aligning rounds to
    ``plan.checkpoints(stop)`` boundaries is softer: an engine that
    straddles a checkpoint merely loses that early-stop opportunity,
    because evaluation only ever happens on a complete ``[0, c)``
    prefix (and always happens at the cap, which every schedule ends
    on).
    """
    root = plan.seed if seed is None else seed
    level = plan.confidence if confidence is None else confidence
    cap = plan.resolve_cap(trials)
    engine = get_engine(plan.engine)
    checkpoints = set(plan.checkpoints(cap))
    collisions = 0
    done = 0
    covered = 0
    stopped_early = False
    low = high = 0.0
    rounds = engine.run_rounds(plan, task, root, 0, cap)
    try:
        for round_result in rounds:
            if (
                round_result.start != covered
                or round_result.stop <= round_result.start
                or round_result.stop > cap
                or not 0 <= round_result.collisions <= round_result.trials
            ):
                raise ConfigurationError(
                    f"engine {plan.engine!r} yielded an invalid round "
                    f"{round_result!r} at covered={covered}, cap={cap}: "
                    "rounds must tile [0, cap) contiguously with "
                    "0 <= collisions <= trials"
                )
            covered = round_result.stop
            collisions += round_result.collisions
            if round_result.stop not in checkpoints:
                continue
            done = round_result.stop
            low, high = wilson_interval(collisions, done, level)
            if (
                plan.target_halfwidth is not None
                and (high - low) / 2.0 <= plan.target_halfwidth
            ):
                stopped_early = True
                break
    finally:
        close = getattr(rounds, "close", None)
        if close is not None:
            close()
    if not stopped_early and covered != cap:
        raise ConfigurationError(
            f"engine {plan.engine!r} covered only [0, {covered}) of the "
            f"requested [0, {cap}); run_rounds must span the whole range"
        )
    return Estimate(
        probability=collisions / done,
        trials=done,
        successes=collisions,
        ci_low=low,
        ci_high=high,
        confidence=level,
    )


def iter_rounds(
    plan: SimulationPlan,
    task: TrialTask,
    seed: Optional[int] = None,
    trials: Optional[int] = None,
) -> Iterator[RoundResult]:
    """Stream the raw rounds a plan would execute (no stop rule).

    Diagnostic/streaming hook: yields every round of the full cap in
    index order, regardless of ``target_halfwidth``. Summing the
    collision counts reproduces the fixed-mode estimate exactly.
    """
    root = plan.seed if seed is None else seed
    cap = plan.resolve_cap(trials)
    engine = get_engine(plan.engine)
    for round_result in engine.run_rounds(plan, task, root, 0, cap):
        yield round_result


__all__ = [
    "SimulationPlan",
    "TrialTask",
    "RoundResult",
    "Engine",
    "EngineRegistry",
    "REGISTRY",
    "register_engine",
    "get_engine",
    "available_engines",
    "run_plan",
    "iter_rounds",
    "fold_legacy_kwargs",
]
