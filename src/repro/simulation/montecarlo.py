"""Monte-Carlo estimation of collision probabilities.

Where no closed form exists (``Cluster*``, arbitrary adaptive
adversaries) we estimate ``p_A`` by playing many independent, seeded
games. Estimates carry Wilson-score confidence intervals, which behave
sensibly at the extreme frequencies (0 or all collisions) these
experiments regularly produce.

Trial execution lives in :mod:`repro.simulation.batch`: pass
``workers=N`` to shard the trials across ``N`` processes and/or
``batch=True`` to use the batched oblivious fast path. Both options
are pure go-faster knobs — the returned :class:`Estimate` is
bit-identical for every combination, because each trial's outcome
depends only on the root seed and its trial index.

``engine="numpy"`` selects the vectorized trial kernels of
:mod:`repro.simulation.vectorized`, which simulate whole blocks of
oblivious trials as array operations (workloads the kernels cannot
express run the python path unchanged). The NumPy engine samples the
same per-trial collision distribution but from a *separate RNG
universe*: estimates are reproducible per engine — and still
bit-identical at any ``workers=`` count — yet the two engines' numbers
differ by ordinary Monte-Carlo noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.adversary.base import Adversary
from repro.adversary.profiles import DemandProfile
from repro.errors import ConfigurationError
from repro.simulation.batch import ObliviousFactory, run_trials
from repro.simulation.game import InstanceFactory


@dataclass(frozen=True)
class Estimate:
    """A binomial proportion estimate with a confidence interval."""

    probability: float
    trials: int
    successes: int
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.probability:.4g} "
            f"[{self.ci_low:.4g}, {self.ci_high:.4g}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0,1), got {confidence}"
        )
    # Normal quantile via the Acklam-style inverse error approximation:
    # for the common confidences this is plenty accurate.
    z = _normal_quantile(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(
            phat * (1 - phat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    low = max(0.0, center - half)
    high = min(1.0, center + half)
    # Exact boundary cases: float dust must not push the interval off
    # the observed proportion.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return low, high


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Beasley-Springer-Moro)."""
    if not 0 < p < 1:
        raise ConfigurationError("quantile argument must be in (0,1)")
    a = [
        -3.969683028665376e01, 2.209460984245205e02,
        -2.759285104469687e02, 1.383577518672690e02,
        -3.066479806614716e01, 2.506628277459239e00,
    ]
    b = [
        -5.447609879822406e01, 1.615858368580409e02,
        -1.556989798598866e02, 6.680131188771972e01,
        -1.328068155288572e01,
    ]
    c = [
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e00, -2.549732539343734e00,
        4.374664141464968e00, 2.938163982698783e00,
    ]
    d = [
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e00, 3.754408661907416e00,
    ]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(
        ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
    ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)


AdversaryFactory = Callable[[random.Random], Adversary]


def estimate_collision_probability(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
    trials: int,
    seed: int = 0,
    confidence: float = 0.95,
    stop_on_collision: bool = True,
    max_steps: Optional[int] = None,
    workers: Optional[int] = None,
    batch: bool = False,
    engine: str = "python",
) -> Estimate:
    """Play ``trials`` independent games; return the collision frequency.

    Each trial gets a fresh adversary (they are stateful) and a derived
    seed, so the whole estimate is reproducible from ``seed``.

    ``workers=N`` shards the trials across ``N`` processes (``0`` means
    one per CPU); the factories must then be picklable — see the shims
    in :mod:`repro.simulation.batch`. ``batch=True`` enables the
    batched fast path for batchable adversaries (currently sequential
    :class:`~repro.simulation.batch.ObliviousFactory` instances; others
    fall back to the game loop). Estimates are bit-identical for every
    ``workers``/``batch`` combination.

    ``engine="numpy"`` runs batchable oblivious workloads through the
    vectorized kernels instead — typically an order of magnitude
    faster, reproducible from ``seed`` at any worker count, but a
    separate RNG universe whose estimates differ from the python
    engine's by Monte-Carlo noise.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    collisions = run_trials(
        factory,
        m,
        adversary_factory,
        trials,
        seed=seed,
        stop_on_collision=stop_on_collision,
        max_steps=max_steps,
        workers=workers,
        batch=batch,
        engine=engine,
    )
    low, high = wilson_interval(collisions, trials, confidence)
    return Estimate(
        probability=collisions / trials,
        trials=trials,
        successes=collisions,
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )


def estimate_profile_collision(
    factory: InstanceFactory,
    m: int,
    profile: DemandProfile,
    trials: int,
    seed: int = 0,
    confidence: float = 0.95,
    workers: Optional[int] = None,
    batch: bool = True,
    engine: str = "python",
) -> Estimate:
    """Estimate ``p_A(D)`` for an oblivious profile ``D``.

    Oblivious sequential games are batchable, so ``batch`` defaults to
    ``True`` here: each instance emits its whole demand vector via
    ``generate_batch`` instead of stepping the game loop. The estimate
    is bit-identical either way. Pass ``engine="numpy"`` to simulate
    whole trial blocks as array operations (see
    :func:`estimate_collision_probability` for the reproducibility
    semantics).
    """
    return estimate_collision_probability(
        factory,
        m,
        ObliviousFactory(profile),
        trials=trials,
        seed=seed,
        confidence=confidence,
        stop_on_collision=False,
        workers=workers,
        batch=batch,
        engine=engine,
    )
