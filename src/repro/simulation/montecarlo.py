"""Monte-Carlo estimation of collision probabilities.

Where no closed form exists (``Cluster*``, arbitrary adaptive
adversaries) we estimate ``p_A`` by playing many independent, seeded
games. Estimates carry Wilson-score confidence intervals, which behave
sensibly at the extreme frequencies (0 or all collisions) these
experiments regularly produce.

This module is a thin façade over the estimation seam of
:mod:`repro.simulation.plan`: *how* trials execute — which engine
(python game loop, batched set ops, NumPy kernels), how many worker
processes, what precision to stop at — is described by one frozen
:class:`~repro.simulation.plan.SimulationPlan` instead of loose
keyword arguments:

    plan = SimulationPlan(engine="numpy", workers=0,
                          target_halfwidth=0.01)
    estimate_profile_collision(factory, m, profile,
                               trials=100_000, seed=7, plan=plan)

With ``target_halfwidth`` set, sampling stops at the first checkpoint
whose Wilson half-width is small enough (``trials`` then acts as the
cap); without it, exactly ``trials`` games run — matching the historic
behaviour bit for bit. Either way the estimate is identical for any
``workers=``/round split of the same plan; only switching to the
``numpy`` engine changes the RNG universe (same distribution,
different noise).

The pre-plan keyword arguments ``workers=``, ``batch=`` and
``engine=`` still work but emit a :class:`DeprecationWarning`; they
will be removed one release after the plan API landed.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.adversary.base import Adversary
from repro.adversary.profiles import DemandProfile
from repro.simulation.batch import (
    ObliviousFactory,
    _pickle_obstacle,
    _warn_unpicklable,
    resolve_workers,
)
from repro.simulation.game import InstanceFactory
from repro.simulation.plan import (
    SimulationPlan,
    TrialTask,
    fold_legacy_kwargs,
    run_plan,
)
from repro.simulation.stats import (  # noqa: F401 - re-exports
    Estimate,
    _normal_quantile,
    wilson_interval,
)

AdversaryFactory = Callable[[random.Random], Adversary]

#: Sentinel distinguishing "not passed" from an explicit value for the
#: deprecated go-faster kwargs.
_UNSET = object()

_DEFAULT_PLAN = SimulationPlan()


def _effective_plan(
    plan: Optional[SimulationPlan],
    workers: object,
    batch: object,
    engine: object,
    stacklevel: int = 3,
) -> SimulationPlan:
    """Fold the deprecated kwargs into a plan, warning when they appear.

    ``stacklevel`` must point the warning at the *user's* call site.
    The default fits a direct caller of the public ``estimate_*``
    functions; a wrapper either passes one more frame per layer of
    indirection or — like :func:`estimate_profile_collision` — folds
    the kwargs itself and hands its delegate a finished ``plan``.
    """
    base = _DEFAULT_PLAN if plan is None else plan
    overrides = {}
    if workers is not _UNSET:
        overrides["workers"] = workers
    if batch is not _UNSET:
        overrides["batch"] = batch
    if engine is not _UNSET:
        overrides["engine"] = engine
    return fold_legacy_kwargs(
        base,
        overrides,
        "the workers=/batch=/engine= keyword argument form",
        stacklevel=stacklevel,
    )


def estimate_collision_probability(
    factory: InstanceFactory,
    m: int,
    adversary_factory: AdversaryFactory,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    confidence: Optional[float] = None,
    stop_on_collision: bool = True,
    max_steps: Optional[int] = None,
    workers: object = _UNSET,
    batch: object = _UNSET,
    engine: object = _UNSET,
    plan: Optional[SimulationPlan] = None,
    _stacklevel: int = 3,
) -> Estimate:
    """Play seeded games under ``plan``; return the collision frequency.

    Each trial gets a fresh adversary (they are stateful) and a derived
    seed, so the whole estimate is reproducible from ``seed`` (default
    ``plan.seed``). ``trials`` caps the sample; a plan with
    ``target_halfwidth`` stops earlier once the Wilson CI is tight
    enough, while the default fixed-mode plan runs the cap exactly.

    Execution (engine choice, worker processes, batching, round size)
    belongs to the plan — see :class:`SimulationPlan`. The deprecated
    ``workers=``/``batch=``/``engine=`` keywords still fold into the
    plan with a :class:`DeprecationWarning`.
    """
    effective = _effective_plan(
        plan, workers, batch, engine, stacklevel=_stacklevel
    )
    # Downgrade unpicklable-factory plans here, where the warning can
    # still point at the caller's line (inside the engine it would
    # attribute to plan-layer internals). The engine re-probes once for
    # its own direct callers, but a downgraded plan (workers=None) is
    # never probed again, so the warning fires exactly once.
    obstacle = (
        _pickle_obstacle(factory, adversary_factory)
        if resolve_workers(effective.workers) > 1
        else None
    )
    if obstacle is not None:
        _warn_unpicklable(obstacle, stacklevel=_stacklevel)
        effective = effective.evolve(workers=None)
    task = TrialTask(
        factory=factory,
        m=m,
        adversary_factory=adversary_factory,
        stop_on_collision=stop_on_collision,
        max_steps=max_steps,
    )
    return run_plan(
        effective, task, seed=seed, trials=trials, confidence=confidence
    )


def estimate_profile_collision(
    factory: InstanceFactory,
    m: int,
    profile: DemandProfile,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    confidence: Optional[float] = None,
    workers: object = _UNSET,
    batch: object = _UNSET,
    engine: object = _UNSET,
    plan: Optional[SimulationPlan] = None,
) -> Estimate:
    """Estimate ``p_A(D)`` for an oblivious profile ``D``.

    Oblivious sequential games admit every fast path: the batched
    ``generate_batch`` trial (on by default, bit-identical to the game
    loop) and the vectorized kernels of ``plan.engine = "numpy"``. See
    :func:`estimate_collision_probability` for the plan and
    reproducibility semantics.
    """
    return estimate_collision_probability(
        factory,
        m,
        ObliviousFactory(profile),
        trials=trials,
        seed=seed,
        confidence=confidence,
        stop_on_collision=False,
        workers=workers,
        batch=batch,
        engine=engine,
        plan=plan,
        # one wrapper frame between the user and the delegate's warnings
        _stacklevel=4,
    )
