"""Write-ahead log with serialization and replay.

MiniRocks appends every mutation to a WAL before applying it to the
memtable, and truncates the log at flush. The log serializes to bytes
so crash-recovery tests can round-trip it.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import KVStoreError

#: Record kinds.
OP_PUT = 1
OP_DELETE = 2

Record = Tuple[int, bytes, bytes]  # (op, key, value) — value empty for deletes


class WriteAheadLog:
    """An append-only in-memory log of (op, key, value) records."""

    def __init__(self) -> None:
        self._records: List[Record] = []

    def __len__(self) -> int:
        return len(self._records)

    def append_put(self, key: bytes, value: bytes) -> None:
        """Log a put."""
        self._records.append((OP_PUT, key, value))

    def append_delete(self, key: bytes) -> None:
        """Log a delete."""
        self._records.append((OP_DELETE, key, b""))

    def records(self) -> Iterator[Record]:
        """All records in append order."""
        return iter(self._records)

    def truncate(self) -> None:
        """Discard the log (after the memtable it covers was flushed)."""
        self._records.clear()

    def serialize(self) -> bytes:
        """Flat binary encoding: op byte + length-prefixed key/value."""
        parts: List[bytes] = []
        for op, key, value in self._records:
            parts.append(bytes([op]))
            parts.append(len(key).to_bytes(4, "big"))
            parts.append(key)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "WriteAheadLog":
        """Rebuild a WAL from :meth:`serialize` output."""
        wal = cls()
        offset = 0
        size = len(payload)
        while offset < size:
            op = payload[offset]
            offset += 1
            if op not in (OP_PUT, OP_DELETE):
                raise KVStoreError(f"corrupt WAL: unknown op {op}")
            if offset + 4 > size:
                raise KVStoreError("corrupt WAL: truncated key length")
            key_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            key = payload[offset : offset + key_len]
            offset += key_len
            if offset + 4 > size:
                raise KVStoreError("corrupt WAL: truncated value length")
            value_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            value = payload[offset : offset + value_len]
            offset += value_len
            if len(key) != key_len or len(value) != value_len:
                raise KVStoreError("corrupt WAL: truncated record body")
            wal._records.append((op, key, value))
        return wal
