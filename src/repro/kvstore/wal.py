"""Write-ahead logging: record framing, group commit, and recovery.

Two implementations share the record vocabulary:

* :class:`WriteAheadLog` — the original in-memory list. Still used
  when a :class:`MiniRocks` runs without a storage backend; its
  ``serialize``/``deserialize`` round-trip is the legacy
  crash-recovery test seam.
* :class:`DurableWAL` — the durable, segmented log over a
  :class:`~repro.kvstore.storage.SimulatedStorage`. Records are
  framed ``seqno:8 | op:1 | klen:4 | vlen:4 | crc32:4 | key | value``
  (big-endian, CRC over everything but itself), appended to numbered
  segment files, and made durable by fsync according to a
  :class:`WriteMode`:

  - ``SYNC_EVERY_WRITE`` — fsync after every record (each write is
    durable before it is acknowledged);
  - ``BATCH`` — **group commit**: records accumulate and one fsync
    acknowledges the whole group when it reaches the adaptive batch
    size (the size doubles while groups fill on their own and halves
    when an explicit barrier drains a partial group — amortizing
    fsyncs under load without letting a trickle of writes sit
    unacknowledged forever);
  - ``NOSYNC`` — never fsync on the write path; durability arrives
    only via flush (the SST + manifest commit covers the records).

A write is **acknowledged** once its group's fsync completes —
:attr:`DurableWAL.synced_seqno` is the ack horizon, and everything
above it is buffered page-cache data a crash may tear.

Recovery (:func:`read_segments`) replays segments in index order and
validates every frame. A failed frame at the *tail* of the final
segment is a torn write: recovery stops cleanly there. A failed frame
*mid-log* (valid frames after it, or in a sealed earlier segment)
cannot be produced by a crash and raises
:class:`~repro.errors.WALCorruptionError` under ``paranoid_checks``
(without it, recovery still stops at the bad frame — conservatively
dropping the rest — but records the event on the
:class:`WALRecovery` result, which the store mirrors into
``DBStats.wal_mid_log_corruptions`` / ``wal_torn_bytes``).
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Protocol, Tuple

from repro.errors import ConfigurationError, KVStoreError, WALCorruptionError
from repro.kvstore.storage import SimulatedStorage

#: Record kinds.
OP_PUT = 1
OP_DELETE = 2

Record = Tuple[int, bytes, bytes]  # (op, key, value) — value empty for deletes


class WALStatsSink(Protocol):
    """What :class:`DurableWAL` needs from a stats object.

    Structural typing breaks the import cycle with
    :class:`~repro.kvstore.db.DBStats` (db imports wal for the log; the
    log only mirrors two counters back).
    """

    fsync_count: int
    wal_bytes: int

#: Fixed framed-record header: seqno:8 | op:1 | klen:4 | vlen:4 | crc:4.
RECORD_HEADER = 8 + 1 + 4 + 4 + 4

#: Durable WAL segment files are ``wal-<index:06d>.log``.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


class WriteMode(enum.Enum):
    """When the WAL fsyncs — the durability/throughput dial."""

    #: Never fsync on the write path; only flush makes data durable.
    NOSYNC = "nosync"
    #: Group commit: one fsync acknowledges a whole adaptive batch.
    BATCH = "batch"
    #: fsync after every record before acknowledging it.
    SYNC_EVERY_WRITE = "sync"


def encode_record(seqno: int, op: int, key: bytes, value: bytes) -> bytes:
    """Frame one record: header (with CRC32) + key + value."""
    header_sans_crc = (
        seqno.to_bytes(8, "big")
        + bytes((op,))
        + len(key).to_bytes(4, "big")
        + len(value).to_bytes(4, "big")
    )
    crc = zlib.crc32(value, zlib.crc32(key, zlib.crc32(header_sans_crc)))
    return header_sans_crc + crc.to_bytes(4, "big") + key + value


def decode_record_at(
    payload: bytes, offset: int
) -> Tuple[int, int, bytes, bytes, int]:
    """Decode the record at ``offset``; return
    ``(seqno, op, key, value, next_offset)``.

    Raises :class:`~repro.errors.WALCorruptionError` on any framing
    problem. Length prefixes are bounded against the remaining payload
    *before* slicing (mirroring the RPC layer's oversized-prefix
    rejection), so a torn or hostile length field can never trigger a
    huge allocation or a silently-short slice.
    """
    size = len(payload)
    if offset + RECORD_HEADER > size:
        raise WALCorruptionError(
            f"truncated record header at byte {offset}"
        )
    seqno = int.from_bytes(payload[offset : offset + 8], "big")
    op = payload[offset + 8]
    if op not in (OP_PUT, OP_DELETE):
        raise WALCorruptionError(f"unknown op {op} at byte {offset}")
    key_len = int.from_bytes(payload[offset + 9 : offset + 13], "big")
    value_len = int.from_bytes(payload[offset + 13 : offset + 17], "big")
    crc = int.from_bytes(payload[offset + 17 : offset + 21], "big")
    body = offset + RECORD_HEADER
    if key_len > size - body:
        raise WALCorruptionError(
            f"key length {key_len} exceeds remaining payload at byte "
            f"{offset}"
        )
    if value_len > size - body - key_len:
        raise WALCorruptionError(
            f"value length {value_len} exceeds remaining payload at "
            f"byte {offset}"
        )
    key = payload[body : body + key_len]
    value = payload[body + key_len : body + key_len + value_len]
    header_sans_crc = payload[offset : offset + 17]
    expected = zlib.crc32(
        value, zlib.crc32(key, zlib.crc32(header_sans_crc))
    )
    if crc != expected:
        raise WALCorruptionError(
            f"checksum mismatch at byte {offset} "
            f"(stored {crc:#010x}, computed {expected:#010x})"
        )
    return seqno, op, key, value, body + key_len + value_len


def segment_name(index: int) -> str:
    """The on-disk name of segment ``index`` (zero-padded, sortable)."""
    return f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def segment_index(name: str) -> int:
    """Parse the index out of a segment file name."""
    stem = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise KVStoreError(f"not a WAL segment name: {name!r}") from None


class WriteAheadLog:
    """An append-only in-memory log of (op, key, value) records."""

    def __init__(self) -> None:
        self._records: List[Record] = []

    def __len__(self) -> int:
        return len(self._records)

    def append_put(self, key: bytes, value: bytes) -> None:
        """Log a put."""
        self._records.append((OP_PUT, key, value))

    def append_delete(self, key: bytes) -> None:
        """Log a delete."""
        self._records.append((OP_DELETE, key, b""))

    def records(self) -> Iterator[Record]:
        """All records in append order."""
        return iter(self._records)

    def truncate(self) -> None:
        """Discard the log (after the memtable it covers was flushed)."""
        self._records.clear()

    def serialize(self) -> bytes:
        """Flat binary encoding: op byte + length-prefixed key/value."""
        parts: List[bytes] = []
        for op, key, value in self._records:
            parts.append(bytes([op]))
            parts.append(len(key).to_bytes(4, "big"))
            parts.append(key)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, payload: bytes) -> "WriteAheadLog":
        """Rebuild a WAL from :meth:`serialize` output.

        Length prefixes are bounded against the remaining payload
        *before* slicing (a corrupt or hostile length field is
        rejected up front rather than detected after a short slice).
        """
        wal = cls()
        offset = 0
        size = len(payload)
        while offset < size:
            op = payload[offset]
            offset += 1
            if op not in (OP_PUT, OP_DELETE):
                raise KVStoreError(f"corrupt WAL: unknown op {op}")
            if offset + 4 > size:
                raise KVStoreError("corrupt WAL: truncated key length")
            key_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            if key_len > size - offset:
                raise KVStoreError(
                    f"corrupt WAL: key length {key_len} exceeds "
                    f"remaining payload ({size - offset} bytes)"
                )
            key = payload[offset : offset + key_len]
            offset += key_len
            if offset + 4 > size:
                raise KVStoreError("corrupt WAL: truncated value length")
            value_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            if value_len > size - offset:
                raise KVStoreError(
                    f"corrupt WAL: value length {value_len} exceeds "
                    f"remaining payload ({size - offset} bytes)"
                )
            value = payload[offset : offset + value_len]
            offset += value_len
            wal._records.append((op, key, value))
        return wal


class DurableWAL:
    """Segmented, checksummed, group-committed log over simulated storage.

    Parameters
    ----------
    storage:
        The fault-injecting backend.
    write_mode:
        Fsync policy (see :class:`WriteMode`).
    batch_size:
        Initial group size for ``BATCH`` mode; the adaptive size moves
        in [1, 8 x batch_size].
    segment_index / next_seqno:
        Resume coordinates (recovery hands these in; fresh logs start
        at segment 0, seqno 1).
    stats:
        Optional :class:`~repro.kvstore.db.DBStats` to mirror
        ``fsync_count``/``wal_bytes`` into.
    """

    def __init__(
        self,
        storage: SimulatedStorage,
        write_mode: WriteMode = WriteMode.BATCH,
        batch_size: int = 8,
        segment_index: int = 0,
        next_seqno: int = 1,
        stats: Optional[WALStatsSink] = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError("wal batch_size must be >= 1")
        self._storage = storage
        self.write_mode = write_mode
        self._initial_batch = batch_size
        self._max_batch = batch_size * 8
        #: Current group-commit target (BATCH mode only).
        self.adaptive_batch_size = batch_size
        self.segment_index = segment_index
        #: Last seqno appended (buffered or synced).
        self.last_seqno = next_seqno - 1
        #: Last seqno whose group fsync completed — the ack horizon.
        self.synced_seqno = self.last_seqno
        #: Records appended since the last fsync (the open group).
        self.pending_records = 0
        self.fsync_count = 0
        self.wal_bytes = 0
        self._stats = stats

    # -- the write path -----------------------------------------------------

    def append(self, op: int, key: bytes, value: bytes) -> int:
        """Append one record; returns its seqno.

        Under ``SYNC_EVERY_WRITE`` the record is durable on return;
        under ``BATCH`` it becomes durable when its group commits
        (watch :attr:`synced_seqno`); under ``NOSYNC`` it is buffered
        only.
        """
        seqno = self.last_seqno + 1
        record = encode_record(seqno, op, key, value)
        self._storage.append(
            segment_name(self.segment_index), record, label="wal-append"
        )
        self.last_seqno = seqno
        self.pending_records += 1
        self.wal_bytes += len(record)
        if self._stats is not None:
            self._stats.wal_bytes += len(record)
        if self.write_mode is WriteMode.SYNC_EVERY_WRITE:
            self._fsync()
        elif (
            self.write_mode is WriteMode.BATCH
            and self.pending_records >= self.adaptive_batch_size
        ):
            # Group commit: the batch filled on its own — writes are
            # arriving faster than fsyncs, so amortize further.
            self._fsync()
            self.adaptive_batch_size = min(
                self.adaptive_batch_size * 2, self._max_batch
            )
        return seqno

    def append_put(self, key: bytes, value: bytes) -> int:
        """Append a PUT record; returns its sequence number."""
        return self.append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> int:
        """Append a DELETE record; returns its sequence number."""
        return self.append(OP_DELETE, key, b"")

    def sync(self) -> None:
        """Explicit durability barrier: commit the open group now.

        In ``BATCH`` mode an explicit barrier draining a *partial*
        group is the signal that writes arrive slower than the batch
        target assumes — the adaptive size halves (floor 1) so acks
        stop lagging a trickle of writes.
        """
        if self.pending_records == 0:
            return
        if (
            self.write_mode is WriteMode.BATCH
            and self.pending_records < self.adaptive_batch_size
        ):
            self.adaptive_batch_size = max(
                self.adaptive_batch_size // 2, 1
            )
        self._fsync()

    def _fsync(self) -> None:
        self._storage.fsync(
            segment_name(self.segment_index), label="fsync"
        )
        self.fsync_count += 1
        if self._stats is not None:
            self._stats.fsync_count += 1
        self.synced_seqno = self.last_seqno
        self.pending_records = 0

    # -- segment lifecycle --------------------------------------------------

    def rotate(self) -> int:
        """Seal the active segment and direct writes at a fresh one.

        Called at flush: the sealed segment's records are about to be
        covered by an SST + manifest commit. Under ``BATCH``/
        ``SYNC_EVERY_WRITE`` the open group commits first (the sealed
        segment must not carry unsynced acked data); ``NOSYNC`` seals
        as-is — the manifest commit, not the WAL, is its durability.
        Returns the new active segment index (the manifest's WAL
        floor once the flush commits).
        """
        if self.write_mode is not WriteMode.NOSYNC:
            if self._storage.exists(segment_name(self.segment_index)):
                self.sync()
            else:
                self.synced_seqno = self.last_seqno
                self.pending_records = 0
        else:
            # The open group seals with the segment; its records'
            # durability is the manifest commit that follows, so don't
            # advance the ack horizon — but a later explicit sync()
            # must not try to fsync the old (or a not-yet-created)
            # segment for them.
            self.pending_records = 0
        self.segment_index += 1
        return self.segment_index

    def truncate_below(self, floor: int) -> int:
        """Delete sealed segments with index < ``floor`` (their records
        are covered by a committed manifest). Returns segments removed."""
        removed = 0
        for name in self._storage.list(SEGMENT_PREFIX):
            if segment_index(name) < floor:
                self._storage.delete(name, label="wal-truncate")
                removed += 1
        return removed


@dataclass
class WALRecovery:
    """What :func:`read_segments` found."""

    #: Replayable records, in seqno order: (seqno, op, key, value).
    records: List[Tuple[int, int, bytes, bytes]] = field(
        default_factory=list
    )
    #: Segment indices scanned, ascending.
    segments: List[int] = field(default_factory=list)
    #: Bytes dropped at a torn tail (0 for a clean log).
    torn_bytes: int = 0
    #: True when a frame failed mid-log (only reachable without
    #: ``paranoid`` — with it, recovery raises instead).
    mid_log_corruption: bool = False

    @property
    def last_seqno(self) -> int:
        """Sequence number of the last recovered record (0 if none)."""
        return self.records[-1][0] if self.records else 0


def _valid_record_follows(payload: bytes, start: int) -> bool:
    """Does any byte offset >= ``start`` begin a fully valid record?

    Used to classify a frame failure: garbage followed by a decodable
    record means the *middle* of the log is damaged (no crash writes
    behind its own torn tail), while garbage to the end of the file is
    the expected torn write. A CRC32 plus bounded lengths makes an
    accidental match in torn garbage astronomically unlikely.
    """
    for offset in range(start, len(payload) - RECORD_HEADER + 1):
        try:
            decode_record_at(payload, offset)
        except WALCorruptionError:
            continue
        return True
    return False


def read_segments(
    storage: SimulatedStorage,
    floor: int = 0,
    paranoid: bool = False,
) -> WALRecovery:
    """Scan live WAL segments (index >= ``floor``) and decode records.

    Stops cleanly at a torn tail (bad frame at the end of the final
    segment); classifies anything else — a bad frame with valid frames
    after it, a damaged sealed segment, or a seqno discontinuity — as
    mid-log corruption, which raises
    :class:`~repro.errors.WALCorruptionError` under ``paranoid`` and
    otherwise conservatively ends recovery at the damage.
    """
    recovery = WALRecovery()
    names = [
        name
        for name in storage.list(SEGMENT_PREFIX)
        if segment_index(name) >= floor
    ]
    expected_seqno: Optional[int] = None
    for position, name in enumerate(names):
        recovery.segments.append(segment_index(name))
        payload = storage.read(name)
        final_segment = position == len(names) - 1
        offset = 0
        while offset < len(payload):
            try:
                seqno, op, key, value, next_offset = decode_record_at(
                    payload, offset
                )
            except WALCorruptionError as exc:
                mid_log = not final_segment or _valid_record_follows(
                    payload, offset + 1
                )
                if mid_log:
                    if paranoid:
                        raise WALCorruptionError(
                            f"mid-log corruption in {name} at byte "
                            f"{offset}: {exc}"
                        ) from exc
                    recovery.mid_log_corruption = True
                recovery.torn_bytes = len(payload) - offset
                return recovery
            if expected_seqno is not None and seqno != expected_seqno:
                # A valid frame with the wrong seqno is not a torn
                # write — appends are strictly sequential, so this is
                # mid-log damage (or a stale recycled segment).
                if paranoid:
                    raise WALCorruptionError(
                        f"seqno discontinuity in {name} at byte "
                        f"{offset}: expected {expected_seqno}, "
                        f"found {seqno}"
                    )
                recovery.mid_log_corruption = True
                recovery.torn_bytes = len(payload) - offset
                return recovery
            recovery.records.append((seqno, op, key, value))
            expected_seqno = seqno + 1
            offset = next_offset
    return recovery
