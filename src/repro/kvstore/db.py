"""MiniRocks — the LSM key-value store facade.

A faithful miniature of the RocksDB data path the paper describes:
writes land in a WAL + memtable, flushes build SSTs whose **file IDs
come from an uncoordinated UUIDP generator**, reads consult the
memtable, then per-level SST candidates through a (possibly shared)
block cache keyed by ``(file_id, block_no)``.

When the cache is shared with other store instances and file IDs
collide, reads can be served another file's blocks. With
``paranoid_checks`` the store raises
:class:`~repro.errors.CorruptionDetectedError`; otherwise it behaves
like a real system — the wrong block is consulted silently and the
read returns wrong data or a spurious miss (counted in stats).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CorruptionDetectedError, KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.bloom import hash_pair, hash_pairs
from repro.kvstore.compaction import pick_compaction, run_compaction
from repro.kvstore.iterators import iterate_db
from repro.kvstore.manifest import MANIFEST_NAME, Manifest
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.options import Options
from repro.kvstore.sstable import SST_PREFIX, SSTable, sst_filename
from repro.kvstore.storage import SimulatedStorage
from repro.kvstore.wal import (
    OP_PUT,
    SEGMENT_PREFIX,
    DurableWAL,
    WALRecovery,
    WriteAheadLog,
    read_segments,
    segment_index,
    segment_name,
)


@dataclass
class DBStats:
    """Operational counters for one MiniRocks instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    bloom_negative: int = 0
    sst_reads: int = 0
    #: Reads that consulted a block owned by a different SST (ground
    #: truth from the auditor) — the paper's collision symptom.
    corrupt_block_reads: int = 0
    #: Reads whose *returned value* was provably wrong or wrongly
    #: missing because of a cross-file block.
    corrupt_results: int = 0
    #: WAL fsyncs issued (durable stores only; group commit amortizes
    #: many writes per fsync under ``WriteMode.BATCH``).
    fsync_count: int = 0
    #: Framed bytes appended to the WAL (durable stores only).
    wal_bytes: int = 0
    #: Bytes dropped at the WAL torn tail during recovery (durable
    #: stores only; populated at open).
    wal_torn_bytes: int = 0
    #: Mid-log WAL corruption events recovery conservatively truncated
    #: at (durable stores without ``paranoid_checks`` only — with them,
    #: open raises instead). Nonzero means the log was silently cut.
    wal_mid_log_corruptions: int = 0


class MiniRocks:
    """One uncoordinated store instance.

    Parameters
    ----------
    options:
        Tuning and the ID-generation algorithm choice.
    cache:
        The block cache. Pass a shared instance to model the paper's
        multi-instance deployment; defaults to a private 4096-block one.
    rng:
        Randomness for the ID generator (seed for reproducibility).
    name:
        Label used in repr/audits.
    storage:
        Optional fault-injecting durable backend. With one, the store
        runs the **durable data path**: WAL records go to checksummed
        segments with group commit per ``options.write_mode``, flush
        persists the SST and commits the manifest + WAL truncation
        point atomically (write-then-rename), and construction
        *recovers* whatever state the storage holds — committed SSTs
        plus a replay of the live WAL segments. Without one, the store
        is the original in-memory simulation.
    """

    def __init__(
        self,
        options: Optional[Options] = None,
        cache: Optional[BlockCache] = None,
        rng: Optional[random.Random] = None,
        name: str = "db",
        storage: Optional[SimulatedStorage] = None,
    ):
        self.options = options if options is not None else Options()
        self.cache = cache if cache is not None else BlockCache(4096)
        self.name = name
        self._rng = rng if rng is not None else random.Random()
        assert self.options.id_generator_factory is not None
        self._id_generator = self.options.id_generator_factory(self._rng)
        self.memtable = MemTable()
        self.manifest = Manifest(self.options.num_levels)
        self.stats = DBStats()
        self.storage = storage
        #: Highest seqno covered by the committed SSTs + manifest
        #: (durable regardless of WAL sync state).
        self._flushed_through = 0
        self._wal_floor = 0
        if storage is not None:
            self.wal: Optional[WriteAheadLog] = None
            self._open_durable()
        else:
            self.wal = WriteAheadLog() if self.options.use_wal else None

    @classmethod
    def open(
        cls,
        storage: SimulatedStorage,
        options: Optional[Options] = None,
        cache: Optional[BlockCache] = None,
        rng: Optional[random.Random] = None,
        name: str = "db",
    ) -> "MiniRocks":
        """Open (or create) a durable store on ``storage``.

        Recovery runs inside: the committed manifest names the live
        SSTs and the WAL floor, live segments are replayed into the
        memtable (stopping cleanly at a torn tail — which is then
        trimmed off the segment so later recoveries see a clean log —
        and raising :class:`~repro.errors.WALCorruptionError` on
        mid-log damage under ``paranoid_checks``), orphan files from
        interrupted flushes/compactions are collected, and an
        oversized recovered memtable flushes immediately.
        """
        return cls(
            options=options, cache=cache, rng=rng, name=name,
            storage=storage,
        )

    def _open_durable(self) -> None:
        """Recover durable state: manifest → SSTs → WAL replay → GC."""
        storage = self.storage
        assert storage is not None
        floor = 0
        next_seqno = 1
        live_names = set()
        if storage.exists(MANIFEST_NAME):
            state = Manifest.decode_state(storage.read(MANIFEST_NAME))
            floor = state["wal_floor"]
            next_seqno = state["next_seqno"]
            # The manifest lists L0 newest-first, but add_file
            # *prepends* at L0 — replay oldest-first so the reloaded
            # age order (and thus read precedence) matches the
            # original, not its mirror image.
            for level, file_name in reversed(state["files"]):
                sst = SSTable.from_bytes(storage.read(file_name))
                self.manifest.add_file(level, sst, record_id=False)
                live_names.add(file_name)
            self.manifest.restore_assigned_ids(state["assigned_ids"])
        # Orphans: SSTs persisted by a flush/compaction whose manifest
        # commit never happened. Plain cleanup, not crash-eligible ops.
        for file_name in storage.list(SST_PREFIX):
            if file_name not in live_names:
                storage.delete(file_name, label="gc")
        self._wal_floor = floor
        self._flushed_through = next_seqno - 1
        if not self.options.use_wal:
            self.wal = None
            for file_name in storage.list(SEGMENT_PREFIX):
                storage.delete(file_name, label="gc")
            return
        recovery = read_segments(
            storage, floor, paranoid=self.options.paranoid_checks
        )
        self.stats.wal_torn_bytes += recovery.torn_bytes
        if recovery.mid_log_corruption:
            self.stats.wal_mid_log_corruptions += 1
        if recovery.torn_bytes > 0:
            self._repair_wal_damage(recovery)
        for seqno, op, key, value in recovery.records:
            if seqno <= self._flushed_through:
                continue  # already covered by a committed SST
            if op == OP_PUT:
                self.memtable.put(key, value)
            else:
                self.memtable.delete(key)
        last = max(recovery.last_seqno, self._flushed_through)
        # Write new records to a fresh segment *after* every surviving
        # one. The replayed segments stay on disk — still durable, no
        # re-append needed — until the next flush commits an SST that
        # covers them and moves the floor past them.
        existing = [
            segment_index(n) for n in storage.list(SEGMENT_PREFIX)
        ]
        self.wal = DurableWAL(
            storage,
            write_mode=self.options.write_mode,
            batch_size=self.options.wal_batch_size,
            segment_index=max(existing, default=floor - 1) + 1,
            next_seqno=last + 1,
            stats=self.stats,
        )
        # Segments below the floor survive only a crash between the
        # manifest commit and its truncation; finish the job.
        self.wal.truncate_below(floor)
        self._maybe_flush()

    def _repair_wal_damage(self, recovery: WALRecovery) -> None:
        """Neutralize the WAL damage recovery stopped at.

        The damaged segment is about to become non-final (new writes
        go to a fresh segment), and a leftover tear in a non-final
        segment would read as mid-log corruption on the *next*
        recovery — silently dropping every later (acked, fsynced)
        segment, or refusing to open under ``paranoid_checks``. Trim
        the segment to its valid prefix with an atomic rewrite, and
        drop any segments past the damage (mid-log case: their records
        were already conservatively discarded), so recovery is
        idempotent across repeated crashes.

        Only unsynced bytes can form a torn tail — a synced record
        survives a crash intact — so trimming never discards an
        acknowledged write.
        """
        storage = self.storage
        assert storage is not None
        damaged_index = recovery.segments[-1]
        name = segment_name(damaged_index)
        payload = storage.read(name)
        keep = len(payload) - recovery.torn_bytes
        storage.write_atomic(name, payload[:keep], label="wal-repair")
        for other in storage.list(SEGMENT_PREFIX):
            if segment_index(other) > damaged_index:
                storage.delete(other, label="wal-repair")

    # -- writes -------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Optional[int]:
        """Insert or overwrite ``key``; may trigger flush + compaction.

        On a durable store, returns the write's WAL sequence number —
        the write is **acknowledged durable** once
        :attr:`durable_seqno` reaches it (immediately under
        ``SYNC_EVERY_WRITE``; when its group's fsync completes under
        ``BATCH``; at the next flush under ``NOSYNC``). Returns None
        on the in-memory store.
        """
        seqno = None
        if self.wal is not None:
            seqno = self.wal.append_put(key, value)
        self.memtable.put(key, value)
        self.stats.puts += 1
        self._maybe_flush()
        return seqno

    def delete(self, key: bytes) -> Optional[int]:
        """Delete ``key`` (writes a tombstone). Returns the WAL seqno
        on a durable store (see :meth:`put` for the ack contract)."""
        seqno = None
        if self.wal is not None:
            seqno = self.wal.append_delete(key)
        self.memtable.delete(key)
        self.stats.deletes += 1
        self._maybe_flush()
        return seqno

    @property
    def durable_seqno(self) -> int:
        """Highest seqno through which every write is acknowledged
        durable: covered by a committed SST or a completed WAL group
        fsync, whichever is further along."""
        durable = self._flushed_through
        if isinstance(self.wal, DurableWAL):
            durable = max(durable, self.wal.synced_seqno)
        return durable

    @property
    def last_seqno(self) -> int:
        """Seqno of the newest write issued (acknowledged or not)."""
        if isinstance(self.wal, DurableWAL):
            return self.wal.last_seqno
        return self._flushed_through

    def sync_wal(self) -> None:
        """Explicit durability barrier: fsync the open WAL group now
        (no-op on the in-memory store)."""
        if isinstance(self.wal, DurableWAL):
            self.wal.sync()

    # -- reads --------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup: memtable first, then SSTs newest-first.

        The key is bloom-hashed at most once per lookup; every
        candidate SST's filter is probed with the same precomputed
        (h1, h2) pair instead of re-hashing per file.
        """
        self.stats.gets += 1
        buffered = self.memtable.get(key)
        if buffered is not None:
            return None if buffered == TOMBSTONE else buffered
        pair = None
        for _level, sst in self.manifest.candidates_for_key(key):
            if sst.bloom is not None:
                if pair is None:
                    pair = hash_pair(key)
                if not sst.bloom.may_contain_hash(pair):
                    self.stats.bloom_negative += 1
                    continue
            found, value = self._read_sst_block(sst, key)
            if found:
                return None if value == TOMBSTONE else value
        return None

    def multi_get(self, keys: List[bytes]) -> List[Optional[bytes]]:
        """Point lookups for many keys, batched by candidate SST.

        Instead of looping :meth:`get`, the batch walks the SSTs once
        in read-precedence order (L0 newest-first, then L1..Lmax):
        each file's bloom filter is probed **vectorized** over every
        still-unresolved key in its range (one numpy array op under
        the numpy backend), each key is blake2b-hashed exactly once
        for the whole batch, and only bloom survivors touch blocks.
        Per-key results and bloom/read accounting are identical to the
        looped equivalent (only the cache's LRU touch order differs).
        """
        self.stats.gets += len(keys)
        results: List[Optional[bytes]] = [None] * len(keys)
        pending: dict = {}
        for position, key in enumerate(keys):
            buffered = self.memtable.get(key)
            if buffered is not None:
                results[position] = (
                    None if buffered == TOMBSTONE else buffered
                )
            else:
                pending[position] = key
        if not pending:
            return results
        pairs = dict(zip(pending, hash_pairs(pending.values())))
        for sst in self.manifest.files_newest_first():
            if not pending:
                break
            in_range = [
                position
                for position, key in pending.items()
                if sst.key_in_range(key)
            ]
            if not in_range:
                continue
            if sst.bloom is not None:
                verdicts = sst.bloom.may_contain_hashes(
                    [pairs[position] for position in in_range]
                )
                survivors = []
                for position, maybe in zip(in_range, verdicts):
                    if maybe:
                        survivors.append(position)
                    else:
                        self.stats.bloom_negative += 1
                in_range = survivors
            for position in in_range:
                found, value = self._read_sst_block(sst, pending[position])
                if found:
                    results[position] = (
                        None if value == TOMBSTONE else value
                    )
                    del pending[position]
        return results

    def scan(
        self, start: bytes, end: Optional[bytes] = None,
        limit: Optional[int] = None, include_tombstones: bool = False,
    ) -> List[Tuple[bytes, bytes]]:
        """Range scan over ``[start, end)``, newest version per key.

        ``end=None`` scans to the end of the key space (with ``limit``
        this is the YCSB workload-E shape: "``limit`` rows from
        ``start``"). Scans merge memtable and all live SSTs directly
        (bypassing the cache — scans in the real system use their own
        readahead path). ``include_tombstones=True`` keeps deletion
        markers in the result — for distributed coordinators that must
        see this store's deletions when merging against other copies —
        and ``limit`` then bounds **live** rows only, so markers ride
        along without consuming the row budget.
        """
        self.stats.scans += 1
        if end is not None and start >= end:
            return []
        if end is None and limit is not None:
            # Open-ended bounded scan (the YCSB workload-E shape):
            # stream through the merging iterator — sources pruned and
            # already positioned at `start` by iterate_db, so no seek
            # is needed — instead of materializing (or walking) the
            # key space on either side of the range.
            iterator = iterate_db(self, start)
            entries = (
                iterator.iter_with_tombstones()
                if include_tombstones
                else iterator
            )
            result = []
            live = 0
            for key, value in entries:
                if live >= limit:
                    break
                result.append((key, value))
                if value != TOMBSTONE:
                    live += 1
            return result
        winners = {}
        # Oldest sources first so newer sources overwrite.
        for level_index in range(self.manifest.num_levels - 1, 0, -1):
            for sst in self.manifest.level(level_index):
                self._collect_range(sst, start, end, winners)
        for sst in reversed(self.manifest.level(0)):  # oldest L0 first
            self._collect_range(sst, start, end, winners)
        for key, value in self.memtable.sorted_entries():
            if start <= key and (end is None or key < end):
                winners[key] = value
        result = []
        live = 0
        for key, value in sorted(winners.items()):
            if limit is not None and live >= limit:
                break
            if value == TOMBSTONE:
                if include_tombstones:
                    result.append((key, value))
                continue
            result.append((key, value))
            live += 1
        return result

    @staticmethod
    def _collect_range(
        sst: SSTable, start: bytes, end: Optional[bytes], out: dict
    ) -> None:
        if sst.max_key < start or (end is not None and sst.min_key >= end):
            return
        for key, value in sst.iter_entries():
            if start <= key and (end is None or key < end):
                out[key] = value

    def _read_sst_block(
        self, sst: SSTable, key: bytes
    ) -> Tuple[bool, Optional[bytes]]:
        """Cache-mediated point lookup in one SST (bloom already passed).

        Returns ``(found, value)``; ``found`` is True when the consulted
        block contained the key (so the search must stop at this level).
        """
        block_no = sst.block_for_key(key)
        if block_no is None:
            return False, None
        self.stats.sst_reads += 1
        block = self.cache.get(sst.file_id, block_no, sst.fingerprint)
        if block is None:
            block = sst.blocks[block_no]
            self.cache.put(sst.file_id, block_no, block)
        if block.owner_fingerprint != sst.fingerprint:
            # The cache served another file's block (ID collision).
            self.stats.corrupt_block_reads += 1
            if self.options.paranoid_checks:
                raise CorruptionDetectedError(
                    f"{self.name}: cache served block of fingerprint "
                    f"{block.owner_fingerprint} for file_id={sst.file_id} "
                    f"(expected {sst.fingerprint})"
                )
            value = block.get(key)
            true_value = sst.blocks[block_no].get(key)
            if value != true_value:
                self.stats.corrupt_results += 1
            # Realistic silent behaviour: trust the wrong block.
            return value is not None, value
        value = block.get(key)
        return value is not None, value

    # -- maintenance ---------------------------------------------------------

    def _maybe_flush(self) -> None:
        if len(self.memtable) >= self.options.memtable_entries:
            self.flush()

    def flush(self) -> Optional[SSTable]:
        """Write the memtable out as a new L0 SST with a fresh file ID.

        Durable ordering: persist the SST (atomic write, crash point
        ``flush``), rotate the WAL to a fresh segment, then commit the
        manifest naming the new file *and* the new WAL floor in one
        atomic rename (crash point ``manifest-commit``). A crash
        anywhere in between leaves the old manifest + the old WAL
        segments, which reconstruct the pre-flush state exactly; only
        after the commit are the covered segments deleted.
        """
        if len(self.memtable) == 0:
            return None
        entries = list(self.memtable.sorted_entries())
        sst = self._build_sst(entries)
        if self.storage is not None:
            self._persist_sst(sst, label="flush")
        self.manifest.add_file(0, sst)
        self.memtable.clear()
        if self.storage is not None:
            flushed, floor = self._flushed_through, self._wal_floor
            if isinstance(self.wal, DurableWAL):
                flushed = self.wal.last_seqno
                floor = self.wal.rotate()
            self._commit_manifest(wal_floor=floor, flushed_through=flushed)
            # Only now is the flush durable: advance the acked
            # watermark after the commit lands, never before, so
            # ``durable_seqno`` cannot claim seqnos a crash inside
            # the commit would lose.
            self._flushed_through, self._wal_floor = flushed, floor
            if isinstance(self.wal, DurableWAL):
                self.wal.truncate_below(self._wal_floor)
        elif self.wal is not None:
            self.wal.truncate()
        self.stats.flushes += 1
        self._maybe_compact()
        return sst

    def _persist_sst(self, sst: SSTable, label: str) -> None:
        """Write an SST to durable storage (atomic, all-or-nothing)."""
        assert self.storage is not None
        self.storage.write_atomic(
            sst_filename(sst.fingerprint),
            sst.to_bytes(self.options.sst_format_version),
            label=label,
        )

    def _commit_manifest(
        self,
        wal_floor: Optional[int] = None,
        flushed_through: Optional[int] = None,
    ) -> None:
        """Atomically commit the live-file set + WAL coordinates.

        ``flush`` passes the *candidate* coordinates explicitly and
        installs them on ``self`` only after this returns; every other
        caller commits the current attributes unchanged.
        """
        assert self.storage is not None
        if wal_floor is None:
            wal_floor = self._wal_floor
        if flushed_through is None:
            flushed_through = self._flushed_through
        self.storage.write_atomic(
            MANIFEST_NAME,
            self.manifest.encode_state(
                wal_floor=wal_floor,
                next_seqno=flushed_through + 1,
            ),
            label="manifest-commit",
        )

    def _build_sst(self, entries) -> SSTable:
        file_id = self._id_generator.next_id()
        return SSTable.from_entries(
            file_id=file_id,
            entries=entries,
            block_entries=self.options.block_entries,
            bloom_bits_per_key=self.options.bloom_bits_per_key,
        )

    def _maybe_compact(self) -> None:
        while True:
            job = pick_compaction(self.manifest, self.options)
            if job is None:
                return
            dropped: List[SSTable] = []

            def on_dropped(sst: SSTable) -> None:
                self.cache.evict_file(sst.file_id)
                dropped.append(sst)

            def build(entries) -> SSTable:
                sst = self._build_sst(entries)
                if self.storage is not None:
                    self._persist_sst(sst, label="compaction")
                return sst

            run_compaction(
                self.manifest,
                self.options,
                job,
                build_sst=build,
                on_file_dropped=on_dropped,
            )
            if self.storage is not None:
                # Commit the new version first; input files are
                # deleted only once nothing references them, so a
                # crash at any point leaves a readable version.
                self._commit_manifest()
                for sst in dropped:
                    name = sst_filename(sst.fingerprint)
                    if self.storage.exists(name):
                        self.storage.delete(name, label="sst-delete")
            self.stats.compactions += 1

    def compact_all(self) -> None:
        """Force compactions until every level is within budget."""
        self._maybe_compact()

    def ingest_external(self, entries) -> SSTable:
        """Bulk-load a sorted batch as one SST, bypassing the memtable.

        This is RocksDB's ingest-external-file path: the new file gets
        a **fresh uncoordinated ID** from this instance's generator
        (unlike migration, which moves a file *with* its original ID —
        the distinction that makes cross-instance uniqueness a global,
        not per-node, requirement). Entries must be strictly ascending
        by key.
        """
        entries = list(entries)
        if not entries:
            raise KVStoreError("cannot ingest an empty batch")
        sst = self._build_sst(entries)
        if self.storage is not None:
            self._persist_sst(sst, label="flush")
        self.manifest.add_file(0, sst)
        if self.storage is not None:
            self._commit_manifest()
        self._maybe_compact()
        return sst

    def recover_from_wal(self, payload: bytes) -> int:
        """Replay a serialized WAL into the memtable (crash recovery).

        Replayed records are **re-appended to the live WAL** — without
        that, a second crash after recovery but before the next flush
        would lose them all over again — and an oversized recovered
        memtable flushes immediately. Returns the number of records
        applied.
        """
        if self.wal is None:
            raise KVStoreError("store was configured without a WAL")
        recovered = WriteAheadLog.deserialize(payload)
        applied = 0
        for op, key, value in recovered.records():
            if op == OP_PUT:
                self.wal.append_put(key, value)
                self.memtable.put(key, value)
            else:
                self.wal.append_delete(key)
                self.memtable.delete(key)
            applied += 1
        self._maybe_flush()
        return applied

    # -- introspection ---------------------------------------------------------

    def live_file_ids(self) -> List[int]:
        """IDs of all live SSTs."""
        return [sst.file_id for _, sst in self.manifest.live_files()]

    def assigned_file_ids(self) -> List[int]:
        """Every file ID this instance ever assigned (flushes+compactions)."""
        return list(self.manifest.assigned_ids)

    def __repr__(self) -> str:
        return (
            f"MiniRocks({self.name!r}, files={self.manifest.file_count()}, "
            f"memtable={len(self.memtable)})"
        )
