"""MiniRocks — the LSM key-value store facade.

A faithful miniature of the RocksDB data path the paper describes:
writes land in a WAL + memtable, flushes build SSTs whose **file IDs
come from an uncoordinated UUIDP generator**, reads consult the
memtable, then per-level SST candidates through a (possibly shared)
block cache keyed by ``(file_id, block_no)``.

When the cache is shared with other store instances and file IDs
collide, reads can be served another file's blocks. With
``paranoid_checks`` the store raises
:class:`~repro.errors.CorruptionDetectedError`; otherwise it behaves
like a real system — the wrong block is consulted silently and the
read returns wrong data or a spurious miss (counted in stats).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CorruptionDetectedError, KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.compaction import pick_compaction, run_compaction
from repro.kvstore.iterators import iterate_db
from repro.kvstore.manifest import Manifest
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import WriteAheadLog


@dataclass
class DBStats:
    """Operational counters for one MiniRocks instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    bloom_negative: int = 0
    sst_reads: int = 0
    #: Reads that consulted a block owned by a different SST (ground
    #: truth from the auditor) — the paper's collision symptom.
    corrupt_block_reads: int = 0
    #: Reads whose *returned value* was provably wrong or wrongly
    #: missing because of a cross-file block.
    corrupt_results: int = 0


class MiniRocks:
    """One uncoordinated store instance.

    Parameters
    ----------
    options:
        Tuning and the ID-generation algorithm choice.
    cache:
        The block cache. Pass a shared instance to model the paper's
        multi-instance deployment; defaults to a private 4096-block one.
    rng:
        Randomness for the ID generator (seed for reproducibility).
    name:
        Label used in repr/audits.
    """

    def __init__(
        self,
        options: Optional[Options] = None,
        cache: Optional[BlockCache] = None,
        rng: Optional[random.Random] = None,
        name: str = "db",
    ):
        self.options = options if options is not None else Options()
        self.cache = cache if cache is not None else BlockCache(4096)
        self.name = name
        self._rng = rng if rng is not None else random.Random()
        assert self.options.id_generator_factory is not None
        self._id_generator = self.options.id_generator_factory(self._rng)
        self.memtable = MemTable()
        self.wal = WriteAheadLog() if self.options.use_wal else None
        self.manifest = Manifest(self.options.num_levels)
        self.stats = DBStats()

    # -- writes -------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``; may trigger flush + compaction."""
        if self.wal is not None:
            self.wal.append_put(key, value)
        self.memtable.put(key, value)
        self.stats.puts += 1
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (writes a tombstone)."""
        if self.wal is not None:
            self.wal.append_delete(key)
        self.memtable.delete(key)
        self.stats.deletes += 1
        self._maybe_flush()

    # -- reads --------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Point lookup: memtable first, then SSTs newest-first."""
        self.stats.gets += 1
        buffered = self.memtable.get(key)
        if buffered is not None:
            return None if buffered == TOMBSTONE else buffered
        for _level, sst in self.manifest.candidates_for_key(key):
            found, value = self._lookup_in_sst(sst, key)
            if found:
                return None if value == TOMBSTONE else value
        return None

    def multi_get(self, keys: List[bytes]) -> List[Optional[bytes]]:
        """Point lookups for many keys."""
        return [self.get(key) for key in keys]

    def scan(
        self, start: bytes, end: Optional[bytes] = None,
        limit: Optional[int] = None, include_tombstones: bool = False,
    ) -> List[Tuple[bytes, bytes]]:
        """Range scan over ``[start, end)``, newest version per key.

        ``end=None`` scans to the end of the key space (with ``limit``
        this is the YCSB workload-E shape: "``limit`` rows from
        ``start``"). Scans merge memtable and all live SSTs directly
        (bypassing the cache — scans in the real system use their own
        readahead path). ``include_tombstones=True`` keeps deletion
        markers in the result — for distributed coordinators that must
        see this store's deletions when merging against other copies —
        and ``limit`` then bounds **live** rows only, so markers ride
        along without consuming the row budget.
        """
        self.stats.scans += 1
        if end is not None and start >= end:
            return []
        if end is None and limit is not None:
            # Open-ended bounded scan (the YCSB workload-E shape):
            # stream through the merging iterator — sources pruned and
            # already positioned at `start` by iterate_db, so no seek
            # is needed — instead of materializing (or walking) the
            # key space on either side of the range.
            iterator = iterate_db(self, start)
            entries = (
                iterator.iter_with_tombstones()
                if include_tombstones
                else iterator
            )
            result = []
            live = 0
            for key, value in entries:
                if live >= limit:
                    break
                result.append((key, value))
                if value != TOMBSTONE:
                    live += 1
            return result
        winners = {}
        # Oldest sources first so newer sources overwrite.
        for level_index in range(self.manifest.num_levels - 1, 0, -1):
            for sst in self.manifest.level(level_index):
                self._collect_range(sst, start, end, winners)
        for sst in reversed(self.manifest.level(0)):  # oldest L0 first
            self._collect_range(sst, start, end, winners)
        for key, value in self.memtable.sorted_entries():
            if start <= key and (end is None or key < end):
                winners[key] = value
        result = []
        live = 0
        for key, value in sorted(winners.items()):
            if limit is not None and live >= limit:
                break
            if value == TOMBSTONE:
                if include_tombstones:
                    result.append((key, value))
                continue
            result.append((key, value))
            live += 1
        return result

    @staticmethod
    def _collect_range(
        sst: SSTable, start: bytes, end: Optional[bytes], out: dict
    ) -> None:
        if sst.max_key < start or (end is not None and sst.min_key >= end):
            return
        for key, value in sst.iter_entries():
            if start <= key and (end is None or key < end):
                out[key] = value

    def _lookup_in_sst(
        self, sst: SSTable, key: bytes
    ) -> Tuple[bool, Optional[bytes]]:
        """Cache-mediated point lookup in one SST.

        Returns ``(found, value)``; ``found`` is True when the consulted
        block contained the key (so the search must stop at this level).
        """
        if sst.bloom is not None and not sst.bloom.may_contain(key):
            self.stats.bloom_negative += 1
            return False, None
        block_no = sst.block_for_key(key)
        if block_no is None:
            return False, None
        self.stats.sst_reads += 1
        block = self.cache.get(sst.file_id, block_no, sst.fingerprint)
        if block is None:
            block = sst.blocks[block_no]
            self.cache.put(sst.file_id, block_no, block)
        if block.owner_fingerprint != sst.fingerprint:
            # The cache served another file's block (ID collision).
            self.stats.corrupt_block_reads += 1
            if self.options.paranoid_checks:
                raise CorruptionDetectedError(
                    f"{self.name}: cache served block of fingerprint "
                    f"{block.owner_fingerprint} for file_id={sst.file_id} "
                    f"(expected {sst.fingerprint})"
                )
            value = block.get(key)
            true_value = sst.blocks[block_no].get(key)
            if value != true_value:
                self.stats.corrupt_results += 1
            # Realistic silent behaviour: trust the wrong block.
            return value is not None, value
        value = block.get(key)
        return value is not None, value

    # -- maintenance ---------------------------------------------------------

    def _maybe_flush(self) -> None:
        if len(self.memtable) >= self.options.memtable_entries:
            self.flush()

    def flush(self) -> Optional[SSTable]:
        """Write the memtable out as a new L0 SST with a fresh file ID."""
        if len(self.memtable) == 0:
            return None
        entries = list(self.memtable.sorted_entries())
        sst = self._build_sst(entries)
        self.manifest.add_file(0, sst)
        self.memtable.clear()
        if self.wal is not None:
            self.wal.truncate()
        self.stats.flushes += 1
        self._maybe_compact()
        return sst

    def _build_sst(self, entries) -> SSTable:
        file_id = self._id_generator.next_id()
        return SSTable.from_entries(
            file_id=file_id,
            entries=entries,
            block_entries=self.options.block_entries,
            bloom_bits_per_key=self.options.bloom_bits_per_key,
        )

    def _maybe_compact(self) -> None:
        while True:
            job = pick_compaction(self.manifest, self.options)
            if job is None:
                return
            run_compaction(
                self.manifest,
                self.options,
                job,
                build_sst=self._build_sst,
                on_file_dropped=lambda sst: self.cache.evict_file(
                    sst.file_id
                ),
            )
            self.stats.compactions += 1

    def compact_all(self) -> None:
        """Force compactions until every level is within budget."""
        self._maybe_compact()

    def ingest_external(self, entries) -> SSTable:
        """Bulk-load a sorted batch as one SST, bypassing the memtable.

        This is RocksDB's ingest-external-file path: the new file gets
        a **fresh uncoordinated ID** from this instance's generator
        (unlike migration, which moves a file *with* its original ID —
        the distinction that makes cross-instance uniqueness a global,
        not per-node, requirement). Entries must be strictly ascending
        by key.
        """
        entries = list(entries)
        if not entries:
            raise KVStoreError("cannot ingest an empty batch")
        sst = self._build_sst(entries)
        self.manifest.add_file(0, sst)
        self._maybe_compact()
        return sst

    def recover_from_wal(self, payload: bytes) -> int:
        """Replay a serialized WAL into the memtable (crash recovery).

        Returns the number of records applied.
        """
        if self.wal is None:
            raise KVStoreError("store was configured without a WAL")
        recovered = WriteAheadLog.deserialize(payload)
        applied = 0
        from repro.kvstore.wal import OP_PUT

        for op, key, value in recovered.records():
            if op == OP_PUT:
                self.memtable.put(key, value)
            else:
                self.memtable.delete(key)
            applied += 1
        return applied

    # -- introspection ---------------------------------------------------------

    def live_file_ids(self) -> List[int]:
        """IDs of all live SSTs."""
        return [sst.file_id for _, sst in self.manifest.live_files()]

    def assigned_file_ids(self) -> List[int]:
        """Every file ID this instance ever assigned (flushes+compactions)."""
        return list(self.manifest.assigned_ids)

    def __repr__(self) -> str:
        return (
            f"MiniRocks({self.name!r}, files={self.manifest.file_count()}, "
            f"memtable={len(self.memtable)})"
        )
