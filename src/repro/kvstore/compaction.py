"""Leveled compaction: picking and merging.

The policy is a simplified RocksDB leveled scheme:

* L0 → L1 when L0 holds ``level0_file_limit`` files or more (all L0
  files participate, plus every overlapping L1 file);
* L → L+1 when level L exceeds its file budget
  (``level0_file_limit · multiplier^L``); the oldest file plus the
  overlapping files below participate.

Merging is a k-way merge by key with newest-wins semantics; tombstones
are dropped only when the output lands on the last level (nothing older
can hide beneath it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.kvstore.manifest import Manifest
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable


@dataclass(frozen=True)
class CompactionJob:
    """A picked compaction: inputs at two adjacent levels."""

    level: int
    inputs_upper: Tuple[SSTable, ...]
    inputs_lower: Tuple[SSTable, ...]

    @property
    def output_level(self) -> int:
        """The level compacted output files land in (``level + 1``)."""
        return self.level + 1


def level_file_budget(options: Options, level: int) -> int:
    """Maximum live files allowed at ``level`` before compaction."""
    if level == 0:
        return options.level0_file_limit
    return options.level0_file_limit * (
        options.level_size_multiplier**level
    )


def pick_compaction(
    manifest: Manifest, options: Options
) -> Optional[CompactionJob]:
    """Return the most urgent compaction job, or None if all levels fit."""
    for level in range(manifest.num_levels - 1):
        files = manifest.level(level)
        if len(files) < level_file_budget(options, level):
            continue
        if level == 0:
            upper: List[SSTable] = files  # all of L0 (ranges overlap)
        else:
            upper = [min(files, key=lambda s: s.min_key)]
        # The merged output spans the convex hull of the input key
        # ranges, so every lower-level file inside that hull must join
        # the job — including files sitting in gaps between the upper
        # inputs. Including them can widen the hull, hence the fixpoint.
        hull_min = min(sst.min_key for sst in upper)
        hull_max = max(sst.max_key for sst in upper)
        lower: List[SSTable] = []
        while True:
            grown = False
            for sst in manifest.level(level + 1):
                if sst in lower:
                    continue
                if sst.min_key <= hull_max and hull_min <= sst.max_key:
                    lower.append(sst)
                    hull_min = min(hull_min, sst.min_key)
                    hull_max = max(hull_max, sst.max_key)
                    grown = True
            if not grown:
                break
        return CompactionJob(
            level=level,
            inputs_upper=tuple(upper),
            inputs_lower=tuple(lower),
        )
    return None


def merge_tables(
    tables_newest_first: Sequence[SSTable], drop_tombstones: bool
) -> List[Tuple[bytes, bytes]]:
    """K-way merge with newest-wins de-duplication.

    ``tables_newest_first[0]`` shadows later tables on key ties.
    """
    # Heap entries: (key, age, entry_index, value). Lower age = newer.
    heap: List[Tuple[bytes, int, int, bytes]] = []
    iterators = [iter(t.iter_entries()) for t in tables_newest_first]
    for age, iterator in enumerate(iterators):
        entry = next(iterator, None)
        if entry is not None:
            heapq.heappush(heap, (entry[0], age, 0, entry[1]))
    positions = [1] * len(iterators)
    merged: List[Tuple[bytes, bytes]] = []
    last_key: Optional[bytes] = None
    while heap:
        key, age, _, value = heapq.heappop(heap)
        entry = next(iterators[age], None)
        if entry is not None:
            heapq.heappush(
                heap, (entry[0], age, positions[age], entry[1])
            )
            positions[age] += 1
        if key == last_key:
            continue  # an older version of a key we already emitted
        last_key = key
        if drop_tombstones and value == TOMBSTONE:
            continue
        merged.append((key, value))
    return merged


def run_compaction(
    manifest: Manifest,
    options: Options,
    job: CompactionJob,
    build_sst: Callable[[Sequence[Tuple[bytes, bytes]]], SSTable],
    on_file_dropped: Optional[Callable[[SSTable], None]] = None,
) -> List[SSTable]:
    """Execute ``job``: merge inputs, split outputs, update the manifest.

    ``build_sst`` assigns the new file its (uncoordinated) ID — every
    compaction consumes fresh IDs, which is why real deployments burn
    through the ID space far faster than the live-file count suggests.
    Returns the output files.
    """
    # Newest-first order: L0 list is already newest-first; upper level
    # shadows lower level.
    inputs = list(job.inputs_upper) + list(job.inputs_lower)
    is_bottom = job.output_level == manifest.num_levels - 1
    merged = merge_tables(inputs, drop_tombstones=is_bottom)
    for sst in job.inputs_upper:
        manifest.remove_file(job.level, sst)
        if on_file_dropped is not None:
            on_file_dropped(sst)
    for sst in job.inputs_lower:
        manifest.remove_file(job.output_level, sst)
        if on_file_dropped is not None:
            on_file_dropped(sst)
    outputs: List[SSTable] = []
    if merged:
        target_entries = max(
            options.block_entries * options.level0_file_limit,
            options.memtable_entries,
        )
        for start in range(0, len(merged), target_entries):
            chunk = merged[start : start + target_entries]
            sst = build_sst(chunk)
            manifest.add_file(job.output_level, sst)
            outputs.append(sst)
    return outputs
