"""Merging iterators: RocksDB-style cursors over MiniRocks state.

``scan`` materializes a range; an :class:`LSMIterator` streams it —
a heap-based k-way merge over the memtable and every live SST, with
newest-wins version resolution and tombstone suppression, supporting
``seek(key)`` and forward iteration. This is the access path real
engines use for range reads and compaction previews.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.kvstore.memtable import TOMBSTONE


class _Source:
    """One input stream with an age rank (lower = newer = wins ties)."""

    def __init__(self, age: int, entries: Iterator[Tuple[bytes, bytes]]):
        self.age = age
        self._entries = entries
        self.head: Optional[Tuple[bytes, bytes]] = next(entries, None)

    def advance(self) -> None:
        self.head = next(self._entries, None)


class LSMIterator:
    """Forward iterator over the merged, deduplicated key space.

    Construct via :func:`iterate_db` (or pass explicit sources, newest
    first). SST blocks are immutable; the memtable source streams the
    live sorted buffer, so the store must not be written while the
    iterator is being consumed.
    """

    def __init__(self, sources_newest_first: List[Iterator[Tuple[bytes, bytes]]]):
        self._sources = [
            _Source(age, iterator)
            for age, iterator in enumerate(sources_newest_first)
        ]
        self._heap: List[Tuple[bytes, int]] = []
        for source in self._sources:
            if source.head is not None:
                heapq.heappush(self._heap, (source.head[0], source.age))
        self._exhausted = False

    def _pop_next_version_group(self) -> Optional[Tuple[bytes, bytes]]:
        """Pop all versions of the next key; return the newest (or None)."""
        if not self._heap:
            return None
        key, _age = self._heap[0]
        winner: Optional[Tuple[int, bytes]] = None
        while self._heap and self._heap[0][0] == key:
            _key, age = heapq.heappop(self._heap)
            source = self._sources[age]
            assert source.head is not None
            value = source.head[1]
            if winner is None or age < winner[0]:
                winner = (age, value)
            source.advance()
            if source.head is not None:
                heapq.heappush(self._heap, (source.head[0], source.age))
        assert winner is not None
        return key, winner[1]

    def __iter__(self) -> "LSMIterator":
        return self

    def __next__(self) -> Tuple[bytes, bytes]:
        while True:
            group = self._pop_next_version_group()
            if group is None:
                raise StopIteration
            key, value = group
            if value != TOMBSTONE:
                return key, value

    def iter_with_tombstones(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield ``(key, newest value)`` including tombstone markers.

        Distributed scans need this: a coordinator merging per-node
        results must see a node's deletions to stop stale migrated
        copies on other nodes from resurrecting the key.
        """
        while True:
            group = self._pop_next_version_group()
            if group is None:
                return
            yield group

    def seek(self, key: bytes) -> None:
        """Advance past every entry with a key below ``key``.

        Forward-only (like a heap merge must be): seeking backwards
        raises.
        """
        while self._heap and self._heap[0][0] < key:
            self._pop_next_version_group()

    def peek_key(self) -> Optional[bytes]:
        """The next (possibly tombstoned) key, or None at the end."""
        return self._heap[0][0] if self._heap else None


def iterate_db(db, start: Optional[bytes] = None) -> LSMIterator:
    """Build an :class:`LSMIterator` over a ``MiniRocks`` instance.

    Sources newest first: memtable stream, then L0 newest→oldest,
    then L1..Lmax (non-overlapping levels are each one sorted stream).
    With ``start``, every source is positioned at the first entry
    ``>= start`` (files entirely below it are pruned), so a seeked
    scan costs O(rows read), not O(keys below ``start``). The memtable
    source streams the sorted buffer directly — nothing is
    materialized per scan — so the store must not be written while the
    iterator is live (every in-repo consumer drains it first).
    """
    sources: List[Iterator[Tuple[bytes, bytes]]] = [
        db.memtable.sorted_entries() if start is None
        else db.memtable.entries_from(start)
    ]
    for sst in db.manifest.level(0):
        if start is not None and sst.max_key < start:
            continue
        sources.append(
            sst.iter_entries() if start is None
            else sst.iter_entries_from(start)
        )
    for level_index in range(1, db.manifest.num_levels):
        files = db.manifest.level(level_index)
        if files:
            sources.append(_chain_sorted_files(files, start))
    return LSMIterator(sources)


def _chain_sorted_files(
    files, start: Optional[bytes] = None
) -> Iterator[Tuple[bytes, bytes]]:
    for sst in files:
        if start is not None and sst.max_key < start:
            continue
        if start is None:
            yield from sst.iter_entries()
        else:
            yield from sst.iter_entries_from(start)


def range_count(db, start: bytes, end: bytes) -> int:
    """Number of live keys in ``[start, end)`` without materializing
    values — an iterator-based alternative to ``len(db.scan(...))``."""
    if start >= end:
        return 0
    iterator = iterate_db(db, start)  # sources already positioned
    count = 0
    for key, _value in iterator:
        if key >= end:
            break
        count += 1
    return count
