"""Shared LRU block cache keyed by ``(file_id, block_no)``.

This is the component the paper's RocksDB deployment motivates: the
cache is **shared across store instances** (and across nodes, in the
cluster simulator), and its key embeds the *uncoordinated* file ID. If
two distinct SSTs share a file ID, a lookup for one can be served a
block belonging to the other. The cache cannot tell — only the auditor
(which checks the ground-truth ``owner_fingerprint``) can.

Real deployments add a generation/offset component that may mask some
collisions; we key purely by (file_id, block_no) to expose exactly the
failure mode the paper's probability bounds are about.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.kvstore.sstable import Block

CacheKey = Tuple[int, int]  # (file_id, block_no)


@dataclass
class CacheStats:
    """Counters exposed by the cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Hits whose block belonged to a *different* SST than the reader's
    #: (ground truth — only observable because this is a simulator).
    cross_file_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class BlockCache:
    """A strict-LRU cache of data blocks with collision instrumentation."""

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ConfigurationError("cache capacity must be >= 1 block")
        self.capacity = capacity_blocks
        self._blocks: "OrderedDict[CacheKey, Block]" = OrderedDict()
        #: Per-file key index so :meth:`evict_file` touches only that
        #: file's blocks, not the whole cache (compaction deletes call
        #: it once per victim file).
        self._by_file: Dict[int, Set[int]] = {}
        self.stats = CacheStats()
        #: (file_id, expected_fingerprint, found_fingerprint) audit log.
        self.collision_log: List[Tuple[int, int, int]] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def get(
        self, file_id: int, block_no: int, expected_fingerprint: int
    ) -> Optional[Block]:
        """Look up a block; record a cross-file hit if ownership differs.

        The returned block is whatever the cache holds under the key —
        including a wrong file's block. Callers decide whether to trust
        it (silent-corruption mode) or verify (paranoid mode).
        """
        key = (file_id, block_no)
        block = self._blocks.get(key)
        if block is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.stats.hits += 1
        if block.owner_fingerprint != expected_fingerprint:
            self.stats.cross_file_hits += 1
            self.collision_log.append(
                (file_id, expected_fingerprint, block.owner_fingerprint)
            )
        return block

    def put(self, file_id: int, block_no: int, block: Block) -> None:
        """Insert a block, evicting LRU entries beyond capacity."""
        key = (file_id, block_no)
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        self._by_file.setdefault(file_id, set()).add(block_no)
        self.stats.insertions += 1
        while len(self._blocks) > self.capacity:
            evicted, _block = self._blocks.popitem(last=False)
            self._forget(evicted)
            self.stats.evictions += 1

    def _forget(self, key: CacheKey) -> None:
        """Drop ``key`` from the per-file index."""
        blocks_of_file = self._by_file.get(key[0])
        if blocks_of_file is not None:
            blocks_of_file.discard(key[1])
            if not blocks_of_file:
                del self._by_file[key[0]]

    def evict_file(self, file_id: int) -> int:
        """Drop all cached blocks of ``file_id``; returns the count.

        Called when a file is deleted by compaction. O(blocks of that
        file) via the per-file index — not a scan of the entire cache.
        Note this cannot repair a collision: blocks of the *other*
        same-ID file vanish too (exactly the cache-churn symptom
        RocksDB observed).
        """
        block_nos = self._by_file.pop(file_id, None)
        if not block_nos:
            return 0
        for block_no in block_nos:
            del self._blocks[(file_id, block_no)]
        return len(block_nos)

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        self._blocks.clear()
        self._by_file.clear()
