"""In-memory write buffer with tombstones.

MiniRocks keeps recent writes in a :class:`MemTable`; deletes are
recorded as tombstones so they can shadow older SST entries until
compaction drops them. Keys and values are ``bytes``.

The buffer is **incrementally sorted** (a ``sortedcontainers``
``SortedDict`` — the skiplist stand-in real engines use): puts and
gets stay O(log n), but flush emits the entries in key order with no
sort, ``sorted_entries`` streams, and a seeked scan starts mid-keyspace
via :meth:`entries_from` without materializing the whole table. When
``sortedcontainers`` is absent the class degrades to the original
hash-map-plus-sort-on-flush (same results, flush pays the sort).

Byte size is tracked incrementally on put/delete/clear, so
:meth:`approximate_size` is O(1) instead of a full walk.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional, Tuple

from repro.errors import KVStoreError

try:  # soft dependency: degrade to dict + sort-on-read
    from sortedcontainers import SortedDict
except ImportError:  # pragma: no cover - exercised on bare hosts
    SortedDict = None

#: Sentinel stored for deleted keys.
TOMBSTONE: bytes = b"\x00__repro_tombstone__\x00"


class MemTable:
    """A mutable buffer kept in key order (see module docstring)."""

    def __init__(self) -> None:
        self._entries = SortedDict() if SortedDict is not None else {}
        self._approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def approximate_size(self) -> int:
        """Bytes of keys+values currently buffered (O(1))."""
        return self._approximate_bytes

    def _store(self, key: bytes, value: bytes) -> None:
        previous = self._entries.get(key)
        if previous is None:
            self._approximate_bytes += len(key) + len(value)
        else:
            self._approximate_bytes += len(value) - len(previous)
        self._entries[key] = value

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        _check_key(key)
        if value == TOMBSTONE:
            raise KVStoreError("value collides with the tombstone sentinel")
        self._store(key, value)

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        _check_key(key)
        self._store(key, TOMBSTONE)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the buffered value, the tombstone, or None if absent."""
        return self._entries.get(key)

    def sorted_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries (including tombstones) in ascending key order.

        Streams the already-sorted structure — no per-call sort. The
        buffer must not be mutated while the iterator is live (flush
        and scan both drain it before writing).
        """
        if SortedDict is not None:
            return iter(self._entries.items())
        return iter(sorted(self._entries.items()))

    def entries_from(self, start: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Entries with key >= ``start`` in ascending key order.

        O(log n) positioning plus O(rows read) — a seeked scan no
        longer materializes (or sorts) the entries below ``start``.
        """
        entries = self._entries
        if SortedDict is not None:
            return ((key, entries[key]) for key in entries.irange(start))
        ordered = sorted(entries.items())
        keys = [key for key, _ in ordered]
        return iter(ordered[bisect.bisect_left(keys, start):])

    def clear(self) -> None:
        """Drop everything (after a successful flush)."""
        self._entries.clear()
        self._approximate_bytes = 0


def _check_key(key: bytes) -> None:
    if not isinstance(key, bytes):
        raise KVStoreError(f"keys must be bytes, got {type(key).__name__}")
    if not key:
        raise KVStoreError("empty keys are not allowed")
