"""In-memory write buffer with tombstones.

MiniRocks keeps recent writes in a :class:`MemTable`; deletes are
recorded as tombstones so they can shadow older SST entries until
compaction drops them. Keys and values are ``bytes``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import KVStoreError

#: Sentinel stored for deleted keys.
TOMBSTONE: bytes = b"\x00__repro_tombstone__\x00"


class MemTable:
    """A mutable, unordered buffer; sorted only at flush time.

    A hash map with deferred sorting is the right trade-off here: puts
    and gets are O(1), and the O(k log k) sort is paid once per flush,
    mirroring the skiplist-amortization argument real engines make.
    """

    def __init__(self) -> None:
        self._entries: Dict[bytes, bytes] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def approximate_size(self) -> int:
        """Bytes of keys+values currently buffered."""
        return sum(len(k) + len(v) for k, v in self._entries.items())

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        _check_key(key)
        if value == TOMBSTONE:
            raise KVStoreError("value collides with the tombstone sentinel")
        self._entries[key] = value

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        _check_key(key)
        self._entries[key] = TOMBSTONE

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the buffered value, the tombstone, or None if absent."""
        return self._entries.get(key)

    def sorted_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries (including tombstones) in ascending key order."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def clear(self) -> None:
        """Drop everything (after a successful flush)."""
        self._entries.clear()


def _check_key(key: bytes) -> None:
    if not isinstance(key, bytes):
        raise KVStoreError(f"keys must be bytes, got {type(key).__name__}")
    if not key:
        raise KVStoreError("empty keys are not allowed")
