"""Fault-injecting simulated storage for crash-recovery testing.

:class:`SimulatedStorage` is an in-memory file system with the one
property real durability code cares about and ordinary fakes lack: it
distinguishes **buffered** bytes (written, visible to readers, but
held in the OS page cache) from **fsynced** bytes (forced to the
platter). A simulated crash keeps every file's synced prefix and
replaces the unsynced suffix with a deterministically-seeded *torn
tail* — a partial prefix of the buffered bytes, optionally followed by
garbage — which is exactly the failure surface torn-write/partial-
fsync bugs live on.

Semantics, chosen to mirror a journaling file system:

* **Data pages** are at risk: only :meth:`fsync` makes appended bytes
  durable. Readers always see buffered data (the page cache serves
  writes-in-flight).
* **Metadata is journaled**: create, delete, and rename are ordered
  and durable once the call returns. :meth:`write_atomic` (write temp,
  fsync, rename) is therefore all-or-nothing — after a crash the file
  holds either its old content or the complete new content, never a
  prefix.
* **Crash points** are injected with :meth:`plan_crash`: trigger at
  the Nth occurrence of a labeled operation (``wal-append``,
  ``fsync``, ``flush``, ``compaction``, ``manifest-commit``, ...) or
  at the Nth mutating storage op overall. The op raises
  :class:`~repro.errors.SimulatedCrashError` *without* taking effect
  and the storage freezes until :meth:`restart`.

The torn tail is a pure function of ``(seed, restart count, file
name)``, so a crash matrix run is bit-reproducible under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, KVStoreError, SimulatedCrashError
from repro.simulation.seeds import rng_for

#: Seed-path label for torn-tail randomness (fixed constant — part of
#: the reproducibility contract, never change it).
_TORN_TAIL_LABEL = 0x70A4

#: Max garbage bytes appended to a torn tail (a partial sector of
#: whatever the in-flight write was carrying).
_MAX_GARBAGE = 8


@dataclass(frozen=True)
class CrashPoint:
    """When to crash: the ``at``-th occurrence of ``label`` (1-based),
    or the ``at``-th mutating storage op overall when ``label`` is
    None. Occurrences are counted from the start of the current
    storage lifetime (counts reset at :meth:`SimulatedStorage.restart`).
    """

    at: int
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ConfigurationError("crash point 'at' must be >= 1")


class _File:
    """One simulated file: buffered bytes + durable prefix length."""

    __slots__ = ("data", "synced")

    def __init__(self, data: bytes = b"", synced: int = 0):
        self.data = bytearray(data)
        self.synced = synced


class SimulatedStorage:
    """An in-memory file system with fsync semantics and crash points."""

    def __init__(self, seed: int = 0, crash_plan: Optional[CrashPoint] = None):
        self.seed = seed
        self._files: Dict[str, _File] = {}
        self._plan = crash_plan
        self._label_counts: Dict[str, int] = {}
        self.crashed = False
        #: Completed restarts (crash lifetimes survived).
        self.restarts = 0
        #: Mutating ops this lifetime (what ``CrashPoint(label=None)``
        #: counts).
        self.op_count = 0
        self.fsync_count = 0
        self.bytes_written = 0

    # -- crash machinery ----------------------------------------------------

    def plan_crash(
        self, at: int, label: Optional[str] = None
    ) -> CrashPoint:
        """Arm a crash at the ``at``-th occurrence of ``label`` (or at
        the ``at``-th mutating op overall when ``label`` is None).
        Occurrences are counted from the start of the current storage
        lifetime, so arm the plan before driving the workload."""
        plan = CrashPoint(at=at, label=label)
        self._plan = plan
        return plan

    def crash(self) -> None:
        """Crash immediately (manual trigger, e.g. a cluster killing a
        node's process). Freezes the storage; call :meth:`restart`."""
        self.crashed = True

    def _check_live(self) -> None:
        if self.crashed:
            raise KVStoreError(
                "storage is crashed; restart() it before further ops"
            )

    def _op(self, label: str) -> None:
        """Count one mutating op; fire the crash plan if it matches.

        A triggered crash raises *before* the op takes effect — the
        most adversarial interleaving (the op's bytes never reached
        even the page cache)."""
        self._check_live()
        self.op_count += 1
        self._label_counts[label] = self._label_counts.get(label, 0) + 1
        plan = self._plan
        if plan is None:
            return
        hit = (
            self.op_count == plan.at
            if plan.label is None
            else (
                plan.label == label
                and self._label_counts[label] == plan.at
            )
        )
        if hit:
            self.crash()
            raise SimulatedCrashError(
                f"injected crash at {label!r} "
                f"(occurrence {self._label_counts[label]}, "
                f"storage op {self.op_count})"
            )

    def restart(self) -> List[str]:
        """Apply crash semantics and bring the storage back.

        Every file keeps its synced prefix; the unsynced suffix is
        replaced by a deterministic torn tail — a random-length prefix
        of the buffered bytes, optionally followed by 1–8 garbage
        bytes (the partial sector an interrupted write left behind).
        Returns the names of files that lost or gained bytes.
        """
        if not self.crashed:
            raise KVStoreError("restart() without a crash")
        rng = rng_for(self.seed, _TORN_TAIL_LABEL, self.restarts)
        torn: List[str] = []
        for name in sorted(self._files):
            handle = self._files[name]
            if handle.synced >= len(handle.data):
                continue
            suffix = len(handle.data) - handle.synced
            keep = rng.randrange(suffix + 1)
            del handle.data[handle.synced + keep :]
            if rng.random() < 0.5:
                handle.data.extend(
                    rng.randrange(256)
                    for _ in range(rng.randrange(1, _MAX_GARBAGE + 1))
                )
            # Whatever survived the crash is, by definition, on disk.
            handle.synced = len(handle.data)
            torn.append(name)
        self.crashed = False
        self.restarts += 1
        self.op_count = 0
        self._label_counts.clear()
        self._plan = None
        return torn

    # -- mutating ops (all labeled, all crash-point eligible) ---------------

    def append(self, name: str, data: bytes, label: str = "append") -> None:
        """Buffered append (page cache only until :meth:`fsync`)."""
        self._op(label)
        handle = self._files.get(name)
        if handle is None:
            handle = self._files[name] = _File()
        handle.data.extend(data)
        self.bytes_written += len(data)

    def fsync(self, name: str, label: str = "fsync") -> None:
        """Force ``name``'s buffered bytes to durable storage."""
        self._op(label)
        handle = self._require(name)
        handle.synced = len(handle.data)
        self.fsync_count += 1

    def write_atomic(
        self, name: str, data: bytes, label: str = "atomic-write"
    ) -> None:
        """Write-then-rename: on return the full new content is
        durable; a crash at this op leaves the old content intact."""
        self._op(label)
        self._files[name] = _File(bytes(data), synced=len(data))
        self.bytes_written += len(data)

    def rename(self, old: str, new: str, label: str = "rename") -> None:
        """Atomic rename (journaled metadata: durable, all-or-nothing)."""
        self._op(label)
        handle = self._require(old)
        del self._files[old]
        self._files[new] = handle

    def delete(self, name: str, label: str = "delete") -> None:
        """Remove a file (journaled metadata: durable on return)."""
        self._op(label)
        self._require(name)
        del self._files[name]

    # -- reads / introspection (never crash-point eligible) -----------------

    def read(self, name: str) -> bytes:
        """Full buffered content (the page cache serves unsynced data)."""
        self._check_live()
        return bytes(self._require(name).data)

    def exists(self, name: str) -> bool:
        """True when ``name`` exists in this storage."""
        self._check_live()
        return name in self._files

    def list(self, prefix: str = "") -> List[str]:
        """Sorted names of files starting with ``prefix``."""
        self._check_live()
        return sorted(n for n in self._files if n.startswith(prefix))

    def size(self, name: str) -> int:
        """Current size of ``name`` in bytes."""
        self._check_live()
        return len(self._require(name).data)

    def unsynced_bytes(self, name: str) -> int:
        """Bytes of ``name`` that a crash right now could lose/tear."""
        self._check_live()
        handle = self._require(name)
        return len(handle.data) - handle.synced

    def total_unsynced(self, names: Optional[Iterable[str]] = None) -> int:
        """Crash-vulnerable bytes summed over ``names`` (default: all files)."""
        self._check_live()
        targets = self.list() if names is None else names
        return sum(self.unsynced_bytes(name) for name in targets)

    def _require(self, name: str) -> _File:
        handle = self._files.get(name)
        if handle is None:
            raise KVStoreError(f"no such file {name!r}")
        return handle

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "live"
        return (
            f"SimulatedStorage(files={len(self._files)}, {state}, "
            f"restarts={self.restarts})"
        )
