"""Immutable sorted string tables (SSTs) and their data blocks.

An SST is the unit that receives an **uncoordinated unique ID** — this
is exactly the RocksDB deployment the paper's introduction describes.
Block-cache entries are keyed by ``(file_id, block_no)``, so if two SSTs
anywhere in the fleet ever share a ``file_id``, a reader of one file can
be served a cached block of the other: silent corruption.

Each SST also carries a ``fingerprint``: a process-global sequence
number that is unique *by construction* (it is what a coordinated
system would use). It exists purely as ground truth for the corruption
auditor — the data path never routes by it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE

#: Process-global ground-truth sequence for corruption auditing.
_fingerprint_counter = itertools.count(1)

#: Durable SST file names (fingerprint-keyed: unique by construction,
#: unlike the uncoordinated ``file_id`` the data path routes by).
SST_PREFIX = "sst-"
SST_SUFFIX = ".sst"

#: Magic + format version for :meth:`SSTable.to_bytes`.
_SST_MAGIC = b"SS\x01"


def sst_filename(fingerprint: int) -> str:
    """Storage file name for a persisted SST.

    Keyed by the *fingerprint* (unique by construction), not the
    uncoordinated ``file_id`` — two colliding SSTs must still occupy
    distinct files on disk, exactly as in the real system, where the
    collision happens in the shared cache, not the file system.
    """
    return f"{SST_PREFIX}{fingerprint:012d}{SST_SUFFIX}"


def _encode_entries(entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """Length-prefixed flat encoding of (key, value) pairs."""
    parts: List[bytes] = []
    for key, value in entries:
        parts.append(len(key).to_bytes(4, "big"))
        parts.append(key)
        parts.append(len(value).to_bytes(4, "big"))
        parts.append(value)
    return b"".join(parts)


def _decode_entries(payload: bytes) -> List[Tuple[bytes, bytes]]:
    """Inverse of :func:`_encode_entries`."""
    entries: List[Tuple[bytes, bytes]] = []
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + 4 > size:
            raise KVStoreError("truncated block payload (key length)")
        key_len = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        key = payload[offset : offset + key_len]
        offset += key_len
        if offset + 4 > size:
            raise KVStoreError("truncated block payload (value length)")
        value_len = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        value = payload[offset : offset + value_len]
        offset += value_len
        if len(key) != key_len or len(value) != value_len:
            raise KVStoreError("truncated block payload (record body)")
        entries.append((key, value))
    return entries


@dataclass(frozen=True)
class Block:
    """One immutable data block: an encoded, sorted run of entries."""

    payload: bytes
    first_key: bytes
    last_key: bytes
    #: Ground-truth owner (SST fingerprint) for the corruption auditor.
    owner_fingerprint: int
    block_no: int

    def entries(self) -> List[Tuple[bytes, bytes]]:
        """Decode the block's (key, value) pairs."""
        return _decode_entries(self.payload)

    def get(self, key: bytes) -> Optional[bytes]:
        """Binary-search the block for ``key``."""
        entries = self.entries()
        keys = [k for k, _ in entries]
        index = bisect.bisect_left(keys, key)
        if index < len(entries) and keys[index] == key:
            return entries[index][1]
        return None


class SSTable:
    """An immutable sorted file with index, bloom filter, and a file ID.

    Build with :meth:`from_entries`; entries must be strictly
    ascending by key (duplicates are a builder bug).
    """

    def __init__(
        self,
        file_id: int,
        blocks: List[Block],
        index_keys: List[bytes],
        bloom: Optional[BloomFilter],
        fingerprint: int,
        entry_count: int,
        bloom_bits_per_key: int = 0,
    ):
        self.file_id = file_id
        self.blocks = blocks
        self._index_keys = index_keys  # last key of each block
        self.bloom = bloom
        self.fingerprint = fingerprint
        self.entry_count = entry_count
        self.bloom_bits_per_key = bloom_bits_per_key

    @classmethod
    def from_entries(
        cls,
        file_id: int,
        entries: Sequence[Tuple[bytes, bytes]],
        block_entries: int,
        bloom_bits_per_key: int = 10,
    ) -> "SSTable":
        """Build an SST from a sorted, de-duplicated entry sequence."""
        if not entries:
            raise KVStoreError("cannot build an empty SSTable")
        for (k1, _), (k2, _) in zip(entries, entries[1:]):
            if k1 >= k2:
                raise KVStoreError(
                    f"entries must be strictly ascending: {k1!r} >= {k2!r}"
                )
        fingerprint = next(_fingerprint_counter)
        blocks: List[Block] = []
        index_keys: List[bytes] = []
        for block_no, start in enumerate(range(0, len(entries), block_entries)):
            chunk = list(entries[start : start + block_entries])
            blocks.append(
                Block(
                    payload=_encode_entries(chunk),
                    first_key=chunk[0][0],
                    last_key=chunk[-1][0],
                    owner_fingerprint=fingerprint,
                    block_no=block_no,
                )
            )
            index_keys.append(chunk[-1][0])
        bloom = None
        if bloom_bits_per_key > 0:
            bloom = BloomFilter(len(entries), bloom_bits_per_key)
            bloom.add_all(k for k, _ in entries)
        return cls(
            file_id=file_id,
            blocks=blocks,
            index_keys=index_keys,
            bloom=bloom,
            fingerprint=fingerprint,
            entry_count=len(entries),
            bloom_bits_per_key=bloom_bits_per_key,
        )

    # -- durable round-trip --------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for durable storage, preserving identity.

        Both the uncoordinated ``file_id`` *and* the ground-truth
        ``fingerprint`` survive the round-trip — a reloaded SST must
        keep claiming its original cache blocks, or every reopen would
        manufacture false cache-corruption signals.
        """
        id_bytes = self.file_id.to_bytes(
            max(1, (self.file_id.bit_length() + 7) // 8), "big"
        )
        parts: List[bytes] = [
            _SST_MAGIC,
            self.fingerprint.to_bytes(8, "big"),
            len(id_bytes).to_bytes(2, "big"),
            id_bytes,
            self.bloom_bits_per_key.to_bytes(4, "big"),
            len(self.blocks).to_bytes(4, "big"),
        ]
        for block in self.blocks:
            parts.append(len(block.payload).to_bytes(4, "big"))
            parts.append(block.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SSTable":
        """Inverse of :meth:`to_bytes`.

        Blocks are rebuilt on their original boundaries (cache
        granularity is part of the file, not the reader) and the bloom
        filter is reconstructed from the decoded keys.
        """
        size = len(payload)
        if payload[: len(_SST_MAGIC)] != _SST_MAGIC:
            raise KVStoreError("bad SST magic/version")
        offset = len(_SST_MAGIC)
        if offset + 14 > size:
            raise KVStoreError("truncated SST header")
        fingerprint = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        id_len = int.from_bytes(payload[offset : offset + 2], "big")
        offset += 2
        if id_len > size - offset:
            raise KVStoreError("SST file_id length exceeds payload")
        file_id = int.from_bytes(payload[offset : offset + id_len], "big")
        offset += id_len
        if offset + 8 > size:
            raise KVStoreError("truncated SST header")
        bloom_bits_per_key = int.from_bytes(
            payload[offset : offset + 4], "big"
        )
        offset += 4
        num_blocks = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if num_blocks == 0:
            raise KVStoreError("SST with no blocks")
        blocks: List[Block] = []
        index_keys: List[bytes] = []
        entry_count = 0
        all_keys: List[bytes] = []
        for block_no in range(num_blocks):
            if offset + 4 > size:
                raise KVStoreError("truncated SST block length")
            block_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            if block_len > size - offset:
                raise KVStoreError("SST block length exceeds payload")
            body = payload[offset : offset + block_len]
            offset += block_len
            entries = _decode_entries(body)
            if not entries:
                raise KVStoreError("empty SST block")
            blocks.append(
                Block(
                    payload=body,
                    first_key=entries[0][0],
                    last_key=entries[-1][0],
                    owner_fingerprint=fingerprint,
                    block_no=block_no,
                )
            )
            index_keys.append(entries[-1][0])
            entry_count += len(entries)
            all_keys.extend(k for k, _ in entries)
        if offset != size:
            raise KVStoreError("trailing bytes after SST blocks")
        bloom = None
        if bloom_bits_per_key > 0:
            bloom = BloomFilter(entry_count, bloom_bits_per_key)
            bloom.add_all(all_keys)
        return cls(
            file_id=file_id,
            blocks=blocks,
            index_keys=index_keys,
            bloom=bloom,
            fingerprint=fingerprint,
            entry_count=entry_count,
            bloom_bits_per_key=bloom_bits_per_key,
        )

    @property
    def min_key(self) -> bytes:
        return self.blocks[0].first_key

    @property
    def max_key(self) -> bytes:
        return self.blocks[-1].last_key

    def key_in_range(self, key: bytes) -> bool:
        """Does ``key`` fall inside this file's [min_key, max_key]?"""
        return self.min_key <= key <= self.max_key

    def overlaps(self, other: "SSTable") -> bool:
        """Do the key ranges of the two files intersect?"""
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def block_for_key(self, key: bytes) -> Optional[int]:
        """Index of the block that may contain ``key``, or None."""
        if not self.key_in_range(key):
            return None
        index = bisect.bisect_left(self._index_keys, key)
        if index >= len(self.blocks):
            return None
        return index

    def get_direct(self, key: bytes) -> Optional[bytes]:
        """Point lookup bypassing any cache (always correct)."""
        block_no = self.block_for_key(key)
        if block_no is None:
            return None
        return self.blocks[block_no].get(key)

    def iter_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries in key order (tombstones included)."""
        for block in self.blocks:
            yield from block.entries()

    def iter_entries_from(self, start: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Entries with key >= ``start`` in key order (tombstones
        included). Positions by block-index bisect plus an in-block
        bisect, so a seeked scan decodes only the blocks it reads."""
        block_index = bisect.bisect_left(self._index_keys, start)
        for block in self.blocks[block_index:]:
            entries = block.entries()
            if entries and entries[0][0] < start:
                keys = [key for key, _ in entries]
                entries = entries[bisect.bisect_left(keys, start):]
            yield from entries

    def live_entry_count(self) -> int:
        """Entries that are not tombstones."""
        return sum(1 for _, v in self.iter_entries() if v != TOMBSTONE)

    def __repr__(self) -> str:
        return (
            f"SSTable(id={self.file_id}, entries={self.entry_count}, "
            f"range=[{self.min_key!r}..{self.max_key!r}])"
        )
