"""Immutable sorted string tables (SSTs) and their data blocks.

An SST is the unit that receives an **uncoordinated unique ID** — this
is exactly the RocksDB deployment the paper's introduction describes.
Block-cache entries are keyed by ``(file_id, block_no)``, so if two SSTs
anywhere in the fleet ever share a ``file_id``, a reader of one file can
be served a cached block of the other: silent corruption.

Each SST also carries a ``fingerprint``: a process-global sequence
number that is unique *by construction* (it is what a coordinated
system would use). It exists purely as ground truth for the corruption
auditor — the data path never routes by it.

Block format v2 (the default since PR 8) makes point lookups
decode-free. A block payload is::

    records   (klen:u32 | key | vlen:u32 | value) × count
    offsets   count × u32   — record start offsets, ascending from 0
    trailer   count:u32 | magic:4

``Block.get`` binary-searches the offset table and slices out only the
matching record — no full decode, no per-lookup key-list allocation.
The offset view is parsed (and strictly validated against the record
bytes — a flipped or truncated trailer raises
:class:`~repro.errors.KVStoreError` instead of misreading) once per
block and memoized. Format-v1 payloads (records only, no trailer) stay
readable: their offset view is built by a one-time scan.
"""

from __future__ import annotations

import bisect
import itertools
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE

#: Process-global ground-truth sequence for corruption auditing.
_fingerprint_counter = itertools.count(1)

#: Durable SST file names (fingerprint-keyed: unique by construction,
#: unlike the uncoordinated ``file_id`` the data path routes by).
SST_PREFIX = "sst-"
SST_SUFFIX = ".sst"

#: Magic + format version prefixes for :meth:`SSTable.to_bytes`.
_SST_MAGIC_V1 = b"SS\x01"
_SST_MAGIC_V2 = b"SS\x02"

#: Trailer magic closing a format-v2 block payload.
_BLOCK_MAGIC = b"BK\xe2\x02"
#: count:u32 + magic
_TRAILER_FIXED = 4 + len(_BLOCK_MAGIC)


def sst_filename(fingerprint: int) -> str:
    """Storage file name for a persisted SST.

    Keyed by the *fingerprint* (unique by construction), not the
    uncoordinated ``file_id`` — two colliding SSTs must still occupy
    distinct files on disk, exactly as in the real system, where the
    collision happens in the shared cache, not the file system.
    """
    return f"{SST_PREFIX}{fingerprint:012d}{SST_SUFFIX}"


def _encode_records(
    entries: Sequence[Tuple[bytes, bytes]]
) -> Tuple[List[bytes], List[int]]:
    """Record region parts + the start offset of each record."""
    parts: List[bytes] = []
    offsets: List[int] = []
    position = 0
    for key, value in entries:
        offsets.append(position)
        parts.append(len(key).to_bytes(4, "big"))
        parts.append(key)
        parts.append(len(value).to_bytes(4, "big"))
        parts.append(value)
        position += 8 + len(key) + len(value)
    return parts, offsets


def _encode_entries(entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
    """Format-v2 encoding of (key, value) pairs (offset-index trailer)."""
    parts, offsets = _encode_records(entries)
    parts.append(struct.pack(f">{len(offsets)}I", *offsets))
    parts.append(len(offsets).to_bytes(4, "big"))
    parts.append(_BLOCK_MAGIC)
    return b"".join(parts)


def _scan_v1_offsets(payload: bytes) -> List[int]:
    """Offset table of a v1 payload (records only), by linear scan."""
    offsets: List[int] = []
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + 4 > size:
            raise KVStoreError("truncated block payload (key length)")
        key_len = int.from_bytes(payload[offset : offset + 4], "big")
        if key_len == 0:
            # Legit blocks never hold empty keys (the memtable rejects
            # them); a zero here means we are reading a v2 offset table
            # (offsets[0] is always 0) or other non-record bytes.
            raise KVStoreError("corrupt block payload (empty key)")
        if offset + 8 + key_len > size:
            raise KVStoreError("truncated block payload (key body)")
        value_len = int.from_bytes(
            payload[offset + 4 + key_len : offset + 8 + key_len], "big"
        )
        if offset + 8 + key_len + value_len > size:
            raise KVStoreError("truncated block payload (record body)")
        offsets.append(offset)
        offset += 8 + key_len + value_len
    return offsets


def _parse_v2_offsets(payload: bytes) -> List[int]:
    """Parse + strictly validate a v2 payload's offset table.

    The stored table must agree exactly with the record walk (each
    record's length prefixes tile the record region): any bit flip or
    truncation in the trailer — offsets, count, or magic — fails
    loudly here rather than sending a binary search to a wrong slice.
    """
    size = len(payload)
    if size < _TRAILER_FIXED or payload[-len(_BLOCK_MAGIC):] != _BLOCK_MAGIC:
        raise KVStoreError("block payload lacks the v2 trailer magic")
    count = int.from_bytes(
        payload[size - _TRAILER_FIXED : size - len(_BLOCK_MAGIC)], "big"
    )
    if count == 0:
        if size != _TRAILER_FIXED:
            raise KVStoreError("v2 block with no records but a body")
        return []
    body_size = size - _TRAILER_FIXED - 4 * count
    if body_size < 8 * count:  # every record costs >= 8 bytes
        raise KVStoreError("v2 block offset table exceeds payload")
    offsets = list(
        struct.unpack_from(f">{count}I", payload, body_size)
    )
    # Walk the record region and require exact agreement.
    position = 0
    for index in range(count):
        if offsets[index] != position:
            raise KVStoreError(
                f"v2 block offset[{index}] is {offsets[index]}, "
                f"record walk says {position}"
            )
        if position + 8 > body_size:
            raise KVStoreError("v2 block record header out of bounds")
        key_len = int.from_bytes(payload[position : position + 4], "big")
        if position + 8 + key_len > body_size:
            raise KVStoreError("v2 block key out of bounds")
        value_len = int.from_bytes(
            payload[position + 4 + key_len : position + 8 + key_len],
            "big",
        )
        position += 8 + key_len + value_len
    if position != body_size:
        raise KVStoreError("v2 block records do not tile the payload")
    return offsets


def _decode_entries(payload: bytes) -> List[Tuple[bytes, bytes]]:
    """Decode a block payload (v2 trailer or legacy v1 records).

    Sniffs the trailer magic, but the magic is 4 arbitrary-looking
    bytes that a legacy record's *value* can legitimately end with —
    so a payload that looks v2 yet fails the strict offset validation
    is retried as v1 before giving up. Contexts that know the format
    (``Block.format``, the SST container version) decode directly and
    never sniff.
    """
    if (
        len(payload) >= _TRAILER_FIXED
        and payload[-len(_BLOCK_MAGIC):] == _BLOCK_MAGIC
    ):
        try:
            offsets = _parse_v2_offsets(payload)
        except KVStoreError:
            return [
                _record_at(payload, offset)
                for offset in _scan_v1_offsets(payload)
            ]
        return [_record_at(payload, offset) for offset in offsets]
    entries: List[Tuple[bytes, bytes]] = []
    for offset in _scan_v1_offsets(payload):
        entries.append(_record_at(payload, offset))
    return entries


def _key_at(payload: bytes, offset: int) -> bytes:
    # Hot zero-decode read path: offsets only ever come from
    # _parse_v2_offsets/_scan_v1_offsets, which validate every record's
    # length prefixes against the payload size before handing them out.
    key_len = int.from_bytes(payload[offset : offset + 4], "big")
    return payload[offset + 4 : offset + 4 + key_len]  # noqa: REPRO201 -- record pre-validated by the offset scan


def _record_at(payload: bytes, offset: int) -> Tuple[bytes, bytes]:
    # Same contract as _key_at: callers pass offsets produced by the
    # validating scans, so the length prefixes are known in-bounds.
    key_len = int.from_bytes(payload[offset : offset + 4], "big")  # noqa: REPRO201 -- record pre-validated by the offset scan
    offset += 4
    key = payload[offset : offset + key_len]  # noqa: REPRO201 -- record pre-validated by the offset scan
    offset += key_len
    value_len = int.from_bytes(payload[offset : offset + 4], "big")  # noqa: REPRO201 -- record pre-validated by the offset scan
    offset += 4
    return key, payload[offset : offset + value_len]  # noqa: REPRO201 -- record pre-validated by the offset scan


@dataclass(frozen=True)
class Block:
    """One immutable data block: an encoded, sorted run of entries.

    ``format`` names the payload encoding (2 = offset-index trailer,
    1 = legacy records-only); it travels with the block, so cached
    blocks served across files decode by their *own* format. The
    offset view is parsed lazily and memoized — repeated ``get`` calls
    and ``entries_from`` seeks reuse it.
    """

    payload: bytes
    first_key: bytes
    last_key: bytes
    #: Ground-truth owner (SST fingerprint) for the corruption auditor.
    owner_fingerprint: int
    block_no: int
    format: int = 2
    _offsets: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def offsets(self) -> Tuple[int, ...]:
        """Record start offsets (parsed once, then memoized)."""
        cached = self._offsets
        if cached is None:
            parse = _parse_v2_offsets if self.format == 2 else _scan_v1_offsets
            cached = tuple(parse(self.payload))
            object.__setattr__(self, "_offsets", cached)
        return cached

    def _install_offsets(self, offsets: Sequence[int]) -> None:
        """Builder fast path: offsets known at encode time."""
        object.__setattr__(self, "_offsets", tuple(offsets))

    @property
    def entry_count(self) -> int:
        """Number of records, without decoding them."""
        return len(self.offsets())

    @property
    def body_size(self) -> int:
        """Bytes of the record region (payload minus any trailer)."""
        if self.format == 1:
            return len(self.payload)
        offsets = self.offsets()
        return len(self.payload) - _TRAILER_FIXED - 4 * len(offsets)

    def entries(self) -> List[Tuple[bytes, bytes]]:
        """Decode the block's (key, value) pairs."""
        payload = self.payload
        return [_record_at(payload, offset) for offset in self.offsets()]

    def key_at(self, index: int) -> bytes:
        """The key of record ``index`` (slices only the key bytes)."""
        return _key_at(self.payload, self.offsets()[index])

    def _bisect_left(self, key: bytes) -> int:
        """First record index whose key is >= ``key``."""
        offsets = self.offsets()
        payload = self.payload
        from_bytes = int.from_bytes
        lo, hi = 0, len(offsets)
        while lo < hi:
            mid = (lo + hi) // 2
            off = offsets[mid]
            key_len = from_bytes(payload[off : off + 4], "big")
            if payload[off + 4 : off + 4 + key_len] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: bytes) -> Optional[bytes]:
        """Binary-search the offset index; slice out only the match."""
        offsets = self.offsets()
        index = self._bisect_left(key)
        if index >= len(offsets):
            return None
        payload = self.payload
        offset = offsets[index]
        key_len = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if payload[offset : offset + key_len] != key:
            return None
        offset += key_len
        value_len = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        return payload[offset : offset + value_len]

    def entries_from(self, start: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Records with key >= ``start``, positioned by offset bisect."""
        offsets = self.offsets()
        payload = self.payload
        for index in range(self._bisect_left(start), len(offsets)):
            yield _record_at(payload, offsets[index])


class SSTable:
    """An immutable sorted file with index, bloom filter, and a file ID.

    Build with :meth:`from_entries`; entries must be strictly
    ascending by key (duplicates are a builder bug).
    """

    def __init__(
        self,
        file_id: int,
        blocks: List[Block],
        index_keys: List[bytes],
        bloom: Optional[BloomFilter],
        fingerprint: int,
        entry_count: int,
        bloom_bits_per_key: int = 0,
        live_entries: Optional[int] = None,
    ):
        self.file_id = file_id
        self.blocks = blocks
        self._index_keys = index_keys  # last key of each block
        self.bloom = bloom
        self.fingerprint = fingerprint
        self.entry_count = entry_count
        self.bloom_bits_per_key = bloom_bits_per_key
        #: Key range as plain attributes — ``key_in_range`` runs once
        #: per live file per point lookup, and the blocks (hence the
        #: range) never change after construction.
        self.min_key = blocks[0].first_key if blocks else b""
        self.max_key = blocks[-1].last_key if blocks else b""
        #: Non-tombstone entries, fixed at build time (the file is
        #: immutable) so size queries never decode blocks.
        if live_entries is None:
            live_entries = sum(
                1 for _, v in self.iter_entries() if v != TOMBSTONE
            )
        self.live_entries = live_entries

    @classmethod
    def from_entries(
        cls,
        file_id: int,
        entries: Sequence[Tuple[bytes, bytes]],
        block_entries: int,
        bloom_bits_per_key: int = 10,
    ) -> "SSTable":
        """Build an SST from a sorted, de-duplicated entry sequence."""
        if not entries:
            raise KVStoreError("cannot build an empty SSTable")
        live = 0
        previous: Optional[bytes] = None
        for key, value in entries:
            if previous is not None and previous >= key:
                raise KVStoreError(
                    f"entries must be strictly ascending: "
                    f"{previous!r} >= {key!r}"
                )
            previous = key
            if value != TOMBSTONE:
                live += 1
        fingerprint = next(_fingerprint_counter)
        blocks: List[Block] = []
        index_keys: List[bytes] = []
        for block_no, start in enumerate(range(0, len(entries), block_entries)):
            chunk = list(entries[start : start + block_entries])
            parts, offsets = _encode_records(chunk)
            parts.append(struct.pack(f">{len(offsets)}I", *offsets))
            parts.append(len(offsets).to_bytes(4, "big"))
            parts.append(_BLOCK_MAGIC)
            block = Block(
                payload=b"".join(parts),
                first_key=chunk[0][0],
                last_key=chunk[-1][0],
                owner_fingerprint=fingerprint,
                block_no=block_no,
            )
            block._install_offsets(offsets)
            blocks.append(block)
            index_keys.append(chunk[-1][0])
        bloom = None
        if bloom_bits_per_key > 0:
            bloom = BloomFilter(len(entries), bloom_bits_per_key)
            bloom.add_all(k for k, _ in entries)
        return cls(
            file_id=file_id,
            blocks=blocks,
            index_keys=index_keys,
            bloom=bloom,
            fingerprint=fingerprint,
            entry_count=len(entries),
            bloom_bits_per_key=bloom_bits_per_key,
            live_entries=live,
        )

    # -- durable round-trip --------------------------------------------------

    def to_bytes(self, format_version: int = 2) -> bytes:
        """Serialize for durable storage, preserving identity.

        Both the uncoordinated ``file_id`` *and* the ground-truth
        ``fingerprint`` survive the round-trip — a reloaded SST must
        keep claiming its original cache blocks, or every reopen would
        manufacture false cache-corruption signals.

        Version 2 (default) persists the bloom filter's bit array and
        the build-time live-entry count, so reopening neither re-hashes
        every key nor decodes any block. ``format_version=1`` writes
        the legacy layout (records-only blocks, no bloom) — kept for
        compatibility tests and the reopen-cost benchmark.
        """
        if format_version not in (1, 2):
            raise KVStoreError(
                f"unknown SST format version {format_version!r}"
            )
        id_bytes = self.file_id.to_bytes(
            max(1, (self.file_id.bit_length() + 7) // 8), "big"
        )
        if format_version == 1:
            parts: List[bytes] = [
                _SST_MAGIC_V1,
                self.fingerprint.to_bytes(8, "big"),
                len(id_bytes).to_bytes(2, "big"),
                id_bytes,
                self.bloom_bits_per_key.to_bytes(4, "big"),
                len(self.blocks).to_bytes(4, "big"),
            ]
            for block in self.blocks:
                body = block.payload[: block.body_size]
                parts.append(len(body).to_bytes(4, "big"))
                parts.append(body)
            return b"".join(parts)
        bloom_bytes = b"" if self.bloom is None else self.bloom.to_bytes()
        parts = [
            _SST_MAGIC_V2,
            self.fingerprint.to_bytes(8, "big"),
            len(id_bytes).to_bytes(2, "big"),
            id_bytes,
            self.bloom_bits_per_key.to_bytes(4, "big"),
            self.live_entries.to_bytes(8, "big"),
            len(bloom_bytes).to_bytes(4, "big"),
            bloom_bytes,
            len(self.blocks).to_bytes(4, "big"),
        ]
        for block in self.blocks:
            if block.format != 2:
                # Reloaded v1 blocks upgrade on the way out: append the
                # trailer so the persisted file is uniformly v2.
                payload = _encode_entries(block.entries())
            else:
                payload = block.payload
            parts.append(len(payload).to_bytes(4, "big"))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SSTable":
        """Inverse of :meth:`to_bytes` (either format version).

        Blocks are rebuilt on their original boundaries (cache
        granularity is part of the file, not the reader). A v2 file
        reopens decode-free: the bloom filter deserializes from its
        bit array, the live-entry count comes from the header, and
        per-block bookkeeping (first/last key, entry count) needs only
        the validated offset table. A v1 file decodes every block and
        re-hashes every key, exactly as it always did.
        """
        magic = payload[: len(_SST_MAGIC_V2)]
        if magic == _SST_MAGIC_V1:
            return cls._from_bytes_v1(payload)
        if magic != _SST_MAGIC_V2:
            raise KVStoreError("bad SST magic/version")
        size = len(payload)
        offset = len(_SST_MAGIC_V2)
        if offset + 10 > size:
            raise KVStoreError("truncated SST header")
        fingerprint = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        id_len = int.from_bytes(payload[offset : offset + 2], "big")
        offset += 2
        if id_len > size - offset:
            raise KVStoreError("SST file_id length exceeds payload")
        file_id = int.from_bytes(payload[offset : offset + id_len], "big")
        offset += id_len
        if offset + 16 > size:
            raise KVStoreError("truncated SST header")
        bloom_bits_per_key = int.from_bytes(
            payload[offset : offset + 4], "big"
        )
        offset += 4
        live_entries = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        bloom_len = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if bloom_len > size - offset:
            raise KVStoreError("SST bloom length exceeds payload")
        bloom = None
        if bloom_len:
            bloom = BloomFilter.from_bytes(
                payload[offset : offset + bloom_len]
            )
        offset += bloom_len
        if offset + 4 > size:
            raise KVStoreError("truncated SST block count")
        num_blocks = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if num_blocks == 0:
            raise KVStoreError("SST with no blocks")
        blocks: List[Block] = []
        index_keys: List[bytes] = []
        entry_count = 0
        for block_no in range(num_blocks):
            if offset + 4 > size:
                raise KVStoreError("truncated SST block length")
            block_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            if block_len > size - offset:
                raise KVStoreError("SST block length exceeds payload")
            body = payload[offset : offset + block_len]
            offset += block_len
            block = Block(
                payload=body,
                first_key=b"",
                last_key=b"",
                owner_fingerprint=fingerprint,
                block_no=block_no,
            )
            offsets = block.offsets()  # parses + validates the trailer
            if not offsets:
                raise KVStoreError("empty SST block")
            object.__setattr__(block, "first_key", _key_at(body, offsets[0]))
            object.__setattr__(block, "last_key", _key_at(body, offsets[-1]))
            blocks.append(block)
            index_keys.append(block.last_key)
            entry_count += len(offsets)
        if offset != size:
            raise KVStoreError("trailing bytes after SST blocks")
        if live_entries > entry_count:
            raise KVStoreError(
                f"SST live-entry count {live_entries} exceeds "
                f"entry count {entry_count}"
            )
        return cls(
            file_id=file_id,
            blocks=blocks,
            index_keys=index_keys,
            bloom=bloom,
            fingerprint=fingerprint,
            entry_count=entry_count,
            bloom_bits_per_key=bloom_bits_per_key,
            live_entries=live_entries,
        )

    @classmethod
    def _from_bytes_v1(cls, payload: bytes) -> "SSTable":
        """Legacy (pre-PR-8) loader: full decode + bloom rebuild."""
        size = len(payload)
        offset = len(_SST_MAGIC_V1)
        if offset + 14 > size:
            raise KVStoreError("truncated SST header")
        fingerprint = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        id_len = int.from_bytes(payload[offset : offset + 2], "big")
        offset += 2
        if id_len > size - offset:
            raise KVStoreError("SST file_id length exceeds payload")
        file_id = int.from_bytes(payload[offset : offset + id_len], "big")
        offset += id_len
        if offset + 8 > size:
            raise KVStoreError("truncated SST header")
        bloom_bits_per_key = int.from_bytes(
            payload[offset : offset + 4], "big"
        )
        offset += 4
        num_blocks = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        if num_blocks == 0:
            raise KVStoreError("SST with no blocks")
        blocks: List[Block] = []
        index_keys: List[bytes] = []
        entry_count = 0
        all_keys: List[bytes] = []
        for block_no in range(num_blocks):
            if offset + 4 > size:
                raise KVStoreError("truncated SST block length")
            block_len = int.from_bytes(payload[offset : offset + 4], "big")
            offset += 4
            if block_len > size - offset:
                raise KVStoreError("SST block length exceeds payload")
            body = payload[offset : offset + block_len]
            offset += block_len
            # v1 container ⇒ records-only bodies: decode explicitly
            # (no trailer sniffing — a value ending with the magic
            # bytes must not derail a legacy file).
            entries = [
                _record_at(body, record_off)
                for record_off in _scan_v1_offsets(body)
            ]
            if not entries:
                raise KVStoreError("empty SST block")
            blocks.append(
                Block(
                    payload=body,
                    first_key=entries[0][0],
                    last_key=entries[-1][0],
                    owner_fingerprint=fingerprint,
                    block_no=block_no,
                    format=1,
                )
            )
            index_keys.append(entries[-1][0])
            entry_count += len(entries)
            all_keys.extend(k for k, _ in entries)
        if offset != size:
            raise KVStoreError("trailing bytes after SST blocks")
        bloom = None
        if bloom_bits_per_key > 0:
            bloom = BloomFilter(entry_count, bloom_bits_per_key)
            bloom.add_all(all_keys)
        return cls(
            file_id=file_id,
            blocks=blocks,
            index_keys=index_keys,
            bloom=bloom,
            fingerprint=fingerprint,
            entry_count=entry_count,
            bloom_bits_per_key=bloom_bits_per_key,
        )

    def key_in_range(self, key: bytes) -> bool:
        """Does ``key`` fall inside this file's [min_key, max_key]?"""
        return self.min_key <= key <= self.max_key

    def overlaps(self, other: "SSTable") -> bool:
        """Do the key ranges of the two files intersect?"""
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def block_for_key(self, key: bytes) -> Optional[int]:
        """Index of the block that may contain ``key``, or None."""
        if not self.key_in_range(key):
            return None
        index = bisect.bisect_left(self._index_keys, key)
        if index >= len(self.blocks):
            return None
        return index

    def get_direct(self, key: bytes) -> Optional[bytes]:
        """Point lookup bypassing any cache (always correct)."""
        block_no = self.block_for_key(key)
        if block_no is None:
            return None
        return self.blocks[block_no].get(key)

    def iter_entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """All entries in key order (tombstones included)."""
        for block in self.blocks:
            yield from block.entries()

    def iter_entries_from(self, start: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Entries with key >= ``start`` in key order (tombstones
        included). Positions by block-index bisect plus an in-block
        offset bisect, so a seeked scan touches only the records it
        reads — no block is fully decoded to find the start."""
        block_index = bisect.bisect_left(self._index_keys, start)
        for block in self.blocks[block_index:]:
            if block.first_key >= start:
                yield from block.entries()
            else:
                yield from block.entries_from(start)

    def live_entry_count(self) -> int:
        """Entries that are not tombstones (fixed at build time)."""
        return self.live_entries

    def audit_live_entry_count(self) -> int:
        """Recount live entries by decoding every block.

        The debug path behind :meth:`live_entry_count`'s stored answer
        — tests assert the two agree; production reads never pay it.
        """
        return sum(1 for _, v in self.iter_entries() if v != TOMBSTONE)

    def __repr__(self) -> str:
        return (
            f"SSTable(id={self.file_id}, entries={self.entry_count}, "
            f"range=[{self.min_key!r}..{self.max_key!r}])"
        )
