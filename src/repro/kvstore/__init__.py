"""MiniRocks: the RocksDB-style LSM substrate motivating the paper (§1)."""

from repro.kvstore.blockcache import BlockCache, CacheStats
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.compaction import (
    CompactionJob,
    level_file_budget,
    merge_tables,
    pick_compaction,
    run_compaction,
)
from repro.kvstore.db import DBStats, MiniRocks
from repro.kvstore.iterators import LSMIterator, iterate_db, range_count
from repro.kvstore.manifest import MANIFEST_NAME, Manifest, VersionEdit
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.options import Options, generator_factory_from_spec
from repro.kvstore.sstable import Block, SSTable, sst_filename
from repro.kvstore.storage import CrashPoint, SimulatedStorage
from repro.kvstore.wal import (
    OP_DELETE,
    OP_PUT,
    DurableWAL,
    WALRecovery,
    WriteAheadLog,
    WriteMode,
    encode_record,
    decode_record_at,
    read_segments,
    segment_name,
)

__all__ = [
    "MiniRocks",
    "DBStats",
    "LSMIterator",
    "iterate_db",
    "range_count",
    "Options",
    "generator_factory_from_spec",
    "BlockCache",
    "CacheStats",
    "BloomFilter",
    "MemTable",
    "TOMBSTONE",
    "SSTable",
    "Block",
    "Manifest",
    "VersionEdit",
    "MANIFEST_NAME",
    "sst_filename",
    "WriteAheadLog",
    "DurableWAL",
    "WriteMode",
    "WALRecovery",
    "encode_record",
    "decode_record_at",
    "read_segments",
    "segment_name",
    "SimulatedStorage",
    "CrashPoint",
    "OP_PUT",
    "OP_DELETE",
    "CompactionJob",
    "pick_compaction",
    "run_compaction",
    "merge_tables",
    "level_file_budget",
]
