"""The manifest: which SSTs are live, at which level.

A light-weight version of RocksDB's VERSION/MANIFEST machinery: an
ordered record of *version edits* (file added / file removed at level
L), with the current version materialized as per-level file lists.

L0 files may overlap each other (they are flushed memtables, newest
first); L1+ files are kept non-overlapping and sorted by min_key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import KVStoreError
from repro.kvstore.sstable import SSTable, sst_filename

#: Storage file name of the durable manifest (committed whole via
#: write-then-rename, so it is always either the old or the new state).
MANIFEST_NAME = "MANIFEST"


@dataclass(frozen=True)
class VersionEdit:
    """One manifest record."""

    action: str  # "add" | "remove"
    level: int
    file_id: int
    fingerprint: int


class Manifest:
    """Tracks live files per level plus the full edit history."""

    def __init__(self, num_levels: int):
        if num_levels < 2:
            raise KVStoreError("need at least 2 levels")
        self.num_levels = num_levels
        self._levels: List[List[SSTable]] = [[] for _ in range(num_levels)]
        self._edits: List[VersionEdit] = []
        #: Every file id this store ever assigned (for uniqueness audits).
        self.assigned_ids: List[int] = []

    # -- queries ----------------------------------------------------------

    def level(self, index: int) -> List[SSTable]:
        """Live files at ``index`` (L0 newest-first; L1+ sorted by key)."""
        return list(self._levels[index])

    def live_files(self) -> Iterator[Tuple[int, SSTable]]:
        """All (level, sst) pairs, L0 first."""
        for level_index, files in enumerate(self._levels):
            for sst in files:
                yield level_index, sst

    def file_count(self, level: Optional[int] = None) -> int:
        """Number of live files overall or at one level."""
        if level is not None:
            return len(self._levels[level])
        return sum(len(files) for files in self._levels)

    def total_entries(self) -> int:
        """Sum of entry counts over all live files."""
        return sum(sst.entry_count for _, sst in self.live_files())

    def edits(self) -> List[VersionEdit]:
        """The full edit history (oldest first)."""
        return list(self._edits)

    def files_newest_first(self) -> Iterator[SSTable]:
        """All live files in point-read precedence order.

        L0 newest-to-oldest, then L1..Lmax. For any single key, the
        files of this stream that contain it in their range are exactly
        :meth:`candidates_for_key` in the same order (non-overlapping
        L1+ levels hold at most one candidate each) — the batched
        ``multi_get`` walks this once for a whole key batch.
        """
        for files in self._levels:
            yield from files

    def candidates_for_key(self, key: bytes) -> Iterator[Tuple[int, SSTable]]:
        """Files that may contain ``key``, newest data first.

        L0 is scanned newest-to-oldest (all files, ranges overlap);
        at L1+ at most one file per level can contain the key.
        """
        for sst in self._levels[0]:
            if sst.min_key <= key <= sst.max_key:
                yield 0, sst
        for level_index in range(1, self.num_levels):
            for sst in self._levels[level_index]:
                if sst.min_key <= key <= sst.max_key:
                    yield level_index, sst
                    break  # non-overlapping: only one candidate per level

    # -- edits -------------------------------------------------------------

    def add_file(self, level: int, sst: SSTable, record_id: bool = True) -> None:
        """Install ``sst`` at ``level``. L0 prepends (newest first);
        L1+ inserts sorted and rejects overlap."""
        self._check_level(level)
        if level == 0:
            self._levels[0].insert(0, sst)
        else:
            for existing in self._levels[level]:
                if existing.overlaps(sst):
                    raise KVStoreError(
                        f"overlap at L{level}: {existing!r} vs {sst!r}"
                    )
            self._levels[level].append(sst)
            self._levels[level].sort(key=lambda s: s.min_key)
        self._edits.append(
            VersionEdit("add", level, sst.file_id, sst.fingerprint)
        )
        if record_id:
            self.assigned_ids.append(sst.file_id)

    def remove_file(self, level: int, sst: SSTable) -> None:
        """Remove a live file (by identity) from ``level``."""
        self._check_level(level)
        try:
            self._levels[level].remove(sst)
        except ValueError:
            raise KVStoreError(
                f"file {sst.file_id} not live at level {level}"
            ) from None
        self._edits.append(
            VersionEdit("remove", level, sst.file_id, sst.fingerprint)
        )

    def detach_file(self, level: int, sst: SSTable) -> None:
        """Remove for migration (the file lives on at another node)."""
        self.remove_file(level, sst)

    def attach_file(self, level: int, sst: SSTable) -> None:
        """Install a migrated file; its ID was assigned elsewhere."""
        self.add_file(level, sst, record_id=False)

    # -- durable state -----------------------------------------------------

    def encode_state(self, wal_floor: int, next_seqno: int) -> bytes:
        """Serialize the current version for a durable manifest commit.

        The state pairs the live-file set with the WAL coordinates it
        covers: segments below ``wal_floor`` are redundant with the
        listed SSTs, and recovery resumes sequence numbers at
        ``next_seqno`` even when the covering segments are long gone.
        ``assigned_ids`` rides along so cross-instance ID-uniqueness
        audits survive a reopen.
        """
        state = {
            "wal_floor": wal_floor,
            "next_seqno": next_seqno,
            "files": [
                [level, sst_filename(sst.fingerprint)]
                for level, sst in self.live_files()
            ],
            "assigned_ids": list(self.assigned_ids),
        }
        return json.dumps(state, sort_keys=True).encode("utf-8")

    @staticmethod
    def decode_state(payload: bytes) -> dict:
        """Parse and validate :meth:`encode_state` output."""
        try:
            state = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise KVStoreError(f"corrupt manifest: {exc}") from exc
        for field_name in ("wal_floor", "next_seqno", "files",
                           "assigned_ids"):
            if field_name not in state:
                raise KVStoreError(
                    f"corrupt manifest: missing {field_name!r}"
                )
        if (
            not isinstance(state["wal_floor"], int)
            or not isinstance(state["next_seqno"], int)
            or state["wal_floor"] < 0
            or state["next_seqno"] < 1
        ):
            raise KVStoreError("corrupt manifest: bad WAL coordinates")
        for entry in state["files"]:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)
            ):
                raise KVStoreError(
                    f"corrupt manifest: bad file entry {entry!r}"
                )
        return state

    def restore_assigned_ids(self, ids: List[int]) -> None:
        """Replace the assigned-ID audit trail (used at reopen, where
        files were re-attached without re-recording their IDs)."""
        self.assigned_ids = list(ids)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise KVStoreError(
                f"level {level} out of range [0, {self.num_levels})"
            )
