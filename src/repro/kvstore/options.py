"""Configuration for the MiniRocks key-value store."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.base import IDGenerator
from repro.core.registry import make_generator
from repro.errors import ConfigurationError
from repro.kvstore.wal import WriteMode

#: Builds the store's uncoordinated file-ID generator.
IDGeneratorFactory = Callable[[random.Random], IDGenerator]


def generator_factory_from_spec(
    spec: str, m: int
) -> IDGeneratorFactory:
    """Adapt an algorithm spec (``"cluster"``, ``"random"``, ...) into a
    factory suitable for :class:`Options.id_generator_factory`.
    """
    def factory(rng: random.Random) -> IDGenerator:
        return make_generator(spec, m, rng)

    return factory


@dataclass
class Options:
    """Tuning knobs for one MiniRocks instance.

    The defaults are sized for tests and simulations (hundreds of
    thousands of keys), not production workloads.
    """

    #: Flush the memtable after this many live entries.
    memtable_entries: int = 256
    #: Entries per SST data block (the block cache granularity).
    block_entries: int = 16
    #: Trigger L0 → L1 compaction at this many L0 files.
    level0_file_limit: int = 4
    #: Max files in level L is ``level0_file_limit * multiplier**L``.
    level_size_multiplier: int = 4
    #: Total number of levels (L0 .. L_max).
    num_levels: int = 5
    #: Bloom filter bits per key (0 disables blooms).
    bloom_bits_per_key: int = 10
    #: Universe size for SST file IDs (the UUIDP ``m``).
    id_universe: int = 1 << 64
    #: Factory for the uncoordinated per-instance ID generator.
    id_generator_factory: Optional[IDGeneratorFactory] = None
    #: Algorithm spec used when no explicit factory is given.
    id_algorithm: str = "cluster"
    #: Raise on detected cache corruption instead of counting silently.
    paranoid_checks: bool = False
    #: Keep the write-ahead log (disable for bulk-load simulations).
    use_wal: bool = True
    #: WAL fsync policy when the store runs on durable storage
    #: (:class:`~repro.kvstore.wal.WriteMode`); ignored without one.
    write_mode: WriteMode = WriteMode.BATCH
    #: Initial group-commit size for ``WriteMode.BATCH`` (the adaptive
    #: size floats in ``[1, 8 * wal_batch_size]``).
    wal_batch_size: int = 8
    #: On-storage SST layout for durable stores: 2 (default) persists
    #: the offset-indexed blocks, serialized bloom, and live-entry
    #: count; 1 writes the legacy pre-PR-8 layout (reopen re-decodes
    #: blocks and re-hashes every key). Both versions are always
    #: *readable*; this only selects what new flushes write.
    sst_format_version: int = 2

    def __post_init__(self) -> None:
        if self.memtable_entries < 1:
            raise ConfigurationError("memtable_entries must be >= 1")
        if self.block_entries < 1:
            raise ConfigurationError("block_entries must be >= 1")
        if self.level0_file_limit < 1:
            raise ConfigurationError("level0_file_limit must be >= 1")
        if self.num_levels < 2:
            raise ConfigurationError("num_levels must be >= 2")
        if self.id_universe < 2:
            raise ConfigurationError("id_universe must be >= 2")
        if not isinstance(self.write_mode, WriteMode):
            raise ConfigurationError(
                f"write_mode must be a WriteMode, got {self.write_mode!r}"
            )
        if self.wal_batch_size < 1:
            raise ConfigurationError("wal_batch_size must be >= 1")
        if self.sst_format_version not in (1, 2):
            raise ConfigurationError(
                f"sst_format_version must be 1 or 2, "
                f"got {self.sst_format_version!r}"
            )
        if self.id_generator_factory is None:
            self.id_generator_factory = generator_factory_from_spec(
                self.id_algorithm, self.id_universe
            )
