"""Bloom filter for SST point lookups.

Standard Bloom filter with the Kirsch–Mitzenmacher double-hashing
scheme: two independent 64-bit hashes ``h1, h2`` derived from
``blake2b`` simulate ``k`` hash functions as ``h1 + i·h2`` (mod 2^64).
This is the same construction RocksDB's full-filter blocks use.

Two probe backends share one bit layout:

* ``python`` — the portable loop over a ``bytearray``.
* ``numpy`` — batch ``add_hashes``/``may_contain_hashes`` compute every
  probe position of a whole key batch as one ``(keys, probes)`` uint64
  array op over the *same* bit array (the numpy view aliases the
  ``bytearray``), so membership answers are **bit-identical** between
  backends; only wall-clock differs. Without numpy installed the class
  degrades to the python loop (the PR-2 engine-fallback pattern).

The bit array serializes via :meth:`to_bytes`/:meth:`from_bytes` so an
SST reopen restores the filter without re-hashing every key.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, KVStoreError

try:  # soft dependency: probes degrade to the python loop
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

_MASK64 = (1 << 64) - 1

#: Magic + version prefix of :meth:`BloomFilter.to_bytes`.
_BLOOM_MAGIC = b"BF\x01"
_HEADER_LEN = len(_BLOOM_MAGIC) + 8 + 1 + 8  # + num_bits, probes, count


def numpy_available() -> bool:
    """Is the vectorized probe backend usable on this host?"""
    return _np is not None


def hash_pair(key: bytes) -> Tuple[int, int]:
    """The Kirsch–Mitzenmacher (h1, h2) pair of one key."""
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd => full cycle
    )


_hash_pair = hash_pair  # internal alias

#: Below this many keys the vectorized probe loses to per-call numpy
#: overhead (array building + ufunc dispatch); measured crossover on
#: CPython 3.11 sits near a dozen keys.
_BATCH_CUTOVER = 8


def hash_pairs(keys: Iterable[bytes]) -> List[Tuple[int, int]]:
    """Precompute the (h1, h2) pair of every key.

    Pairs depend only on the key — not on any filter's size — so one
    batch of pairs can probe many filters (the ``multi_get`` path
    hashes each key once and probes every candidate SST's bloom).
    """
    return [_hash_pair(key) for key in keys]


class BloomFilter:
    """Fixed-size bit array sized from bits-per-key at build time.

    ``backend`` selects the probe implementation: ``"auto"`` (numpy
    when available), ``"numpy"`` (raises without numpy), or
    ``"python"``. The bit array itself is backend-independent — a
    filter built by one backend answers identically under the other.
    """

    def __init__(
        self, num_keys: int, bits_per_key: int, backend: str = "auto"
    ):
        if num_keys < 0:
            raise ConfigurationError("num_keys must be >= 0")
        if bits_per_key < 1:
            raise ConfigurationError("bits_per_key must be >= 1")
        self.num_bits = max(64, num_keys * bits_per_key)
        # Optimal k = ln2 * bits/key, clamped to [1, 30] like RocksDB.
        self.num_probes = min(30, max(1, round(0.69 * bits_per_key)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0
        self._init_backend(backend)

    def _init_backend(self, backend: str) -> None:
        if backend not in ("auto", "numpy", "python"):
            raise ConfigurationError(
                f"bloom backend must be auto/numpy/python, got {backend!r}"
            )
        if backend == "numpy" and _np is None:
            raise ConfigurationError(
                "bloom backend 'numpy' requested but numpy is not installed"
            )
        self.backend = (
            "numpy" if backend == "auto" and _np is not None else
            "python" if backend == "auto" else backend
        )
        #: Writable uint8 view aliasing ``self._bits`` (numpy only):
        #: vector ops mutate the same bytes the python loop reads.
        self._view = (
            _np.frombuffer(self._bits, dtype=_np.uint8)
            if self.backend == "numpy"
            else None
        )

    @property
    def count(self) -> int:
        """Number of keys added."""
        return self._count

    # -- single-key path (kept scalar: per-key numpy overhead loses) ---------

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        h1, h2 = _hash_pair(key)
        bits = self._bits
        num_bits = self.num_bits
        for i in range(self.num_probes):
            bit = ((h1 + i * h2) & _MASK64) % num_bits
            bits[bit >> 3] |= 1 << (bit & 7)
        self._count += 1

    def may_contain(self, key: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ probably present."""
        return self.may_contain_hash(_hash_pair(key))

    def may_contain_hash(self, pair: Tuple[int, int]) -> bool:
        """Scalar probe over a precomputed (h1, h2) pair.

        Point lookups hash the key once and probe every candidate
        SST's filter with this — always the python loop, because a
        one-row numpy dispatch costs more than ~7 probe iterations.
        """
        return self._probe_one(pair)

    def _probe_one(self, pair: Tuple[int, int]) -> bool:
        h1, h2 = pair
        bits = self._bits
        num_bits = self.num_bits
        for i in range(self.num_probes):
            bit = ((h1 + i * h2) & _MASK64) % num_bits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    # -- batch path ----------------------------------------------------------

    def add_all(self, keys: Iterable[bytes]) -> None:
        """Insert every key from ``keys`` (vectorized under numpy)."""
        if self.backend == "numpy":
            self.add_hashes(hash_pairs(keys))
            return
        for key in keys:
            self.add(key)

    def add_hashes(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Insert keys given their precomputed (h1, h2) pairs."""
        if not pairs:
            return
        if self.backend == "numpy" and len(pairs) >= _BATCH_CUTOVER:
            positions = self._positions(pairs).ravel()
            _np.bitwise_or.at(
                self._view,
                positions >> 3,
                _np.left_shift(
                    _np.uint8(1), (positions & 7).astype(_np.uint8)
                ),
            )
            self._count += len(pairs)
            return
        bits = self._bits
        num_bits = self.num_bits
        for h1, h2 in pairs:
            for i in range(self.num_probes):
                bit = ((h1 + i * h2) & _MASK64) % num_bits
                bits[bit >> 3] |= 1 << (bit & 7)
        self._count += len(pairs)

    def may_contain_batch(self, keys: Sequence[bytes]) -> List[bool]:
        """Batch :meth:`may_contain`; one vector op under numpy."""
        return self.may_contain_hashes(hash_pairs(keys))

    def may_contain_hashes(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[bool]:
        """Batch probe over precomputed (h1, h2) pairs.

        Vectorizes under numpy once the batch amortizes the dispatch
        overhead; tiny batches take the scalar loop (bit-identical
        answers either way).
        """
        if not pairs:
            return []
        if self.backend == "numpy" and len(pairs) >= _BATCH_CUTOVER:
            positions = self._positions(pairs)  # (keys, probes)
            probed = (
                self._view[positions >> 3]
                >> (positions & 7).astype(_np.uint8)
            ) & 1
            return [bool(x) for x in probed.all(axis=1)]
        return [self._probe_one(pair) for pair in pairs]

    def _positions(self, pairs: Sequence[Tuple[int, int]]):
        """(keys, probes) uint64 array of probe bit positions.

        uint64 arithmetic wraps mod 2^64 — exactly the ``& _MASK64`` in
        the python loop — so both backends probe identical bits.
        """
        assert _np is not None
        h = _np.asarray(pairs, dtype=_np.uint64)  # (keys, 2)
        i = _np.arange(self.num_probes, dtype=_np.uint64)
        mixed = h[:, 0:1] + i[_np.newaxis, :] * h[:, 1:2]
        return mixed % _np.uint64(self.num_bits)

    # -- durable round-trip --------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the filter (bit array + probe parameters)."""
        return b"".join(
            (
                _BLOOM_MAGIC,
                self.num_bits.to_bytes(8, "big"),
                self.num_probes.to_bytes(1, "big"),
                self._count.to_bytes(8, "big"),
                bytes(self._bits),
            )
        )

    @classmethod
    def from_bytes(
        cls, payload: bytes, backend: str = "auto"
    ) -> "BloomFilter":
        """Inverse of :meth:`to_bytes` — no key re-hashing involved."""
        if payload[: len(_BLOOM_MAGIC)] != _BLOOM_MAGIC:
            raise KVStoreError("bad bloom filter magic/version")
        if len(payload) < _HEADER_LEN:
            raise KVStoreError("truncated bloom filter header")
        offset = len(_BLOOM_MAGIC)
        num_bits = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        num_probes = payload[offset]
        offset += 1
        count = int.from_bytes(payload[offset : offset + 8], "big")
        offset += 8
        bits = payload[offset:]
        if num_bits < 64 or not 1 <= num_probes <= 30:
            raise KVStoreError("corrupt bloom filter parameters")
        if len(bits) != (num_bits + 7) // 8:
            raise KVStoreError(
                f"bloom bit array is {len(bits)} bytes, "
                f"expected {(num_bits + 7) // 8} for {num_bits} bits"
            )
        bloom = cls.__new__(cls)
        bloom.num_bits = num_bits
        bloom.num_probes = num_probes
        bloom._bits = bytearray(bits)
        bloom._count = count
        bloom._init_backend(backend)
        return bloom

    def expected_false_positive_rate(self) -> float:
        """Theoretical FP rate for the current load."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_probes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_probes


def serialize_optional(bloom: Optional[BloomFilter]) -> bytes:
    """Length-prefixed optional bloom (empty prefix == no filter)."""
    if bloom is None:
        return (0).to_bytes(4, "big")
    payload = bloom.to_bytes()
    return len(payload).to_bytes(4, "big") + payload
