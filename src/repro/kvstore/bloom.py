"""Bloom filter for SST point lookups.

Standard Bloom filter with the Kirsch–Mitzenmacher double-hashing
scheme: two independent 64-bit hashes ``h1, h2`` derived from
``blake2b`` simulate ``k`` hash functions as ``h1 + i·h2``. This is the
same construction RocksDB's full-filter blocks use.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def _hash_pair(key: bytes) -> tuple:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd => full cycle
    )


class BloomFilter:
    """Fixed-size bit array sized from bits-per-key at build time."""

    def __init__(self, num_keys: int, bits_per_key: int):
        if num_keys < 0:
            raise ConfigurationError("num_keys must be >= 0")
        if bits_per_key < 1:
            raise ConfigurationError("bits_per_key must be >= 1")
        self.num_bits = max(64, num_keys * bits_per_key)
        # Optimal k = ln2 * bits/key, clamped to [1, 30] like RocksDB.
        self.num_probes = min(30, max(1, round(0.69 * bits_per_key)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    @property
    def count(self) -> int:
        """Number of keys added."""
        return self._count

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        h1, h2 = _hash_pair(key)
        for i in range(self.num_probes):
            bit = (h1 + i * h2) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self._count += 1

    def add_all(self, keys: Iterable[bytes]) -> None:
        """Insert every key from ``keys``."""
        for key in keys:
            self.add(key)

    def may_contain(self, key: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ probably present."""
        h1, h2 = _hash_pair(key)
        for i in range(self.num_probes):
            bit = (h1 + i * h2) % self.num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def expected_false_positive_rate(self) -> float:
        """Theoretical FP rate for the current load."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_probes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_probes
