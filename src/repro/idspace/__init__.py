"""ID encodings and structured (session, counter) layouts."""

from repro.idspace.cachekey import (
    CACHE_KEY_BYTES,
    derive_cache_key,
    keys_alias,
    split_cache_key,
)
from repro.idspace.encoding import (
    bytes_width_for,
    id_from_base32,
    id_from_bytes,
    id_from_hex,
    id_from_uuid_string,
    id_to_base32,
    id_to_bytes,
    id_to_hex,
    id_to_uuid_string,
)
from repro.idspace.structured import SessionIDGenerator, StructuredIDLayout

__all__ = [
    "CACHE_KEY_BYTES",
    "derive_cache_key",
    "split_cache_key",
    "keys_alias",
    "bytes_width_for",
    "id_to_bytes",
    "id_from_bytes",
    "id_to_hex",
    "id_from_hex",
    "id_to_uuid_string",
    "id_from_uuid_string",
    "id_to_base32",
    "id_from_base32",
    "StructuredIDLayout",
    "SessionIDGenerator",
]
