"""Fixed-width encodings of ``[m]`` IDs.

The paper's IDs are abstract integers; real systems render them as
128-bit hex blobs, RFC-4122-shaped strings, or compact base32. These
helpers convert between the integer world of the analysis and the
byte/string world of the substrate, losslessly, for any ``m`` that fits
the chosen width.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

_BASE32_ALPHABET = "0123456789abcdefghjkmnpqrstvwxyz"  # Crockford


def bytes_width_for(m: int) -> int:
    """Minimum whole bytes to encode any ID in ``range(m)``."""
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    return max(1, ((m - 1).bit_length() + 7) // 8)


def id_to_bytes(value: int, m: int, width: int = 0) -> bytes:
    """Big-endian fixed-width byte encoding of an ID."""
    _check_id(value, m)
    if width == 0:
        width = bytes_width_for(m)
    if value >= 1 << (8 * width):
        raise ConfigurationError(
            f"id {value} does not fit in {width} bytes"
        )
    return value.to_bytes(width, "big")


def id_from_bytes(payload: bytes, m: int) -> int:
    """Inverse of :func:`id_to_bytes` (validates range)."""
    value = int.from_bytes(payload, "big")
    _check_id(value, m)
    return value


def id_to_hex(value: int, m: int) -> str:
    """Fixed-width lowercase hex (the RocksDB cache-key style)."""
    return id_to_bytes(value, m).hex()


def id_from_hex(text: str, m: int) -> int:
    """Inverse of :func:`id_to_hex`."""
    return id_from_bytes(bytes.fromhex(text), m)


def id_to_uuid_string(value: int) -> str:
    """Render a 128-bit ID in the 8-4-4-4-12 RFC-4122 layout.

    Purely cosmetic: no version/variant bits are forced, because the
    paper's point is that such metadata carries no collision guarantee.
    """
    if not 0 <= value < 1 << 128:
        raise ConfigurationError("uuid rendering needs a 128-bit value")
    raw = f"{value:032x}"
    return f"{raw[:8]}-{raw[8:12]}-{raw[12:16]}-{raw[16:20]}-{raw[20:]}"


def id_from_uuid_string(text: str) -> int:
    """Inverse of :func:`id_to_uuid_string`."""
    cleaned = text.replace("-", "")
    if len(cleaned) != 32:
        raise ConfigurationError(f"not a 128-bit uuid string: {text!r}")
    return int(cleaned, 16)


def id_to_base32(value: int, m: int) -> str:
    """Compact Crockford-base32 rendering (fixed width for ``m``)."""
    _check_id(value, m)
    width = max(1, -(-((m - 1).bit_length()) // 5))
    chars = []
    remaining = value
    for _ in range(width):
        chars.append(_BASE32_ALPHABET[remaining & 31])
        remaining >>= 5
    return "".join(reversed(chars))


def id_from_base32(text: str, m: int) -> int:
    """Inverse of :func:`id_to_base32`."""
    value = 0
    for char in text.lower():
        index = _BASE32_ALPHABET.find(char)
        if index < 0:
            raise ConfigurationError(f"invalid base32 character {char!r}")
        value = (value << 5) | index
    _check_id(value, m)
    return value


def _check_id(value: int, m: int) -> None:
    if not 0 <= value < m:
        raise ConfigurationError(f"id {value} outside universe [0, {m})")
