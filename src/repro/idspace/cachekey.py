"""RocksDB-style block cache keys.

The deployment the paper describes keys its shared block cache by a
fixed-width byte string derived from the SST's unique ID plus the block
offset (RocksDB PR #9126, "new stable, fixed-length cache keys"). This
module reproduces that derivation: a 16-byte key = 12 bytes of file ID
(high bits dropped — *this* is why the collision probability of the ID
scheme, not just its nominal width, is what matters) and 4 bytes of
block number.

:func:`derive_cache_key` is deterministic and injective in
``(file_id mod 2^96, block_no)`` — two files whose IDs agree modulo
``2^96`` alias every block, which :class:`~repro.kvstore.blockcache`
demonstrates end to end.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError

FILE_ID_BYTES = 12
BLOCK_NO_BYTES = 4
CACHE_KEY_BYTES = FILE_ID_BYTES + BLOCK_NO_BYTES

_FILE_ID_MASK = (1 << (8 * FILE_ID_BYTES)) - 1
_MAX_BLOCK_NO = (1 << (8 * BLOCK_NO_BYTES)) - 1


def derive_cache_key(file_id: int, block_no: int) -> bytes:
    """The 16-byte cache key for ``(file_id, block_no)``.

    ``file_id`` may exceed 96 bits (e.g. a 128-bit universe); only its
    low 96 bits survive, mirroring the production truncation.
    """
    if file_id < 0:
        raise ConfigurationError(f"file_id must be >= 0, got {file_id}")
    if not 0 <= block_no <= _MAX_BLOCK_NO:
        raise ConfigurationError(
            f"block_no must fit {BLOCK_NO_BYTES} bytes, got {block_no}"
        )
    return (file_id & _FILE_ID_MASK).to_bytes(
        FILE_ID_BYTES, "big"
    ) + block_no.to_bytes(BLOCK_NO_BYTES, "big")


def split_cache_key(key: bytes) -> Tuple[int, int]:
    """Inverse of :func:`derive_cache_key` (modulo the 96-bit mask)."""
    if len(key) != CACHE_KEY_BYTES:
        raise ConfigurationError(
            f"cache keys are {CACHE_KEY_BYTES} bytes, got {len(key)}"
        )
    return (
        int.from_bytes(key[:FILE_ID_BYTES], "big"),
        int.from_bytes(key[FILE_ID_BYTES:], "big"),
    )


def keys_alias(file_id_a: int, file_id_b: int) -> bool:
    """Do two file IDs produce identical cache keys for every block?"""
    return (file_id_a & _FILE_ID_MASK) == (file_id_b & _FILE_ID_MASK)
