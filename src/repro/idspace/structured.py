"""Structured composite IDs: the Cluster embedding RocksDB actually uses.

RocksDB's "stable cache keys" (PR #9126, cited by the paper) compose a
random *session* prefix with an in-session counter in the low bits.
That is precisely ``Cluster`` on the integer universe: random start,
sequential IDs — made explicit here as a (prefix, counter) layout.

:class:`StructuredIDLayout` splits a ``total_bits`` universe into a
``counter_bits`` low field and a random high field, and proves the
equivalence: enumerating ``(prefix, counter)`` with a random prefix and
wrapping counter visits the same arcs ``Cluster`` does, up to the
counter field's wrap-to-next-prefix behaviour at field boundaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StructuredIDLayout:
    """A two-field ID layout: ``[random prefix | counter]``."""

    total_bits: int
    counter_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise ConfigurationError("total_bits must be >= 1")
        if not 0 <= self.counter_bits < self.total_bits:
            raise ConfigurationError(
                "counter_bits must be in [0, total_bits)"
            )

    @property
    def m(self) -> int:
        """Universe size, ``2^total_bits``."""
        return 1 << self.total_bits

    @property
    def sessions(self) -> int:
        """Number of distinct prefixes."""
        return 1 << (self.total_bits - self.counter_bits)

    @property
    def ids_per_session(self) -> int:
        """Counter capacity per prefix."""
        return 1 << self.counter_bits

    def compose(self, prefix: int, counter: int) -> int:
        """Pack (prefix, counter) into one integer ID."""
        if not 0 <= prefix < self.sessions:
            raise ConfigurationError(
                f"prefix {prefix} outside [0, {self.sessions})"
            )
        if not 0 <= counter < self.ids_per_session:
            raise ConfigurationError(
                f"counter {counter} outside [0, {self.ids_per_session})"
            )
        return (prefix << self.counter_bits) | counter

    def decompose(self, value: int) -> Tuple[int, int]:
        """Unpack an ID into (prefix, counter)."""
        if not 0 <= value < self.m:
            raise ConfigurationError(f"id {value} outside [0, {self.m})")
        return value >> self.counter_bits, value & (self.ids_per_session - 1)


class SessionIDGenerator:
    """The production-shaped generator: random session, local counter.

    Behaviour: draw a random full ID as the starting point, then
    increment — identical to ``Cluster`` on ``2^total_bits`` (the
    counter carries into the prefix on wrap, like RocksDB's scheme
    effectively re-keys). Provided to demonstrate the embedding; the
    analysis classes use :class:`repro.core.ClusterGenerator` directly.
    """

    def __init__(
        self, layout: StructuredIDLayout, rng: random.Random
    ):
        self.layout = layout
        self._next = rng.randrange(layout.m)

    def next_id(self) -> int:
        """The next composite ID."""
        value = self._next
        self._next = (self._next + 1) % self.layout.m
        return value

    def next_parts(self) -> Tuple[int, int]:
        """The next ID as (prefix, counter)."""
        return self.layout.decompose(self.next_id())

    def iter_ids(self, count: int) -> Iterator[int]:
        """Yield ``count`` consecutive IDs."""
        for _ in range(count):
            yield self.next_id()
