"""Exact collision probabilities ``p_A(D)`` in closed form (§4, §7).

For four of the five algorithms the collision event reduces to a clean
combinatorial event, so ``p_A(D)`` is computable *exactly* with big-int
arithmetic — no simulation error, any ``m`` up to ``2**128`` and beyond:

=============  ==========================================================
``Random``     the ``d_i``-subsets are uniform and independent →
               product of hypergeometric disjointness factors.
``Cluster``    each instance occupies one arc of its demand's length at
               a uniform start → circular disjoint-arcs count.
``Bins(k)``    collision ⇔ two instances pick a common bin (a shared bin
               always collides: each emits a *prefix* of the bin, and
               two non-empty prefixes share the first ID) → disjoint
               subsets over ``⌊m/k⌋`` bins of the ``⌈d_i/k⌉`` bin picks.
``Bins*``      instances reaching chunk ``c`` pick one uniform bin among
               the ``2^(C−1−c)`` bins there; chunks are disjoint and
               picks independent → product of per-chunk birthday events.
=============  ==========================================================

``Cluster*`` has no comparably simple form (run placements are mutually
exclusive *within* an instance); use Monte Carlo
(:mod:`repro.simulation.montecarlo`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.adversary.profiles import DemandProfile
from repro.analysis.combinatorics import (
    birthday_no_collision,
    circular_disjoint_arcs_probability,
    disjoint_subsets_probability,
    disjoint_subsets_probability_estimate,
)
from repro.core.bins_star import chunk_count
from repro.errors import ConfigurationError


def _validate(m: int, profile: DemandProfile) -> None:
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if profile.max_demand > m:
        raise ConfigurationError(
            f"profile demands an instance produce {profile.max_demand} IDs "
            f"from a universe of {m}"
        )


#: Above this many big-int "work units" (Σ sizes × bits of m) the exact
#: hypergeometric product is replaced by the log-space estimate.
_EXACT_WORK_LIMIT = 4_000_000


def _subset_disjoint_probability_auto(
    universe: int, sizes, method: str
) -> Fraction:
    """Dispatch between the exact and estimated disjointness products."""
    if method not in ("auto", "exact", "estimate"):
        raise ConfigurationError(f"unknown method {method!r}")
    if method == "auto":
        work = sum(sizes) * max(universe.bit_length(), 1)
        method = "exact" if work <= _EXACT_WORK_LIMIT else "estimate"
    if method == "exact":
        return disjoint_subsets_probability(universe, sizes)
    return Fraction(
        disjoint_subsets_probability_estimate(universe, sizes)
    )


def random_collision_probability(
    m: int, profile: DemandProfile, method: str = "auto"
) -> Fraction:
    """``p_Random(D)``: 1 − Π C(m−Σ_{j<i} d_j, d_i)/C(m, d_i).

    Exact by default; for demands large enough that the binomials
    become multi-megabit integers (``method="auto"``), a log-space
    estimate accurate to ~float precision is used instead (pass
    ``method="exact"`` to force the big-int path).
    """
    _validate(m, profile)
    return 1 - _subset_disjoint_probability_auto(
        m, profile.demands, method
    )


def cluster_collision_probability(m: int, profile: DemandProfile) -> Fraction:
    """Exact ``p_Cluster(D)`` via the disjoint-arcs placement count."""
    _validate(m, profile)
    return 1 - circular_disjoint_arcs_probability(m, profile.demands)


def cluster_pairwise_collision(m: int, d_i: int, d_j: int) -> Fraction:
    """Theorem 1's pairwise event: ``Pr[C_ij] = (d_i + d_j − 1)/m``."""
    if d_i < 1 or d_j < 1:
        raise ConfigurationError("pairwise demands must be >= 1")
    return Fraction(min(d_i + d_j - 1, m), m)


def bins_collision_probability(
    m: int, k: int, profile: DemandProfile, method: str = "auto"
) -> Fraction:
    """``p_Bins(k)(D)`` while no instance runs out of bins.

    Exact by default (see :func:`random_collision_probability` for the
    ``method`` semantics). Raises if some ``d_i > ⌊m/k⌋·k`` (the regime
    where the paper simply reports Θ(1): the instance is forced into
    the deterministic leftover tail and two such instances collide with
    certainty).
    """
    _validate(m, profile)
    if not 1 <= k <= m:
        raise ConfigurationError(f"k must be in [1, m], got {k}")
    num_bins = m // k
    capacity = num_bins * k
    overflowing = sum(1 for d in profile.demands if d > capacity)
    if overflowing:
        if overflowing >= 2:
            return Fraction(1)
        raise ConfigurationError(
            f"a demand exceeds the binned capacity {capacity}; "
            "exact formula does not cover a single overflowing instance"
        )
    bin_counts = [-(-d // k) for d in profile.demands]  # ceil division
    return 1 - _subset_disjoint_probability_auto(
        num_bins, bin_counts, method
    )


def bins_star_collision_probability(
    m: int, profile: DemandProfile, num_chunks: Optional[int] = None
) -> Fraction:
    """Exact ``p_Bins*(D)`` as a product of per-chunk birthday events.

    An instance with demand ``d`` opens a bin in 0-based chunk ``c`` iff
    ``d ≥ 2^c`` (chunks 0..c−1 hold ``2^c − 1`` IDs). Within chunk ``c``
    the ``k_c`` such instances each pick one of ``2^(C−1−c)`` bins
    uniformly and independently; sharing a bin ⇔ collision. Chunks are
    disjoint ID ranges and picks are independent across chunks, so the
    no-collision events multiply. Demands beyond the ``2^C − 1``
    schedule are rejected (the paper makes no claim there).
    """
    _validate(m, profile)
    if num_chunks is None:
        num_chunks = chunk_count(m)
    elif num_chunks < 1 or num_chunks * (1 << (num_chunks - 1)) > m:
        raise ConfigurationError(
            f"num_chunks={num_chunks} does not fit m={m}"
        )
    capacity = (1 << num_chunks) - 1
    if profile.max_demand > capacity:
        raise ConfigurationError(
            f"demand {profile.max_demand} exceeds the Bins* schedule "
            f"capacity 2^C−1 = {capacity} for m={m}"
        )
    no_collision = Fraction(1)
    for chunk in range(num_chunks):
        reaching = sum(1 for d in profile.demands if d >= (1 << chunk))
        if reaching <= 1:
            break  # chunks only get emptier as the threshold doubles
        bins_here = 1 << (num_chunks - 1 - chunk)
        no_collision *= birthday_no_collision(bins_here, reaching)
        if no_collision == 0:
            break
    return 1 - no_collision


def exact_collision_probability(
    spec: str, m: int, profile: DemandProfile, k: Optional[int] = None
) -> Fraction:
    """Dispatch on an algorithm spec (``"random"``, ``"bins:8"``, ...).

    ``cluster_star`` and ``skew`` have no closed form here and raise.
    """
    parts = spec.strip().lower().split(":")
    name = parts[0].replace("*", "_star")
    if name == "random":
        return random_collision_probability(m, profile)
    if name == "cluster":
        return cluster_collision_probability(m, profile)
    if name == "bins":
        bin_size = k if k is not None else int(parts[1])
        return bins_collision_probability(m, bin_size, profile)
    if name == "bins_star":
        return bins_star_collision_probability(m, profile)
    raise ConfigurationError(
        f"no exact closed form for {spec!r}; use Monte Carlo "
        "(repro.simulation.montecarlo)"
    )


def skew_aware_pair_collision(m: int, i: int, j: int) -> Fraction:
    """Exact collision probability of ``SkewAware(i, j)`` on profile (i, j).

    Both instances run ``Bins(i)`` over the reduced space of
    ``m − (j − i)`` IDs for their first ``i`` requests; only the heavier
    instance touches the deterministic tail. Collision ⇔ the two
    ``Bins(i)`` prefixes share a bin; each opens exactly one bin, so this
    is a two-ball birthday over ``⌊(m−j+i)/i⌋`` bins (Lemma 24's
    ``Θ(i/m)``, here exactly).
    """
    if not 1 <= i <= j <= m:
        raise ConfigurationError(f"need 1 <= i <= j <= m, got {i}, {j}, {m}")
    reduced = m - (j - i)
    num_bins = reduced // i
    if num_bins < 1:
        return Fraction(1)
    return Fraction(1, num_bins)
