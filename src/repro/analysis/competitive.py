"""Competitive-ratio computation (§2, §8, §9).

The competitive ratio of an algorithm ``A`` on a non-trivial profile
``D`` is ``p_A(D) / p*(D)``. Since ``p*`` is only available as a
certified sandwich (:mod:`repro.analysis.optimal`), ratios come in two
flavours:

* :func:`competitive_ratio_upper` divides by the p* *lower* bound — a
  certified **upper** bound on the true ratio. Use it to verify O(·)
  claims (Theorem 9: Bins* ratio ≤ O(log m)).
* :func:`competitive_ratio_lower` divides by the p* *upper* bound — a
  certified **lower** bound on the true ratio. Use it to verify Ω(·)
  claims (Theorem 10: every algorithm ≥ Ω(log m) on Φ).

For adaptive adversaries the denominator is ``E_{D∼Z}[p*(D)]`` over the
random final profile (§2); :func:`adaptive_competitive_ratio` estimates
both numerator and denominator from the same set of game outcomes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Sequence, Tuple

from repro.adversary.profiles import DemandProfile
from repro.analysis.optimal import p_star_lower_bound, p_star_upper_bound
from repro.errors import ConfigurationError

ProbabilityFn = Callable[[DemandProfile], Fraction]


def competitive_ratio_upper(
    m: int, profile: DemandProfile, p_algorithm: Fraction
) -> float:
    """Certified upper bound on ``p_A(D)/p*(D)``."""
    if profile.is_trivial:
        raise ConfigurationError("competitive ratio undefined for n < 2")
    denominator = p_star_lower_bound(m, profile)
    if denominator == 0:
        raise ConfigurationError(
            f"p* lower bound vanished on {profile.demands}; cannot certify"
        )
    return float(Fraction(p_algorithm) / denominator)


def competitive_ratio_lower(
    m: int, profile: DemandProfile, p_algorithm: Fraction
) -> float:
    """Certified lower bound on ``p_A(D)/p*(D)``."""
    if profile.is_trivial:
        raise ConfigurationError("competitive ratio undefined for n < 2")
    denominator = p_star_upper_bound(m, profile)
    if denominator == 0:
        raise ConfigurationError(
            f"p* upper bound vanished on {profile.demands}"
        )
    return float(Fraction(p_algorithm) / denominator)


def worst_ratio_over(
    m: int,
    profiles: Iterable[DemandProfile],
    p_algorithm: ProbabilityFn,
) -> Tuple[float, DemandProfile]:
    """Max certified-upper ratio over a set of profiles, with the argmax."""
    best_ratio = -1.0
    best_profile = None
    for profile in profiles:
        ratio = competitive_ratio_upper(m, profile, p_algorithm(profile))
        if ratio > best_ratio:
            best_ratio = ratio
            best_profile = profile
    if best_profile is None:
        raise ConfigurationError("no profiles supplied")
    return best_ratio, best_profile


def adaptive_competitive_ratio(
    m: int,
    collision_indicators: Sequence[bool],
    final_profiles: Sequence[DemandProfile],
    use_upper_p_star: bool = False,
) -> float:
    """Monte-Carlo estimate of ``p_A(Z) / E_{D∼Z}[p*(D)]`` (§2).

    ``collision_indicators[t]`` and ``final_profiles[t]`` come from the
    same game trial ``t``. The numerator is the empirical collision
    frequency; the denominator averages the certified p* bound of each
    realized final profile (lower bound by default ⇒ ratio is an upper
    estimate, matching the O(·) direction of Theorem 11 / Corollary 12).
    """
    if len(collision_indicators) != len(final_profiles):
        raise ConfigurationError("trial arrays must have equal length")
    if not collision_indicators:
        raise ConfigurationError("need at least one trial")
    bound = p_star_upper_bound if use_upper_p_star else p_star_lower_bound
    numerator = sum(collision_indicators) / len(collision_indicators)
    denominator = sum(
        float(bound(m, profile)) for profile in final_profiles
    ) / len(final_profiles)
    if denominator == 0:
        raise ConfigurationError("denominator E[p*] vanished")
    return numerator / denominator
