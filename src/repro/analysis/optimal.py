"""Machinery around ``p*(D)`` — the best achievable collision probability.

``p*(D) = min_A p_A(D)`` is defined over *all* algorithms, so it cannot
be computed by enumeration. The paper pins it down through reductions,
all implemented here exactly:

* **Uniform profiles** (Lemma 16): ``Bins(h)`` is *the* optimal
  algorithm for ``(h, ..., h)``, so ``p*`` is the exact bins-level
  birthday probability.
* **Monotonicity**: decreasing or removing entries of ``D`` cannot
  increase ``p*`` (fewer requests ⇒ the same algorithm does at least as
  well), so any uniform profile "contained" in ``D`` lower-bounds it.
* **Rank decomposition** (Lemma 20): group the entries of the rounded
  profile ``D⁻`` by rank; collisions inside disjoint rank groups are
  independent events, each lower-bounded by its uniform optimum.
* **Pairs** (Lemma 24): for ``D = (i, j)`` the SkewAware construction
  gives an exact upper bound ``1/⌊(m−j+i)/i⌋`` and the uniform reduction
  gives the lower bound ``1/⌊m/i⌋`` — a Θ(1) sandwich around ``Θ(i/m)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from repro.adversary.profiles import DemandProfile
from repro.analysis.combinatorics import birthday_collision
from repro.analysis.exact import skew_aware_pair_collision
from repro.errors import ConfigurationError


def optimal_uniform_collision(m: int, n: int, h: int) -> Fraction:
    """Exact ``p*((h,)*n)`` = ``p_Bins(h)`` on the uniform profile (Lemma 16).

    Each of the ``n`` instances opens exactly one bin among ``⌊m/h⌋``;
    collision ⇔ two instances share a bin — an exact birthday event.
    """
    if h < 1 or n < 1:
        raise ConfigurationError(f"need n, h >= 1, got n={n}, h={h}")
    if h > m:
        return Fraction(1)
    bins = m // h
    return birthday_collision(bins, n)


def p_star_lower_bound(m: int, profile: DemandProfile) -> Fraction:
    """A rigorous exact lower bound on ``p*(D)``.

    Maximum of two certified bounds:

    1. *Contained uniform profile*: for every distinct demand value
       ``h``, the ``n_h`` entries ≥ ``h`` contain the uniform profile
       ``(h,)*n_h``, so ``p*(D) ≥ optimal_uniform_collision(m, n_h, h)``.
    2. *Rank decomposition of* ``D⁻`` (Lemma 20): collisions within
       disjoint rank groups are independent for any algorithm, so
       ``p*(D) ≥ p*(D⁻) ≥ 1 − Π_i (1 − p*((2^(i−1),)*s_i))``.
    """
    if profile.is_trivial:
        return Fraction(0)
    best = Fraction(0)
    demands_sorted = sorted(profile.demands, reverse=True)
    for index, h in enumerate(demands_sorted):
        n_h = index + 1  # entries demands_sorted[0..index] are all >= h
        if n_h >= 2:
            candidate = optimal_uniform_collision(m, n_h, h)
            if candidate > best:
                best = candidate
    no_collision = Fraction(1)
    for index, s in enumerate(profile.rounded().rank_distribution()):
        if s >= 2:
            no_collision *= 1 - optimal_uniform_collision(
                m, s, 1 << index
            )
    rank_bound = 1 - no_collision
    return max(best, rank_bound)


def p_star_upper_bound(m: int, profile: DemandProfile) -> Fraction:
    """A certified upper bound on ``p*(D)``: some algorithm achieves it.

    Uses the exact probabilities of the implemented closed-form
    algorithms, plus the SkewAware construction on two-instance
    profiles. ``p*`` is a min over all algorithms, so the min over any
    concrete set is an upper bound.
    """
    from repro.analysis import exact

    if profile.is_trivial:
        return Fraction(0)
    candidates = [
        exact.random_collision_probability(m, profile),
        exact.cluster_collision_probability(m, profile),
    ]
    # Bins(k) for the candidate bin sizes the paper's analysis points at:
    # each distinct demand (the uniform optimum for that level).
    for k in sorted(set(profile.demands)):
        if 1 <= k <= m and profile.max_demand <= (m // k) * k:
            candidates.append(
                exact.bins_collision_probability(m, k, profile)
            )
    try:
        candidates.append(
            exact.bins_star_collision_probability(m, profile)
        )
    except ConfigurationError:
        pass  # demand beyond the Bins* schedule
    if profile.n == 2:
        low, high = sorted(profile.demands)
        candidates.append(skew_aware_pair_collision(m, low, high))
    return min(candidates)


def p_star_pair(m: int, i: int, j: int) -> Tuple[Fraction, Fraction]:
    """Exact (lower, upper) sandwich for ``p*((i, j))`` with ``i ≤ j``.

    Lower: the uniform reduction ``p*((i, i)) = 1/⌊m/i⌋``.
    Upper: the Lemma 24 construction ``1/⌊(m−j+i)/i⌋``.
    For ``j ≤ m/2`` the two differ by at most a constant factor (Θ(i/m)).
    """
    if not 1 <= i <= j <= m:
        raise ConfigurationError(f"need 1 <= i <= j <= m, got {i}, {j}")
    lower = optimal_uniform_collision(m, 2, i)
    upper = skew_aware_pair_collision(m, i, j)
    return lower, upper


def brute_force_p_star_pair_11(m: int) -> Fraction:
    """``p*((1, 1))`` exactly: any algorithm collides w.p. ≥ 1/m.

    The first IDs of two instances are i.i.d. draws from the same
    distribution ``q`` on [m]; the collision probability ``Σ q_c²`` is
    minimized at the uniform distribution, giving exactly ``1/m``
    (Corollary 17's base case). Provided as an oracle for tests.
    """
    return Fraction(1, m)
