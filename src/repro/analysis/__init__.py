"""Exact and asymptotic analysis of UUIDP algorithms (§3–§9)."""

from repro.analysis.adaptive import (
    adaptivity_gain_exact,
    closest_pair_attack_cluster_exact,
)
from repro.analysis.bounds import (
    corollary3_random,
    corollary5_cluster_worst_case,
    corollary5_random_worst_case,
    lemma7_adaptive_cluster,
    lemma20_rank_lower_bound,
    lemma22_bins_star_upper,
    lemma24_pair_optimum,
    log_log_slope,
    theorem1_cluster,
    theorem2_bins,
    theorem6_lower_bound,
    theorem8_cluster_star,
    theorem9_competitive_target,
    theorem11_adaptive_factor,
)
from repro.analysis.combinatorics import (
    binomial,
    birthday_collision,
    birthday_no_collision,
    circular_disjoint_arcs_probability,
    disjoint_subsets_probability,
    falling_factorial,
)
from repro.analysis.competitive import (
    adaptive_competitive_ratio,
    competitive_ratio_lower,
    competitive_ratio_upper,
    worst_ratio_over,
)
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    cluster_pairwise_collision,
    exact_collision_probability,
    random_collision_probability,
    skew_aware_pair_collision,
)
from repro.analysis.optimal import (
    optimal_uniform_collision,
    p_star_lower_bound,
    p_star_pair,
    p_star_upper_bound,
)

__all__ = [
    # adaptive
    "closest_pair_attack_cluster_exact",
    "adaptivity_gain_exact",
    # exact
    "exact_collision_probability",
    "random_collision_probability",
    "cluster_collision_probability",
    "cluster_pairwise_collision",
    "bins_collision_probability",
    "bins_star_collision_probability",
    "skew_aware_pair_collision",
    # combinatorics
    "falling_factorial",
    "binomial",
    "birthday_collision",
    "birthday_no_collision",
    "disjoint_subsets_probability",
    "circular_disjoint_arcs_probability",
    # optimal
    "optimal_uniform_collision",
    "p_star_lower_bound",
    "p_star_upper_bound",
    "p_star_pair",
    # competitive
    "competitive_ratio_upper",
    "competitive_ratio_lower",
    "worst_ratio_over",
    "adaptive_competitive_ratio",
    # bounds
    "theorem1_cluster",
    "theorem2_bins",
    "corollary3_random",
    "corollary5_cluster_worst_case",
    "corollary5_random_worst_case",
    "theorem6_lower_bound",
    "lemma7_adaptive_cluster",
    "theorem8_cluster_star",
    "lemma20_rank_lower_bound",
    "lemma22_bins_star_upper",
    "lemma24_pair_optimum",
    "theorem9_competitive_target",
    "theorem11_adaptive_factor",
    "log_log_slope",
]
