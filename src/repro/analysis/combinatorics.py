"""Exact combinatorial primitives (arbitrary precision).

Everything here returns exact values — :class:`fractions.Fraction` for
probabilities — which is what makes this reproduction possible on a
laptop: Python big ints evaluate the paper's counting arguments exactly
even for ``m = 2**128``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache
from typing import Iterable

from repro.errors import ConfigurationError


@lru_cache(maxsize=4096)
def falling_factorial(x: int, k: int) -> int:
    """``x · (x−1) ··· (x−k+1)`` — the number of injections [k] → [x].

    Zero when ``k > x``; one when ``k == 0``. Memoized: sweeps like
    E12's summary table evaluate the same big-int products across many
    rows, and the results are immutable.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    if k > x:
        return 0
    result = 1
    for value in range(x, x - k, -1):
        result *= value
    return result


def binomial(n: int, k: int) -> int:
    """``C(n, k)`` with the convention ``C(n, k) = 0`` for k < 0 or k > n."""
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


@lru_cache(maxsize=4096)
def birthday_no_collision(bins: int, balls: int) -> Fraction:
    """Exact probability that ``balls`` uniform distinct-bin choices differ.

    Each ball independently picks one of ``bins`` bins uniformly; this is
    ``bins^(balls)·falling / bins^balls`` — the birthday problem. Returns
    0 when ``balls > bins`` and 1 when ``balls <= 1``. Memoized
    (:class:`~fractions.Fraction` results are immutable): the Bins*
    closed form re-evaluates identical per-chunk birthday events across
    every profile of a sweep.
    """
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    if balls <= 1:
        return Fraction(1)
    if balls > bins:
        return Fraction(0)
    return Fraction(falling_factorial(bins, balls), bins**balls)


def birthday_collision(bins: int, balls: int) -> Fraction:
    """Exact birthday collision probability: complement of the above."""
    return 1 - birthday_no_collision(bins, balls)


def disjoint_subsets_probability(
    universe: int, sizes: Iterable[int]
) -> Fraction:
    """Probability that independent uniform random subsets are disjoint.

    Subset ``i`` is a uniformly random ``sizes[i]``-element subset of a
    ``universe``-element set, independent across ``i``. By sequential
    conditioning:

        Pr = Π_i C(universe − Σ_{j<i} s_j, s_i) / C(universe, s_i).

    Returns 0 when the sizes cannot fit disjointly.
    """
    if universe < 0:
        raise ConfigurationError(f"universe must be >= 0, got {universe}")
    result = Fraction(1)
    consumed = 0
    for size in sizes:
        if size < 0:
            raise ConfigurationError(f"subset sizes must be >= 0, got {size}")
        if size == 0:
            continue
        numerator = binomial(universe - consumed, size)
        denominator = binomial(universe, size)
        if denominator == 0:
            return Fraction(0)
        if numerator == 0:
            return Fraction(0)
        result *= Fraction(numerator, denominator)
        consumed += size
    return result


def disjoint_subsets_probability_estimate(
    universe: int, sizes: Iterable[int]
) -> float:
    """High-accuracy float version of :func:`disjoint_subsets_probability`.

    For huge universes (``m = 2**128``) the exact binomials become
    million-bit integers; here each conditional factor
    ``Π_t (1 − c_i/(m−t))`` is evaluated as
    ``d_i · log1p(−c_i/(m − (d_i−1)/2))`` (midpoint rule). The relative
    error is ``O(Σ d_i³·c_i/m³)`` — far below float precision whenever
    the exact path is infeasible (total demand ≪ m).
    """
    consumed = 0
    log_total = 0.0
    for size in sizes:
        if size < 0:
            raise ConfigurationError(f"subset sizes must be >= 0, got {size}")
        if size == 0:
            continue
        if consumed + size > universe:
            return 0.0
        if consumed > 0:
            midpoint = universe - (size - 1) / 2.0
            log_total += size * math.log1p(-consumed / midpoint)
        consumed += size
    return math.exp(log_total)


def circular_disjoint_arcs_probability(
    m: int, lengths: Iterable[int]
) -> Fraction:
    """Probability that independently placed arcs on ``Z_m`` are disjoint.

    Arc ``i`` has a fixed length ``ℓ_i`` and an independent uniform
    starting point. The number of pairwise-disjoint placements of ``n``
    labeled arcs with total length ``ℓ`` is

        m · (n−1)! · C(m − ℓ + n − 1, n − 1)

    (fix arc 1's start: m choices; order the other arcs around the
    cycle: (n−1)!; distribute the ``m − ℓ`` free positions into the
    ``n`` gaps between consecutive arcs: stars and bars). Divide by
    ``m^n`` placements overall.
    """
    lens = [length for length in lengths if length > 0]
    for length in lens:
        if length > m:
            return Fraction(0)
    n = len(lens)
    if n <= 1:
        return Fraction(1)
    total = sum(lens)
    if total > m:
        return Fraction(0)
    count_orders = math.factorial(n - 1)
    count_gaps = binomial(m - total + n - 1, n - 1)
    return Fraction(count_orders * count_gaps, m ** (n - 1))


def log2_or_one(x: float) -> float:
    """``max(log₂ x, 1)`` — the paper's log factors, floored at 1.

    The Θ-expressions use ``log m`` with an implicit constant; flooring
    at 1 keeps formula evaluation meaningful at tiny parameters.
    """
    if x <= 2.0:
        return 1.0
    return math.log2(x)
