"""Exact analysis of adaptive attacks against ``Cluster`` (§6).

The closest-pair adversary of Lemma 7 succeeds exactly when, after
probing one ID from each of the ``n`` instances, some pair of first IDs
sits within forward distance ``d − n − 1`` on the cycle (the remaining
budget then drives the trailing arc into the leading ID).

Since the ``n`` first IDs are i.i.d. uniform on ``Z_m``, "every
pairwise circular distance ≥ g" is equivalent to "the ``n`` arcs
``[x_i, x_i + g)`` are pairwise disjoint" — the same spacings count
used for Theorem 1. So the attack's success probability has a *closed
form*, turning Lemma 7's Ω-bound into an exactly computable curve:

    p_attack(m, n, d) = 1 − (n−1)!·C(m − n·(d−n) + n − 1, n − 1)/m^(n−1).

Experiment E6 plots Monte-Carlo games against this curve.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.combinatorics import circular_disjoint_arcs_probability
from repro.errors import ConfigurationError


def closest_pair_attack_cluster_exact(m: int, n: int, d: int) -> Fraction:
    """Exact success probability of the Lemma 7 adversary vs ``Cluster``.

    ``n`` instances are probed once; the remaining ``d − n`` requests go
    to the trailing instance of the closest pair. A collision occurs
    iff some ordered pair of first IDs is at forward distance at most
    ``d − n − 1``; equivalently, iff the arcs of length ``d − n``
    anchored at the first IDs are *not* pairwise disjoint.
    """
    if n < 2:
        raise ConfigurationError(f"attack needs n >= 2, got {n}")
    if d < n:
        raise ConfigurationError(f"budget d={d} cannot cover n={n} probes")
    gap = d - n
    if gap == 0:
        # No budget beyond the probes: collision iff two first IDs are
        # equal — a plain birthday event over m values.
        from repro.analysis.combinatorics import birthday_collision

        return birthday_collision(m, n)
    return 1 - circular_disjoint_arcs_probability(m, [gap] * n)


def adaptivity_gain_exact(m: int, n: int, d: int) -> float:
    """Exact ratio attack/oblivious for Cluster at budget (n, d).

    The oblivious comparison point is ``Cluster`` on the attack's own
    final demand profile ``(d−n+1, 1, ..., 1)``. Lemma 7 says this gain
    is Ω(n) (until either probability saturates).
    """
    from repro.adversary.profiles import DemandProfile
    from repro.analysis.exact import cluster_collision_probability

    attack = closest_pair_attack_cluster_exact(m, n, d)
    profile = DemandProfile((d - n + 1,) + (1,) * (n - 1))
    oblivious = cluster_collision_probability(m, profile)
    if oblivious == 0:
        raise ConfigurationError("oblivious probability vanished")
    return float(attack / oblivious)
