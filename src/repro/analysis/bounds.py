"""The paper's Θ/O/Ω expressions as callable formulas (§3).

These are *shape targets*: each returns the inner expression of the
paper's bound, always clamped by ``min(1, ·)``. Experiments compare
measured (or exact) probabilities against them and check that the ratio
stays inside a constant band across sweeps — that is what a Θ-statement
predicts. Absolute constants are not claimed by the paper and not
asserted here.
"""

from __future__ import annotations

import math

from repro.adversary.profiles import DemandProfile
from repro.analysis.combinatorics import log2_or_one
from repro.errors import ConfigurationError


def _clamp(x: float) -> float:
    return min(1.0, x)


def theorem1_cluster(m: int, profile: DemandProfile) -> float:
    """Thm 1: ``p_Cluster(D) = Θ(min(1, n‖D‖₁/m))``."""
    return _clamp(profile.n * profile.total / m)


def theorem2_bins(m: int, k: int, profile: DemandProfile) -> float:
    """Thm 2: ``Θ(min(1, (‖D‖₁²−‖D‖₂²)/(km) + n‖D‖₁/m + n²k/m))``."""
    if not 1 <= k <= m:
        raise ConfigurationError(f"k must be in [1, m], got {k}")
    l1 = profile.total
    l2sq = profile.l2_squared
    n = profile.n
    return _clamp(
        (l1 * l1 - l2sq) / (k * m) + n * l1 / m + n * n * k / m
    )


def corollary3_random(m: int, profile: DemandProfile) -> float:
    """Cor 3: ``p_Random(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/m))``."""
    l1 = profile.total
    return _clamp((l1 * l1 - profile.l2_squared) / m)


def corollary5_cluster_worst_case(m: int, n: int, d: int) -> float:
    """Cor 5: worst case of Cluster over ``D1(n,d)``: ``Θ(min(1, nd/m))``."""
    return _clamp(n * d / m)


def corollary5_random_worst_case(m: int, n: int, d: int) -> float:
    """Cor 5: worst case of Random over ``D1(n,d)``: ``Θ(min(1, d²/m))``."""
    return _clamp(d * d / m)


def theorem6_lower_bound(m: int, n: int, d: int) -> float:
    """Thm 6: ``p*(D) = Ω(min(1, nd/m))`` for almost all of ``D1(n,d)``."""
    return _clamp(n * d / m)


def lemma7_adaptive_cluster(m: int, n: int, d: int) -> float:
    """Lemma 7: adaptive adversary forces ``p_Cluster(Z) = Ω(min(1, n²d/m))``."""
    return _clamp(n * n * d / m)


def theorem8_cluster_star(m: int, n: int, d: int) -> float:
    """Thm 8: ``p_Cluster*(Z) = O(min(1, (nd/m)·log(1 + d/n)))``."""
    if n < 1 or d < n:
        raise ConfigurationError(f"need d >= n >= 1, got n={n}, d={d}")
    return _clamp((n * d / m) * math.log2(1.0 + d / n))


def lemma20_rank_lower_bound(m: int, rank_distribution) -> float:
    """Lemma 20: ``p*(D⁻) = Ω(min(1, (1/m) Σ C(s_i,2)·2^i))``."""
    total = sum(
        math.comb(s, 2) * (1 << (index + 1))
        for index, s in enumerate(rank_distribution)
    )
    return _clamp(total / m)


def lemma22_bins_star_upper(m: int, rank_distribution) -> float:
    """Lemma 22: ``p_Bins*(D⁻) = O((log m / m) Σ C(s_i,2)·2^i)``."""
    total = sum(
        math.comb(s, 2) * (1 << (index + 1))
        for index, s in enumerate(rank_distribution)
    )
    return _clamp(log2_or_one(m) * total / m)


def lemma24_pair_optimum(m: int, i: int, j: int) -> float:
    """Lemma 24: ``p*((i, j)) = Θ(i/m)`` for ``1 ≤ i ≤ j ≤ m/2``."""
    if not 1 <= i <= j:
        raise ConfigurationError(f"need 1 <= i <= j, got {i}, {j}")
    return _clamp(i / m)


def theorem9_competitive_target(m: int) -> float:
    """Thm 9/10: the optimal competitive ratio scale, ``log m``."""
    return log2_or_one(m)


def theorem11_adaptive_factor() -> float:
    """Thm 11: adaptivity costs Bins*/Bins(k) at most a factor 4."""
    return 4.0


def log_log_slope(xs, ys) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Experiments use this to verify scaling exponents (e.g. measured
    collision probability growing linearly in ``d`` ⇒ slope ≈ 1).
    Points with non-positive coordinates are skipped.
    """
    points = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        raise ConfigurationError("need >= 2 positive points for a slope")
    mean_x = sum(p[0] for p in points) / len(points)
    mean_y = sum(p[1] for p in points) / len(points)
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in points)
    variance = sum((x - mean_x) ** 2 for x, _ in points)
    if variance == 0:
        raise ConfigurationError("all x values identical; slope undefined")
    return covariance / variance
