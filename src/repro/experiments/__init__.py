"""Experiment registry: one module per reproduced claim (see DESIGN.md §4)."""

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    a01_cluster_star_growth,
    a02_bins_star_chunks,
    e01_cluster_theorem1,
    e02_bins_theorem2,
    e03_random_corollary3,
    e04_worstcase_crossover,
    e05_optimality,
    e06_adaptive_cluster,
    e07_cluster_star,
    e08_bins_star_competitive,
    e09_lower_bound_phi,
    e10_adaptive_competitive,
    e11_kvstore_endtoend,
    e12_summary_table,
)
from repro.experiments.framework import (
    Check,
    ExperimentConfig,
    ExperimentResult,
)

_MODULES = [
    e01_cluster_theorem1,
    e02_bins_theorem2,
    e03_random_corollary3,
    e04_worstcase_crossover,
    e05_optimality,
    e06_adaptive_cluster,
    e07_cluster_star,
    e08_bins_star_competitive,
    e09_lower_bound_phi,
    e10_adaptive_competitive,
    e11_kvstore_endtoend,
    e12_summary_table,
    a01_cluster_star_growth,
    a02_bins_star_chunks,
]

REGISTRY: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {
    module.EXPERIMENT_ID: module.TITLE for module in _MODULES
}


def experiment_ids() -> List[str]:
    """All experiment ids, in presentation order."""
    return [module.EXPERIMENT_ID for module in _MODULES]


def run_experiment(
    experiment_id: str, config: ExperimentConfig
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E7"``)."""
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(experiment_ids())}"
        )
    return REGISTRY[key](config)


def run_all(config: ExperimentConfig) -> List[ExperimentResult]:
    """Run the full suite in order."""
    return [run_experiment(eid, config) for eid in experiment_ids()]


__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Check",
    "REGISTRY",
    "TITLES",
    "experiment_ids",
    "run_experiment",
    "run_all",
]
