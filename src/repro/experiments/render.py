"""Terminal rendering helpers for experiment results.

The paper's "figures" are parameter sweeps; in a terminal the closest
faithful rendering is a log-scale ASCII chart. :func:`ascii_chart`
draws one or more series against a shared x-axis (both axes log-scaled
by default, matching how the paper's bounds are read), and
:func:`result_to_json` exports an :class:`ExperimentResult` for CI
dashboards.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.framework import ExperimentResult

_MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Render series as an ASCII scatter chart.

    Non-positive points are dropped on log axes. Each series gets the
    next marker from ``oax+*...``; a legend line maps markers to names.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to be readable")

    def transform(value: float, log: bool) -> Optional[float]:
        if log:
            if value <= 0:
                return None
            return math.log10(value)
        return value

    points_by_series: Dict[str, List] = {}
    all_x: List[float] = []
    all_y: List[float] = []
    for name, y_values in series.items():
        points = []
        for x, y in zip(x_values, y_values):
            tx = transform(x, log_x)
            ty = transform(y, log_y)
            if tx is None or ty is None:
                continue
            points.append((tx, ty))
            all_x.append(tx)
            all_y.append(ty)
        points_by_series[name] = points
    if not all_x:
        return f"{title}\n(no positive data to draw)"
    min_x, max_x = min(all_x), max(all_x)
    min_y, max_y = min(all_y), max(all_y)
    span_x = max_x - min_x or 1.0
    span_y = max_y - min_y or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(points_by_series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for tx, ty in points:
            column = round((tx - min_x) / span_x * (width - 1))
            row = round((ty - min_y) / span_y * (height - 1))
            grid[height - 1 - row][column] = marker
    lines = []
    if title:
        lines.append(title)
    y_top = f"{10**max_y:.2g}" if log_y else f"{max_y:.3g}"
    y_bottom = f"{10**min_y:.2g}" if log_y else f"{min_y:.3g}"
    label_width = max(len(y_top), len(y_bottom))
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = y_top
        elif row_index == height - 1:
            label = y_bottom
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    x_left = f"{10**min_x:.2g}" if log_x else f"{min_x:.3g}"
    x_right = f"{10**max_x:.2g}" if log_x else f"{max_x:.3g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_width
        + "  "
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
    )
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]}={name}"
        for index, name in enumerate(points_by_series)
    )
    lines.append(legend)
    return "\n".join(lines)


def chart_from_result(
    result: ExperimentResult,
    x_column: str,
    y_columns: Sequence[str],
    **chart_kwargs,
) -> str:
    """Chart selected numeric columns of a result table."""
    rows = [
        row
        for row in result.rows
        if isinstance(row.get(x_column), (int, float))
    ]
    if not rows:
        raise ConfigurationError(
            f"no numeric rows for x column {x_column!r}"
        )
    x_values = [float(row[x_column]) for row in rows]
    series = {}
    for column in y_columns:
        series[column] = [
            float(row[column])
            if isinstance(row.get(column), (int, float))
            else float("nan")
            for row in rows
        ]
    title = chart_kwargs.pop(
        "title", f"{result.experiment_id}: {x_column} vs "
        + ", ".join(y_columns)
    )
    return ascii_chart(x_values, series, title=title, **chart_kwargs)


def result_to_json(result: ExperimentResult) -> str:
    """Serialize a result (rows, checks, notes) as pretty JSON."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "claim": result.claim,
        "columns": result.columns,
        "rows": [
            {
                key: value
                for key, value in row.items()
                if not key.startswith("_")
                and isinstance(value, (int, float, str, bool, type(None)))
            }
            for row in result.rows
        ],
        "checks": [
            {
                "name": check.name,
                "passed": check.passed,
                "detail": check.detail,
            }
            for check in result.checks
        ],
        "notes": result.notes,
        "all_passed": result.all_passed,
    }
    return json.dumps(payload, indent=2)
