"""E8 — Theorem 9: ``Bins*`` has competitive ratio ``O(log m)``.

Sweeps the skewed two-instance grid ``(2^i, 2^j)`` (the regime where
``Cluster`` is a factor ``Θ(j/i)`` from optimal, §3.4) and computes
certified competitive-ratio upper bounds:

    ratio_A(i, j) = p_A((2^i, 2^j)) / p*_lower((2^i, 2^j))

exactly for ``Bins*``, ``Cluster`` and ``Random``. Shape predictions:

* Bins*'s worst ratio over the grid is ≤ O(log m) — and stays put as
  the skew j−i grows;
* Cluster's worst ratio grows with the skew (Θ(2^j/2^i) at fixed i),
  exceeding Bins*'s by an unbounded factor;
* as m grows, Bins*'s worst ratio grows ∝ log m (matching Theorem 10's
  lower bound, measured in E9).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.competitive import competitive_ratio_upper
from repro.analysis.exact import (
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.core.bins_star import chunk_count
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.workloads.demand import skewed_pair_grid

EXPERIMENT_ID = "E8"
TITLE = "Competitive ratio of Bins* on skewed profiles (Theorem 9)"
CLAIM = "Bins* has competitive ratio O(log m); Cluster's is unbounded"


def _worst_ratios(m: int, max_exponent: int) -> Dict[str, float]:
    """Worst certified ratio per algorithm over the (2^i, 2^j) grid."""
    worst = {"bins_star": 0.0, "cluster": 0.0, "random": 0.0}
    for _i, _j, profile in skewed_pair_grid(max_exponent):
        values = {
            "bins_star": bins_star_collision_probability(m, profile),
            "cluster": cluster_collision_probability(m, profile),
            "random": random_collision_probability(m, profile),
        }
        for name, p_algorithm in values.items():
            ratio = competitive_ratio_upper(m, profile, p_algorithm)
            worst[name] = max(worst[name], ratio)
    return worst


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E8 (Theorem 9, Bins* competitive ratio); returns its ExperimentResult."""
    m = 1 << 16
    max_exponent = 8 if config.quick else 11
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "i", "j", "bins* ratio", "cluster ratio", "random ratio",
            "log2(m)",
        ],
    )
    log_m = math.log2(m)
    bins_star_ratios: List[float] = []
    cluster_by_skew: Dict[int, float] = {}
    for i, j, profile in skewed_pair_grid(max_exponent):
        ratios = {
            "bins*": competitive_ratio_upper(
                m, profile, bins_star_collision_probability(m, profile)
            ),
            "cluster": competitive_ratio_upper(
                m, profile, cluster_collision_probability(m, profile)
            ),
            "random": competitive_ratio_upper(
                m, profile, random_collision_probability(m, profile)
            ),
        }
        bins_star_ratios.append(ratios["bins*"])
        skew = j - i
        cluster_by_skew[skew] = max(
            cluster_by_skew.get(skew, 0.0), ratios["cluster"]
        )
        result.rows.append(
            {
                "i": i,
                "j": j,
                "bins* ratio": ratios["bins*"],
                "cluster ratio": ratios["cluster"],
                "random ratio": ratios["random"],
                "log2(m)": log_m,
            }
        )
    worst_bins_star = max(bins_star_ratios)
    result.add_check(
        "bins* ratio <= O(log m) over the whole grid",
        worst_bins_star <= 8 * log_m,
        f"worst bins* ratio {worst_bins_star:.2f} vs log2(m) = {log_m}",
    )
    # Cluster's ratio grows with the skew j−i (slope ≈ 1 in 2^(j−i)).
    skews = sorted(cluster_by_skew)
    if len(skews) >= 4:
        result.check_slope(
            "cluster ratio grows with skew 2^(j−i)",
            [float(1 << s) for s in skews],
            [cluster_by_skew[s] for s in skews],
            expected=1.0,
            tolerance=0.25,
        )
    result.add_check(
        "bins* beats cluster at max skew",
        cluster_by_skew[skews[-1]] > 4 * worst_bins_star,
        f"cluster worst {cluster_by_skew[skews[-1]]:.1f} vs bins* worst "
        f"{worst_bins_star:.1f}",
    )
    # Growth in m: worst bins* ratio across m should scale ~ log m.
    m_values = [1 << 12, 1 << 16] if config.quick else [
        1 << 12, 1 << 14, 1 << 16, 1 << 18,
    ]
    growth_rows = []
    for m_sweep in m_values:
        exponent = min(max_exponent, chunk_count(m_sweep) - 1)
        worst = _worst_ratios(m_sweep, exponent)
        growth_rows.append((math.log2(m_sweep), worst["bins_star"]))
    increasing = all(
        b2 >= b1 * 0.9
        for (_, b1), (_, b2) in zip(growth_rows, growth_rows[1:])
    )
    result.add_check(
        "bins* worst ratio tracks log m across m",
        increasing,
        "; ".join(f"log2m={lm:.0f}: {r:.1f}" for lm, r in growth_rows),
    )
    result.notes.append(
        f"m = 2^16 for the grid (exponents ≤ {max_exponent}); ratios are "
        "certified upper bounds (denominator = rigorous p* lower bound), "
        "so the O(log m) conclusion is conservative."
    )
    return result
