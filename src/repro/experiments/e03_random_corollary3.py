"""E3 — Corollary 3: ``p_Random(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/m))``.

The birthday bound for the GUID-style algorithm. Sweeps total demand at
several instance counts and skews; checks the Θ band and the quadratic
growth in d (log-log slope 2) that makes ``Random`` unusable past
``√m`` total IDs.
"""

from __future__ import annotations

import random
from typing import List

from repro.adversary.profiles import DemandProfile, zipf_profile
from repro.analysis.bounds import corollary3_random
from repro.analysis.exact import random_collision_probability
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import SpecFactory
from repro.simulation.montecarlo import estimate_profile_collision

EXPERIMENT_ID = "E3"
TITLE = "Random (GUID-style) collision probability (Corollary 3)"
CLAIM = "p_Random(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/m)) — the birthday regime"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E3 (Corollary 3, Random baseline); returns its ExperimentResult."""
    m = 1 << 24
    rng = random.Random(0xE3)
    n_values = [2, 8] if config.quick else [2, 4, 8, 32]
    d_values = [64, 512, 2048] if config.quick else [
        64, 128, 256, 512, 1024, 2048, 4096,
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=["profile", "n", "d", "exact", "corollary3", "ratio", "mc"],
    )
    ratios: List[float] = []
    for n in n_values:
        for d in d_values:
            if d < n:
                continue
            for label, profile in (
                ("uniform", DemandProfile.uniform(n, d // n)),
                ("zipf", zipf_profile(n, d, 1.2, rng)),
            ):
                exact = float(random_collision_probability(m, profile))
                formula = corollary3_random(m, profile)
                ratio = exact / formula if formula > 0 else float("inf")
                ratios.append(ratio)
                result.rows.append(
                    {
                        "profile": f"{label} n={n}",
                        "n": n,
                        "d": profile.total,
                        "exact": exact,
                        "corollary3": formula,
                        "ratio": ratio,
                        "mc": None,
                        "_profile": profile,
                    }
                )
    for row in result.rows[:: max(1, len(result.rows) // 3)]:
        estimate = estimate_profile_collision(
            SpecFactory("random"),
            m,
            row["_profile"],
            trials=config.trials(1500),
            seed=config.seed,
            plan=config.plan,
        )
        row["mc"] = estimate.probability
        result.add_check(
            f"mc agrees with exact ({row['profile']}, d={row['d']})",
            estimate.ci_low - 0.02 <= row["exact"] <= estimate.ci_high + 0.02,
            f"exact={row['exact']:.4g} vs mc {estimate}",
        )
    result.check_ratio_band("theta band exact/formula", ratios, 1 / 8, 2.0)
    biggest_n = max(n_values)
    # Only the unclamped regime is quadratic; near p = 1 the curve
    # necessarily flattens.
    sweep = [
        r
        for r in result.rows
        if r["profile"] == f"uniform n={biggest_n}" and r["exact"] < 0.2
    ]
    if len(sweep) >= 3:
        result.check_slope(
            "p grows quadratically in d",
            [r["d"] for r in sweep],
            [r["exact"] for r in sweep],
            expected=2.0,
            tolerance=0.2,
        )
    result.notes.append(
        "m = 2^24. Compare with E1: at equal total demand, Random's "
        "probability carries an extra factor ≈ d/n over Cluster's."
    )
    return result
