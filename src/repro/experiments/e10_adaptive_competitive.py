"""E10 — Theorem 11: adaptivity costs Bins*/Bins(k) at most a factor 4.

The reduction in §9 shows the worst adaptive adversary against the
symmetric algorithms behaves like a semi-adaptive follower ``fol(S)``:
replay a demand sequence, stop the moment a collision occurs (early
stops shrink the denominator ``E[p*(D)]``, inflating the ratio). The
resulting competitive ratio exceeds the best *oblivious* ratio along
the sequence by at most 4.

We play ``fol(S)`` for a portfolio of demand sequences against ``Bins*``
and ``Bins(16)``:

* numerator ``p_A(fol(S))`` is computed **exactly** (stopping early
  never prevents the collision that triggers it, so it equals the
  oblivious collision probability of the full profile);
* denominator ``E_{D∼fol(S)}[p*(D)]`` is estimated from the realized
  stopping profiles of seeded Monte-Carlo games;
* the reference is the maximal oblivious ratio over the sequence's
  prefix profiles (the quantity Theorem 11's proof compares against).

Shape check: measured adaptive ratio ≤ 4 × the prefix-maximal oblivious
ratio (with Monte-Carlo slack).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Tuple

from repro.adversary.base import Adversary
from repro.adversary.profiles import DemandProfile
from repro.adversary.semi_adaptive import DemandSequence, FollowerAdversary
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
)
from repro.analysis.optimal import p_star_lower_bound
from repro.core.bins import BinsGenerator
from repro.core.bins_star import BinsStarGenerator
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.game import Game
from repro.simulation.seeds import derive_seed

EXPERIMENT_ID = "E10"
TITLE = "Adaptive vs oblivious competitive ratio (Theorem 11)"
CLAIM = (
    "for Bins* and Bins(k), the adaptive competitive ratio is at most "
    "4× the oblivious one"
)


def _sequences(quick: bool) -> List[Tuple[str, DemandSequence]]:
    portfolio = [
        (
            "uniform rr n=8 h=64",
            DemandSequence.from_profile(
                DemandProfile.uniform(8, 64), order="round_robin"
            ),
        ),
        (
            "skewed seq (256,16,16,16)",
            DemandSequence.from_profile(
                DemandProfile.of(256, 16, 16, 16), order="sequential"
            ),
        ),
    ]
    if not quick:
        portfolio.append(
            (
                "uniform seq n=16 h=32",
                DemandSequence.from_profile(
                    DemandProfile.uniform(16, 32), order="sequential"
                ),
            )
        )
        portfolio.append(
            (
                "pairs rr (128,128)",
                DemandSequence.from_profile(
                    DemandProfile.of(128, 128), order="round_robin"
                ),
            )
        )
    return portfolio


def _prefix_profiles(sequence: DemandSequence, samples: int):
    """A sample of the nontrivial prefix profiles along the sequence."""
    counts = [0] * sequence.num_instances
    profiles = []
    for index, instance in enumerate(sequence.steps):
        counts[instance] += 1
        actives = [c for c in counts if c > 0]
        if len(actives) >= 2:
            profiles.append(DemandProfile(tuple(actives)))
    if len(profiles) <= samples:
        return profiles
    stride = len(profiles) // samples
    sampled = profiles[::stride]
    if profiles[-1] is not sampled[-1]:
        sampled.append(profiles[-1])
    return sampled


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E10 (Theorem 11, adaptivity cost of Bins*); returns its ExperimentResult."""
    m = 1 << 14
    trials = config.trials(800)
    algorithms: List[
        Tuple[str, Callable, Callable[[DemandProfile], Fraction]]
    ] = [
        (
            "bins*",
            lambda mm, rr: BinsStarGenerator(mm, rr),
            lambda D: bins_star_collision_probability(m, D),
        ),
        (
            "bins(16)",
            lambda mm, rr: BinsGenerator(mm, 16, rr),
            lambda D: bins_collision_probability(m, 16, D),
        ),
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "algorithm", "sequence", "p_A (exact)", "E[p*] adaptive",
            "adaptive ratio", "oblivious ratio (max prefix)", "factor",
        ],
    )
    for algo_name, factory, p_exact in algorithms:
        for seq_name, sequence in _sequences(config.quick):
            full_profile = sequence.final_profile()
            numerator = float(p_exact(full_profile))
            # Oblivious reference: best ratio along the prefixes.
            oblivious_ratio = 0.0
            for prefix in _prefix_profiles(sequence, samples=12):
                denominator = float(p_star_lower_bound(m, prefix))
                if denominator > 0:
                    oblivious_ratio = max(
                        oblivious_ratio,
                        float(p_exact(prefix)) / denominator,
                    )
            # Adaptive denominator from realized stopping profiles.
            realized_p_star: List[float] = []
            for trial in range(trials):
                adversary: Adversary = FollowerAdversary(
                    DemandSequence(sequence.steps),
                    stop_immediately_on_collision=True,
                )
                game = Game(
                    factory,
                    m,
                    adversary,
                    seed=derive_seed(config.seed, trial),
                    stop_on_collision=False,  # follower stops itself
                )
                outcome = game.run()
                realized_p_star.append(
                    float(p_star_lower_bound(m, outcome.profile))
                )
            adaptive_denominator = sum(realized_p_star) / len(
                realized_p_star
            )
            adaptive_ratio = numerator / adaptive_denominator
            factor = (
                adaptive_ratio / oblivious_ratio
                if oblivious_ratio > 0
                else float("inf")
            )
            result.rows.append(
                {
                    "algorithm": algo_name,
                    "sequence": seq_name,
                    "p_A (exact)": numerator,
                    "E[p*] adaptive": adaptive_denominator,
                    "adaptive ratio": adaptive_ratio,
                    "oblivious ratio (max prefix)": oblivious_ratio,
                    "factor": factor,
                }
            )
            result.add_check(
                f"{algo_name} / {seq_name}: factor <= 4",
                factor <= 4.0 * 1.5,  # Theorem 11's 4 with MC slack
                f"measured factor {factor:.2f}",
            )
    result.notes.append(
        f"m = 2^14, {trials} follower games per cell. Early stopping on "
        "collision is the only adaptive behaviour — exactly the fol(S) "
        "reduction of the Theorem 11 proof."
    )
    return result
