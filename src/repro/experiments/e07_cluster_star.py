"""E7 — Theorem 8: Cluster* withstands adaptive adversaries.

Runs the full implemented attack suite (closest-pair, greedy-gap,
run-saturation) against both ``Cluster`` and ``Cluster*`` on the same
(m, n, d) grid. Shape predictions:

* against every attack, Cluster*'s collision probability stays at
  ``O((nd/m)·log(1+d/n))`` — within a constant band of the Theorem 8
  target, nowhere near Cluster's ``Θ(n²d/m)``;
* the Cluster/Cluster* probability ratio under attack grows with n
  (the factor Cluster* buys back).
"""

from __future__ import annotations

from typing import Dict, List

from repro.adversary.attacks import (
    ClosestPairAttack,
    GreedyGapAttack,
    RunSaturationAttack,
)
from repro.analysis.bounds import (
    lemma7_adaptive_cluster,
    theorem8_cluster_star,
)
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.montecarlo import estimate_collision_probability

EXPERIMENT_ID = "E7"
TITLE = "Cluster* vs adaptive attacks (Theorem 8)"
CLAIM = (
    "max_Z p_Cluster*(Z) = O(min(1, (nd/m)·log(1+d/n))) — only a log "
    "factor above the oblivious lower bound, vs Cluster's Ω(n²d/m)"
)

ATTACKS = {
    "closest_pair": ClosestPairAttack,
    "greedy_gap": GreedyGapAttack,
    "run_saturation": RunSaturationAttack,
}


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E7 (Theorem 8, Cluster* under adaptivity); returns its ExperimentResult."""
    m = 1 << 20
    d = 1024
    n_values = [4, 16] if config.quick else [4, 8, 16, 32]
    attack_names = (
        ["closest_pair", "greedy_gap"]
        if config.quick
        else list(ATTACKS)
    )
    # The closest-pair attack is O(1) per step; the greedy/saturation
    # attacks pay O(n log d) per step, so they get a smaller budget.
    trials_for = {
        "closest_pair": config.trials(2000),
        "greedy_gap": config.trials(400),
        "run_saturation": config.trials(400),
    }
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "attack", "n", "cluster (mc)", "cluster* (mc)",
            "thm8 target", "cluster*/target", "cluster/cluster*",
        ],
    )
    star_ratios: List[float] = []
    worst_star: Dict[int, float] = {}
    for attack_name in attack_names:
        attack_cls = ATTACKS[attack_name]
        trials = trials_for[attack_name]
        for n in n_values:
            star = estimate_collision_probability(
                SpecFactory("cluster_star"),
                m,
                AttackFactory(attack_cls, n=n, d=d),
                trials=trials,
                seed=config.seed + n,
                plan=config.plan,
            )
            plain = estimate_collision_probability(
                SpecFactory("cluster"),
                m,
                AttackFactory(attack_cls, n=n, d=d),
                trials=trials,
                seed=config.seed + n,
                plan=config.plan,
            )
            target = theorem8_cluster_star(m, n, d)
            star_ratio = star.probability / target
            star_ratios.append(star_ratio)
            worst_star[n] = max(worst_star.get(n, 0.0), star.probability)
            result.rows.append(
                {
                    "attack": attack_name,
                    "n": n,
                    "cluster (mc)": plain.probability,
                    "cluster* (mc)": star.probability,
                    "thm8 target": target,
                    "cluster*/target": star_ratio,
                    "cluster/cluster*": (
                        plain.probability / star.probability
                        if star.probability > 0
                        else None
                    ),
                }
            )
    # O(·) claim: Cluster* stays within a constant of the Thm 8 target
    # under every implemented attack.
    result.check_ratio_band(
        "cluster* <= O((nd/m)·log(1+d/n)) under all attacks",
        star_ratios,
        0.0,
        8.0,
    )
    # Cluster* must not exhibit Cluster's quadratic blow-up: its worst
    # measured probability should sit far below the Lemma 7 curve at
    # large n.
    big_n = max(n_values)
    result.add_check(
        "cluster* escapes the n² blow-up",
        worst_star[big_n] < lemma7_adaptive_cluster(m, big_n, d) / 4,
        f"worst cluster* at n={big_n}: {worst_star[big_n]:.4g} vs "
        f"lemma7 curve {lemma7_adaptive_cluster(m, big_n, d):.4g}",
    )
    result.notes.append(
        f"m = 2^20, d = {d}; games per cell: "
        + ", ".join(f"{k}={v}" for k, v in trials_for.items())
        + ". The same adversary code attacks both algorithms; only the "
        "generator differs."
    )
    return result
