"""E2 — Theorem 2: the three-term collision probability of ``Bins(k)``.

Fixes a family of demand profiles and sweeps the bin size ``k`` across
the full range [1, m], comparing exact probabilities against

    Θ(min(1, (‖D‖₁²−‖D‖₂²)/(km) + n‖D‖₁/m + n²k/m)).

Shape predictions: the ratio stays in a constant band for every (D, k);
the k-sweep at fixed D is U-shaped (birthday term shrinking, n²k/m
term growing); and the k minimizing the exact probability sits near the
per-instance demand (Lemma 16's optimality of Bins(h) on uniform D).
"""

from __future__ import annotations

import random
from typing import List

from repro.adversary.profiles import DemandProfile, zipf_profile
from repro.analysis.bounds import theorem2_bins
from repro.analysis.exact import bins_collision_probability
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import SpecFactory
from repro.simulation.montecarlo import estimate_profile_collision

EXPERIMENT_ID = "E2"
TITLE = "Bins(k) collision probability across bin sizes (Theorem 2)"
CLAIM = (
    "p_Bins(k)(D) = Θ(min(1, (‖D‖₁²−‖D‖₂²)/(km) + n‖D‖₁/m + n²k/m))"
)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E2 (Theorem 2, Bins(k) collision bound); returns its ExperimentResult."""
    m = 1 << 20
    rng = random.Random(0xE2)
    profiles = [
        ("uniform", DemandProfile.uniform(8, 128)),
        ("zipf", zipf_profile(8, 1024, 1.2, rng)),
        ("pair", DemandProfile.of(16, 1024)),
    ]
    k_values = [1, 4, 16, 64, 128, 512, 4096] if config.quick else [
        1, 2, 4, 16, 64, 128, 256, 512, 2048, 8192, 1 << 15,
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=["profile", "k", "exact", "theorem2", "ratio", "mc"],
    )
    ratios: List[float] = []
    for label, profile in profiles:
        best_k, best_p = None, None
        for k in k_values:
            if profile.max_demand > (m // k) * k:
                continue
            exact = float(bins_collision_probability(m, k, profile))
            formula = theorem2_bins(m, k, profile)
            ratio = exact / formula if formula > 0 else float("inf")
            ratios.append(ratio)
            result.rows.append(
                {
                    "profile": label,
                    "k": k,
                    "exact": exact,
                    "theorem2": formula,
                    "ratio": ratio,
                    "mc": None,
                    "_profile": profile,
                }
            )
            if best_p is None or exact < best_p:
                best_k, best_p = k, exact
        if label == "uniform":
            # Lemma 16: on (h,...,h) the best k should be ≈ h = 128.
            h = profile.max_demand
            result.add_check(
                "optimal k near per-instance demand (Lemma 16)",
                best_k is not None and h // 4 <= best_k <= h * 4,
                f"argmin_k exact = {best_k}, per-instance demand h = {h}",
            )
    # MC cross-check a few rows.
    for row in result.rows[:: max(1, len(result.rows) // 3)]:
        estimate = estimate_profile_collision(
            SpecFactory("bins:{}".format(row["k"])),
            m,
            row["_profile"],
            trials=config.trials(1500),
            seed=config.seed,
            plan=config.plan,
        )
        row["mc"] = estimate.probability
        result.add_check(
            f"mc agrees with exact ({row['profile']}, k={row['k']})",
            estimate.ci_low - 0.02 <= row["exact"] <= estimate.ci_high + 0.02,
            f"exact={row['exact']:.4g} vs mc {estimate}",
        )
    result.check_ratio_band(
        "theta band exact/formula", ratios, 1 / 16, 2.0
    )
    result.notes.append(
        "m = 2^20. The k-sweep shows Theorem 2's U-shape: the birthday "
        "term (‖D‖₁²−‖D‖₂²)/(km) dominates small k, the fragmentation "
        "term n²k/m dominates large k."
    )
    return result
