"""E5 — Theorem 6 + Lemmas 16/18: Cluster is worst-case optimal.

Three measured components:

1. **Lemma 16** (the anchor): on uniform profiles ``(h,)*n``, ``Bins(h)``
   beats every other implemented algorithm — exactly.
2. **Lemma 18**: the fraction of ε-bad profiles in ``D1(n, d)`` decays
   exponentially in n (measured on uniform samples from D1).
3. **Theorem 6**: on sampled (ε-good) profiles, the certified lower
   bound on ``p*`` stays within a constant of ``min(1, nd/m)`` — i.e.
   no algorithm can beat Cluster's worst case by more than a constant.
"""

from __future__ import annotations

from typing import List

from repro.adversary.profiles import (
    DemandProfile,
    is_epsilon_good,
)
from repro.analysis.bounds import theorem6_lower_bound
from repro.analysis.exact import (
    bins_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.analysis.optimal import (
    optimal_uniform_collision,
    p_star_lower_bound,
)
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.workloads.demand import random_compositions

EXPERIMENT_ID = "E5"
TITLE = "Worst-case optimality of Cluster (Theorem 6, Lemmas 16/18)"
CLAIM = (
    "p*(D) = Ω(min(1, nd/m)) for all but an exp(−Θ(n)) fraction of "
    "D1(n, d); Bins(h) is exactly optimal on uniform profiles"
)

EPSILON = 0.25


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E5 (Theorem 6, Cluster worst-case optimality); returns its ExperimentResult."""
    m = 1 << 20
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "n", "d", "bad fraction", "median p*_lb", "thm6 target",
            "ratio", "bins(h) exact", "best rival",
        ],
    )
    samples = 100 if config.quick else 400
    n_values = [4, 8, 16] if config.quick else [4, 8, 16, 32, 64]
    bad_fractions: List[float] = []
    for n in n_values:
        d = 64 * n
        # -- Lemma 16 on the contained uniform profile -------------------
        h = d // n
        uniform = DemandProfile.uniform(n, h)
        optimal = float(optimal_uniform_collision(m, n, h))
        rivals = {
            "random": float(random_collision_probability(m, uniform)),
            "cluster": float(cluster_collision_probability(m, uniform)),
            "bins(h/4)": float(
                bins_collision_probability(m, max(1, h // 4), uniform)
            ),
            "bins(4h)": float(
                bins_collision_probability(m, 4 * h, uniform)
            ),
        }
        best_rival_name = min(rivals, key=rivals.get)
        result.add_check(
            f"Bins(h) optimal on uniform (n={n})",
            all(optimal <= value + 1e-15 for value in rivals.values()),
            f"Bins(h)={optimal:.4g} vs best rival "
            f"{best_rival_name}={rivals[best_rival_name]:.4g}",
        )
        # -- Lemma 18 + Theorem 6 on sampled profiles --------------------
        bad = 0
        ratios: List[float] = []
        for profile in random_compositions(n, d, samples, config.seed + n):
            if not is_epsilon_good(profile, EPSILON):
                bad += 1
                continue
            lower = float(p_star_lower_bound(m, profile))
            target = theorem6_lower_bound(m, n, d)
            ratios.append(lower / target)
        bad_fraction = bad / samples
        bad_fractions.append(max(bad_fraction, 1e-12))
        ratios.sort()
        median_ratio = ratios[len(ratios) // 2] if ratios else float("nan")
        result.rows.append(
            {
                "n": n,
                "d": d,
                "bad fraction": bad_fraction,
                "median p*_lb": (
                    median_ratio * theorem6_lower_bound(m, n, d)
                    if ratios
                    else None
                ),
                "thm6 target": theorem6_lower_bound(m, n, d),
                "ratio": median_ratio,
                "bins(h) exact": optimal,
                "best rival": best_rival_name,
            }
        )
        if ratios:
            result.add_check(
                f"p* = Ω(nd/m) on good profiles (n={n})",
                ratios[0] >= 1 / 64,
                f"min certified ratio {ratios[0]:.4g} "
                f"(median {median_ratio:.4g})",
            )
    # Lemma 18: exponential decay of the bad fraction in n.
    decaying = all(
        later <= earlier + 1e-9
        for earlier, later in zip(bad_fractions, bad_fractions[1:])
    )
    result.add_check(
        "epsilon-bad fraction decays in n (Lemma 18)",
        decaying and bad_fractions[-1] <= 0.05,
        f"fractions by n: "
        + ", ".join(f"{b:.3g}" for b in bad_fractions),
    )
    result.notes.append(
        f"m = 2^20, d = 64n, ε = {EPSILON}, {samples} uniform samples "
        "from D1(n, d) per row. The p* lower bound is the certified "
        "contained-uniform/rank bound of analysis.optimal."
    )
    return result
