"""E12 — the Table-1-style summary: all algorithms × all four settings.

One canonical configuration (m = 2^20, n = 8, d = 2048) measured for
every algorithm in every evaluation setting of the paper's Table 1:

* worst-case oblivious: exact probability on the uniform profile
  (the worst shape up to constants for all of them);
* competitive oblivious: certified ratio on the skewed pair (16, 1024);
* worst-case adaptive: Monte-Carlo under the strongest implemented
  attack;
* competitive adaptive: follower-adversary ratio on a skewed sequence.

This is the "which algorithm do I pick" table a systems reader wants:
Cluster for oblivious worst case, Cluster* when adversaries adapt,
Bins* when demand skew matters.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Callable, Dict, Optional

from repro.adversary.attacks import ClosestPairAttack, GreedyGapAttack
from repro.adversary.profiles import DemandProfile
from repro.adversary.semi_adaptive import DemandSequence, FollowerAdversary
from repro.analysis.competitive import competitive_ratio_upper
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.analysis.optimal import p_star_lower_bound
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.game import Game
from repro.simulation.montecarlo import (
    estimate_collision_probability,
    estimate_profile_collision,
)
from repro.simulation.seeds import derive_seed

EXPERIMENT_ID = "E12"
TITLE = "Summary: every algorithm in every setting (Table 1 overview)"
CLAIM = (
    "Cluster optimal worst-case oblivious; Cluster* near-optimal "
    "worst-case adaptive; Bins* optimal competitive (both adversaries)"
)

M = 1 << 20
N = 8
D_TOTAL = 2048
SKEW_PAIR = DemandProfile.of(16, 1024)

FACTORIES: Dict[str, Callable] = {
    "random": SpecFactory("random"),
    "cluster": SpecFactory("cluster"),
    "bins(256)": SpecFactory("bins:256"),
    "cluster*": SpecFactory("cluster_star"),
    "bins*": SpecFactory("bins_star"),
}

EXACT: Dict[str, Optional[Callable[[DemandProfile], Fraction]]] = {
    "random": lambda D: random_collision_probability(M, D),
    "cluster": lambda D: cluster_collision_probability(M, D),
    "bins(256)": lambda D: bins_collision_probability(M, 256, D),
    "cluster*": None,  # no closed form — Monte Carlo
    "bins*": lambda D: bins_star_collision_probability(M, D),
}


def _oblivious_worst_case(
    name: str, config: ExperimentConfig
) -> float:
    """Worst probability over the extremal shapes of D1(N, D_TOTAL).

    A single fixed profile would be misleading: on the *uniform*
    profile Bins(h) is literally optimal (Lemma 16), so Cluster's
    worst-case optimality only shows against the worst profile each
    algorithm gets. Exact search where a closed form exists; candidate
    shapes + Monte Carlo for Cluster*.
    """
    from repro.adversary.worst_case import (
        candidate_profiles,
        find_worst_profile,
    )

    exact_fn = EXACT[name]
    if exact_fn is not None:
        _profile, value = find_worst_profile(exact_fn, N, D_TOTAL)
        return float(value)
    worst = 0.0
    for profile in candidate_profiles(N, D_TOTAL):
        estimate = estimate_profile_collision(
            FACTORIES[name], M, profile,
            trials=config.trials(1000), seed=config.seed,
            plan=config.plan,
        )
        worst = max(worst, estimate.probability)
    return worst


def _competitive_oblivious(
    name: str, config: ExperimentConfig
) -> float:
    exact_fn = EXACT[name]
    if exact_fn is not None:
        p_algorithm: Fraction = exact_fn(SKEW_PAIR)
    else:
        estimate = estimate_profile_collision(
            FACTORIES[name], M, SKEW_PAIR,
            trials=config.trials(4000), seed=config.seed,
            plan=config.plan,
        )
        p_algorithm = Fraction(estimate.probability).limit_denominator(
            10**9
        )
    return competitive_ratio_upper(M, SKEW_PAIR, p_algorithm)


def _adaptive_worst_case(name: str, config: ExperimentConfig) -> float:
    worst = 0.0
    for attack_cls in (ClosestPairAttack, GreedyGapAttack):
        trials = config.trials(
            1500 if attack_cls is ClosestPairAttack else 300
        )
        estimate = estimate_collision_probability(
            FACTORIES[name], M,
            AttackFactory(attack_cls, n=N, d=D_TOTAL),
            trials=trials, seed=config.seed,
            plan=config.plan,
        )
        worst = max(worst, estimate.probability)
    return worst


def _competitive_adaptive(name: str, config: ExperimentConfig) -> float:
    sequence = DemandSequence.from_profile(
        DemandProfile.of(1024, 512, 256, 256), order="sequential"
    )
    full_profile = sequence.final_profile()
    exact_fn = EXACT[name]
    trials = config.trials(400)
    collisions = 0
    realized: list = []
    for trial in range(trials):
        game = Game(
            FACTORIES[name], M,
            FollowerAdversary(DemandSequence(sequence.steps)),
            seed=derive_seed(config.seed, trial),
            stop_on_collision=False,
        )
        outcome = game.run()
        collisions += outcome.collided
        realized.append(float(p_star_lower_bound(M, outcome.profile)))
    if exact_fn is not None:
        numerator = float(exact_fn(full_profile))
    else:
        numerator = collisions / trials
    denominator = sum(realized) / len(realized)
    return numerator / denominator


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E12 (the all-settings summary table); returns its ExperimentResult."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "algorithm", "worst-case oblivious", "competitive oblivious",
            "worst-case adaptive", "competitive adaptive",
        ],
    )
    names = (
        ["random", "cluster", "bins*"]
        if config.quick
        else list(FACTORIES)
    )
    table: Dict[str, Dict[str, float]] = {}
    for name in names:
        row = {
            "worst-case oblivious": _oblivious_worst_case(name, config),
            "competitive oblivious": _competitive_oblivious(name, config),
            "worst-case adaptive": _adaptive_worst_case(name, config),
            "competitive adaptive": _competitive_adaptive(name, config),
        }
        table[name] = row
        result.rows.append({"algorithm": name, **row})
    # The paper's headline orderings.
    result.add_check(
        "cluster best worst-case oblivious",
        table["cluster"]["worst-case oblivious"]
        <= min(r["worst-case oblivious"] for r in table.values()) * 1.5,
        f"cluster {table['cluster']['worst-case oblivious']:.4g}",
    )
    result.add_check(
        "bins* best competitive oblivious",
        table["bins*"]["competitive oblivious"]
        <= min(r["competitive oblivious"] for r in table.values()) * 1.5,
        f"bins* ratio {table['bins*']['competitive oblivious']:.3g}",
    )
    if "cluster*" in table:
        result.add_check(
            "cluster* beats cluster under adaptive attack",
            table["cluster*"]["worst-case adaptive"]
            < table["cluster"]["worst-case adaptive"],
            f"cluster* {table['cluster*']['worst-case adaptive']:.4g} vs "
            f"cluster {table['cluster']['worst-case adaptive']:.4g}",
        )
    result.notes.append(
        f"m = 2^20, n = {N}, d = {D_TOTAL}; skew pair {SKEW_PAIR.demands}. "
        "Worst-case oblivious and competitive columns are exact where a "
        "closed form exists (all but Cluster*)."
    )
    return result
