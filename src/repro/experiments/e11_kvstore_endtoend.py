"""E11 — the §1 motivation, end to end: ID collisions corrupt caches.

Runs the full distributed substrate — n MiniRocks nodes, YCSB traffic,
periodic SST migrations, one shared block cache — with a deliberately
tiny ID universe so collisions happen at laptop scale, comparing the
UUIDP algorithms as the file-ID source. Traffic is executed by the
:class:`~repro.workloads.driver.WorkloadDriver`: each repeat is one
driver shard (an independent fleet + client stream, seeded via
``derive_seed``), which also yields serving metrics — throughput and
tail latency per algorithm. Measured per algorithm:

* how many file IDs the fleet minted, and how many collided
  (the UUIDP event itself);
* how many reads consulted a wrong-file cache block, and how many
  returned provably wrong results (the corruption the paper's RocksDB
  deployment guards against);
* agreement of the measured ID-collision rate with the paper's formula
  for that algorithm (Random: birthday in total IDs; Cluster: n·d/m);
* ops/s and p50/p99 op latency under the same traffic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    cluster_collision_probability,
    random_collision_probability,
)
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.kvstore.options import Options
from repro.simulation.seeds import derive_seed
from repro.workloads.driver import (
    DriverConfig,
    DriverResult,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
)
from repro.workloads.ycsb import WorkloadSpec

EXPERIMENT_ID = "E11"
TITLE = "End-to-end cache corruption in the KV cluster (§1 motivation)"
CLAIM = (
    "uncoordinated file-ID collisions manifest as silent cache "
    "corruption once SSTs migrate; Cluster reduces them by ~d/n vs Random"
)

ALGORITHMS = ["random", "cluster", "bins_star"]


def _run_fleet(
    algorithm: str, m: int, nodes: int, spec: WorkloadSpec,
    seed: int, shards: int,
) -> Tuple[DriverResult, List[Dict[str, float]]]:
    """Drive ``shards`` independent fleets; return driver + per-shard
    collision/corruption metrics."""

    def options() -> Options:
        return Options(
            memtable_entries=16,
            block_entries=8,
            level0_file_limit=3,
            id_universe=m,
            id_algorithm=algorithm,
            bloom_bits_per_key=0,  # force block reads through the cache
        )

    config = DriverConfig(
        spec=spec,
        shards=shards,
        workers=1,
        seed=seed,
        rebalance_every=250,
        moves_per_rebalance=2,
    )
    # Single-copy fleets (RF=1) on ring routing: the experiment
    # measures *uncoordinated ID minting*, and replication would
    # multiply every flush (and its minted ID) by RF, changing the
    # collision arithmetic the checks encode. Fault-tolerance
    # scenarios live in the chaos test lane instead.
    driver = WorkloadDriver(
        cluster_target_factory(
            nodes, options, cache_blocks=4096, replication_factor=1
        ),
        config,
        collect=flush_and_report,
    )
    result = driver.run()
    per_shard = []
    for shard in result.shard_results:
        report = shard.collected
        per_shard.append(
            {
                "ids_minted": report.audit.total_ids_assigned,
                "id_collisions": report.audit.collision_count,
                "corrupt_block_reads": report.corrupt_block_reads,
                "corrupt_results": report.corrupt_results,
                "migrations": report.migrations,
                "hit_rate": report.cache_hit_rate,
            }
        )
    return result, per_shard


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E11 (the end-to-end KV collision demo); returns its ExperimentResult."""
    m = 1 << 13
    nodes = 6
    spec = WorkloadSpec(
        workload="a",  # 50% updates: plenty of flushes and compactions
        record_count=600 if config.quick else 1200,
        operation_count=2500 if config.quick else 9000,
        value_size=24,
    )
    # 5 quick repeats, not 3: ring routing (PR 5) redistributes keys
    # across nodes, and at p~0.85 a 3-sample estimate of "runs with a
    # collision" fails the 0.5-tolerance check ~6% of the time — 5
    # samples push that below 1%.
    repeats = 5 if config.quick else 8
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "algorithm", "ids minted", "id collisions",
            "corrupt block reads", "corrupt results", "migrations",
            "cache hit rate", "collision runs", "ops/s", "p99 us",
        ],
    )
    collision_runs: Dict[str, int] = {}
    totals: Dict[str, Dict[str, float]] = {}
    corruption_without_collision_runs = 0
    for algorithm in ALGORITHMS:
        driver_result, per_shard = _run_fleet(
            algorithm, m, nodes, spec,
            seed=derive_seed(config.seed, 0xE11),
            shards=repeats,
        )
        runs_with_collision = 0
        accumulated: Dict[str, float] = {}
        for metrics in per_shard:
            if metrics["id_collisions"] > 0:
                runs_with_collision += 1
            elif metrics["corrupt_block_reads"] > 0:
                corruption_without_collision_runs += 1
            for key, value in metrics.items():
                accumulated[key] = accumulated.get(key, 0.0) + value
        averaged = {k: v / repeats for k, v in accumulated.items()}
        collision_runs[algorithm] = runs_with_collision
        totals[algorithm] = averaged
        latency = driver_result.histogram.summary()
        result.rows.append(
            {
                "algorithm": algorithm,
                "ids minted": averaged["ids_minted"],
                "id collisions": averaged["id_collisions"],
                "corrupt block reads": averaged["corrupt_block_reads"],
                "corrupt results": averaged["corrupt_results"],
                "migrations": averaged["migrations"],
                "cache hit rate": averaged["hit_rate"],
                "collision runs": f"{runs_with_collision}/{repeats}",
                "ops/s": round(driver_result.ops_per_second),
                "p99 us": round(latency["p99_us"], 1),
            }
        )
    # Shape: Random should collide in (nearly) every run at this scale,
    # Cluster in (nearly) none, and corruption only follows collision.
    d_total = int(totals["random"]["ids_minted"])
    predicted_random = float(
        random_collision_probability(
            m, DemandProfile((max(1, d_total // nodes),) * nodes)
        )
    )
    predicted_cluster = float(
        cluster_collision_probability(
            m, DemandProfile((max(1, d_total // nodes),) * nodes)
        )
    )
    result.add_check(
        "random collides about as often as the birthday bound predicts",
        abs(collision_runs["random"] / repeats - predicted_random) <= 0.5,
        f"measured {collision_runs['random']}/{repeats}, "
        f"exact p_Random={predicted_random:.3f}",
    )
    result.add_check(
        "cluster collides far less than random (Cor 4)",
        collision_runs["cluster"] <= collision_runs["random"]
        and predicted_cluster < predicted_random,
        f"cluster {collision_runs['cluster']}/{repeats} vs random "
        f"{collision_runs['random']}/{repeats} "
        f"(exact: {predicted_cluster:.3f} vs {predicted_random:.3f})",
    )
    result.add_check(
        "corruption only ever follows an ID collision",
        corruption_without_collision_runs == 0,
        f"{corruption_without_collision_runs} collision-free runs "
        "showed corrupt reads",
    )
    result.notes.append(
        f"m = 2^13 (deliberately tiny so collisions are observable), "
        f"{nodes} nodes, YCSB-A via WorkloadDriver with migrations every "
        f"250 ops, {repeats} driver shards (independent fleets) per "
        "algorithm, metrics averaged; ops/s and p99 are wall-clock "
        "serving metrics over the measured phase (every other column "
        "is seed-deterministic). Note Bins* collides most here: at this "
        "load every instance reaches the last chunks, where only a "
        "handful of large bins exist — Bins* buys competitive "
        "optimality, not worst-case optimality."
    )
    return result
