"""Shared experiment infrastructure.

Every paper claim is reproduced by one experiment module exposing

    run(config: ExperimentConfig) -> ExperimentResult

An :class:`ExperimentResult` carries the measured table (rows of one
sweep), a set of :class:`Check` outcomes encoding the paper's *shape*
predictions (who wins, scaling exponents, constant bands), and renders
itself as markdown for ``EXPERIMENTS.md``.

Shape checking philosophy: a Θ/O/Ω statement predicts a ratio between
measurement and formula that is bounded by constants across a sweep.
We assert the band (with generous slack — Monte-Carlo noise and honest
constants) and, where the claim is a growth rate, the log-log slope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.simulation.plan import SimulationPlan, fold_legacy_kwargs


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: Smaller parameters / fewer trials; used by the test suite.
    quick: bool = False
    #: Root seed for all randomness in the experiment.
    seed: int = 20230414  # the paper's arXiv date
    #: Multiplier on Monte-Carlo trial counts.
    trials_scale: float = 1.0
    #: How Monte-Carlo legs execute and when they stop: engine, worker
    #: processes, and the adaptive precision target all live here. The
    #: per-experiment ``config.trials(base)`` counts become the trial
    #: *cap* once ``plan.target_halfwidth`` is set.
    plan: SimulationPlan = SimulationPlan()
    #: Deprecated — fold into ``plan`` (kept as shims for one release).
    workers: Optional[int] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        overrides = {}
        if self.workers is not None:
            overrides["workers"] = self.workers
        if self.engine is not None:
            overrides["engine"] = self.engine
        if overrides:
            folded = fold_legacy_kwargs(
                self.plan,
                overrides,
                "ExperimentConfig(workers=, engine=)",
                stacklevel=3,
            )
            object.__setattr__(self, "plan", folded)
            # Clear the folded fields: equality/hash must match a
            # plan-built config, and dataclasses.replace() must not
            # re-fold (and re-warn) on every copy.
            object.__setattr__(self, "workers", None)
            object.__setattr__(self, "engine", None)

    def trials(self, base: int) -> int:
        """Trial count: ``base`` scaled, quartered in quick mode."""
        scaled = int(base * self.trials_scale)
        if self.quick:
            scaled = max(50, scaled // 8)
        return max(1, scaled)


@dataclass
class Check:
    """One pass/fail shape assertion with its evidence."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


@dataclass
class ExperimentResult:
    """The output of one experiment: a table plus its shape checks."""

    experiment_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """True when every recorded check passed."""
        return all(check.passed for check in self.checks)

    def add_check(self, name: str, passed: bool, detail: str) -> None:
        """Record one named pass/fail check with its detail string."""
        self.checks.append(Check(name, passed, detail))

    def check_ratio_band(
        self,
        name: str,
        ratios: Sequence[float],
        low: float,
        high: float,
    ) -> None:
        """Assert every measured/formula ratio lies in [low, high]."""
        finite = [r for r in ratios if math.isfinite(r)]
        if not finite:
            self.add_check(name, False, "no finite ratios")
            return
        worst_low, worst_high = min(finite), max(finite)
        passed = worst_low >= low and worst_high <= high
        self.add_check(
            name,
            passed,
            f"ratios in [{worst_low:.3g}, {worst_high:.3g}], "
            f"required [{low:.3g}, {high:.3g}]",
        )

    def check_slope(
        self,
        name: str,
        xs: Sequence[float],
        ys: Sequence[float],
        expected: float,
        tolerance: float,
    ) -> None:
        """Assert the log-log slope of (xs, ys) is ``expected ± tolerance``."""
        from repro.analysis.bounds import log_log_slope

        try:
            slope = log_log_slope(xs, ys)
        except Exception as exc:  # pragma: no cover - degenerate sweeps
            self.add_check(name, False, f"slope undefined: {exc}")
            return
        passed = abs(slope - expected) <= tolerance
        self.add_check(
            name,
            passed,
            f"log-log slope {slope:.3f}, expected {expected} ± {tolerance}",
        )

    def check_dominates(
        self,
        name: str,
        winners: Sequence[float],
        losers: Sequence[float],
        slack: float = 1.0,
    ) -> None:
        """Assert ``winners[i] <= slack * losers[i]`` pointwise."""
        violations = [
            (winner, loser)
            for winner, loser in zip(winners, losers)
            if winner > slack * loser
        ]
        self.add_check(
            name,
            not violations,
            f"{len(violations)}/{len(list(winners))} violations "
            f"(slack {slack})",
        )

    # -- rendering ----------------------------------------------------------

    def to_markdown(self) -> str:
        """Render the result as a markdown section."""
        lines: List[str] = [
            f"### {self.experiment_id}: {self.title}",
            "",
            f"*Claim:* {self.claim}",
            "",
        ]
        if self.rows:
            lines.append("| " + " | ".join(self.columns) + " |")
            lines.append("|" + "---|" * len(self.columns))
            for row in self.rows:
                cells = [_format_cell(row.get(col)) for col in self.columns]
                lines.append("| " + " | ".join(cells) + " |")
            lines.append("")
        if self.checks:
            lines.append("Shape checks:")
            lines.append("")
            for check in self.checks:
                lines.append(f"- {check}")
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 1_000_000_000:
        return f"2^{value.bit_length() - 1}~" if value > 0 else str(value)
    return str(value)


def geometric_midpoint_crossover(
    xs: Sequence[float], a_values: Sequence[float], b_values: Sequence[float]
) -> Optional[float]:
    """First x where series ``a`` overtakes series ``b`` (or None).

    Returns the geometric midpoint of the bracketing xs — enough
    precision for "where does the crossover fall" shape checks.
    """
    previous_sign = None
    for x, a, b in zip(xs, a_values, b_values):
        sign = a > b
        if previous_sign is not None and sign != previous_sign[1]:
            return math.sqrt(previous_sign[0] * x)
        previous_sign = (x, sign)
    return None
