"""E1 — Theorem 1: ``p_Cluster(D) = Θ(min(1, n·‖D‖₁/m))``.

Sweeps demand profiles of three shapes (uniform, Zipf-skewed, maximally
skewed) across total demand and instance counts, computes the **exact**
collision probability of ``Cluster`` (closed form, big ints), and
cross-validates a subset with Monte Carlo. Shape predictions:

* exact/formula ratio stays inside a constant band over the whole
  sweep (that is the Θ);
* at fixed n, probability grows linearly in d (log-log slope 1);
* at fixed d, probability grows linearly in n.
"""

from __future__ import annotations

import random
from typing import List

from repro.adversary.profiles import DemandProfile, zipf_profile
from repro.analysis.bounds import theorem1_cluster
from repro.analysis.exact import cluster_collision_probability
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import SpecFactory
from repro.simulation.montecarlo import estimate_profile_collision
from repro.workloads.demand import max_skew_profile

EXPERIMENT_ID = "E1"
TITLE = "Cluster collision probability (Theorem 1)"
CLAIM = "p_Cluster(D) = Θ(min(1, n·‖D‖₁/m)) for every demand profile D"


def _profiles(m: int, quick: bool):
    """(label, profile) sweep covering shapes and scales."""
    rng = random.Random(0xE1)
    n_values = [2, 4, 16] if quick else [2, 4, 8, 16, 64]
    d_factors = [256, 4096] if quick else [64, 256, 1024, 4096, 16384]
    for n in n_values:
        for factor in d_factors:
            d = n * factor
            if d > m // 4:
                continue
            yield f"uniform n={n}", DemandProfile.uniform(n, factor)
            yield f"zipf n={n}", zipf_profile(n, d, 1.2, rng)
            yield f"maxskew n={n}", max_skew_profile(n, d)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E1 (Theorem 1, Cluster collision bound); returns its ExperimentResult."""
    m = 1 << 24
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "profile", "n", "d", "exact", "theorem1", "ratio", "mc",
        ],
    )
    ratios: List[float] = []
    for label, profile in _profiles(m, config.quick):
        exact = float(cluster_collision_probability(m, profile))
        formula = theorem1_cluster(m, profile)
        ratio = exact / formula if formula > 0 else float("inf")
        ratios.append(ratio)
        result.rows.append(
            {
                "profile": label,
                "n": profile.n,
                "d": profile.total,
                "exact": exact,
                "theorem1": formula,
                "ratio": ratio,
                "mc": None,
                "_profile": profile,  # not a rendered column
            }
        )
    # Monte-Carlo cross-validation on a handful of rows (restricted to
    # modest total demand: game cost is O(trials · d)).
    small_rows = [r for r in result.rows if r["d"] <= 8192]
    mc_rows = small_rows[:: max(1, len(small_rows) // 4)]
    for row in mc_rows:
        profile = row["_profile"]
        estimate = estimate_profile_collision(
            SpecFactory("cluster"),
            m,
            profile,
            trials=config.trials(2000),
            seed=config.seed,
            plan=config.plan,
        )
        row["mc"] = estimate.probability
        exact = row["exact"]
        in_ci = estimate.ci_low - 0.02 <= exact <= estimate.ci_high + 0.02
        result.add_check(
            f"mc agrees with exact ({row['profile']}, d={row['d']})",
            in_ci,
            f"exact={exact:.4g} vs mc {estimate}",
        )
    # Θ band: the union-bound constant is ~1; allow [1/8, 2].
    result.check_ratio_band("theta band exact/formula", ratios, 1 / 8, 2.0)
    # Linearity in d at fixed n (uniform rows, n = max swept).
    uniform_rows = [
        r for r in result.rows if r["profile"].startswith("uniform")
    ]
    biggest_n = max(r["n"] for r in uniform_rows)
    # Slope checks only make sense in the linear (unclamped) regime:
    # near p = 1 the min(1, ·) bends every curve flat.
    sweep = [
        r
        for r in uniform_rows
        if r["n"] == biggest_n and r["exact"] < 0.2
    ]
    if len(sweep) >= 2:
        result.check_slope(
            "p grows linearly in d",
            [r["d"] for r in sweep],
            [r["exact"] for r in sweep],
            expected=1.0,
            tolerance=0.15,
        )
    # Linearity in n at (roughly) fixed per-instance demand.
    by_n = {}
    for r in uniform_rows:
        per_instance = r["d"] // r["n"]
        by_n.setdefault(per_instance, []).append(r)
    for per_instance, rows in sorted(by_n.items()):
        if len(rows) >= 3:
            # Exact pair count is n(n−1)/2, so the finite-n slope sits a
            # little above 2; tolerance covers the small-n correction.
            result.check_slope(
                f"p grows ~quadratically in n at h={per_instance} "
                "(uniform: d = n·h ⇒ nd = n²h)",
                [r["n"] for r in rows],
                [r["exact"] for r in rows],
                expected=2.0,
                tolerance=0.4,
            )
            break
    result.notes.append(
        f"m = 2^24; exact probabilities via the circular disjoint-arcs "
        f"count, {len(result.rows)} profiles."
    )
    return result
