"""A2 — ablation: Bins*'s chunk count ``C = ⌈log m − log log m⌉``.

Bins* partitions the universe into ``C`` chunks of doubling bin sizes.
``C`` controls how many *size classes* of demand get their own region:

* fewer chunks ⇒ fewer size classes ⇒ instances with very different
  loads are forced to share bin granularities, and the competitive
  ratio degrades toward Bins(k)'s profile-dependence;
* the capacity ``2^C − 1`` shrinks with C, so fewer chunks also caps
  the serviceable per-instance demand.

The ablation computes the **exact** worst competitive ratio over the
skewed pair grid for C ∈ {C_paper, C_paper−2, ...} and the capacity of
each setting. Expectation: the paper's C maximizes serviceable demand
while keeping the worst ratio at its (flat) optimum — shrinking C never
helps and eventually hurts badly.
"""

from __future__ import annotations

from repro.analysis.competitive import competitive_ratio_upper
from repro.analysis.exact import bins_star_collision_probability
from repro.core.bins_star import chunk_count
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.workloads.demand import skewed_pair_grid

EXPERIMENT_ID = "A2"
TITLE = "Ablation: Bins* chunk count (design choice of §7.1)"
CLAIM = (
    "C = ⌈log m − log log m⌉ maximizes capacity (2^C − 1 ≥ m/log m) "
    "while the worst-case competitive ratio stays at its optimum"
)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run ablation A2 (Bins* chunk count); returns its ExperimentResult."""
    m = 1 << 16
    c_paper = chunk_count(m)
    c_values = (
        [c_paper, c_paper - 3]
        if config.quick
        else [c_paper, c_paper - 1, c_paper - 2, c_paper - 4, c_paper - 6]
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "chunks C", "capacity 2^C−1", "worst ratio", "grid max exp",
            "is paper C",
        ],
    )
    worst_by_c = {}
    for c in c_values:
        capacity = (1 << c) - 1
        max_exponent = min(capacity.bit_length() - 1, 11)
        worst = 0.0
        for _i, _j, profile in skewed_pair_grid(max_exponent):
            if profile.max_demand > capacity:
                continue
            ratio = competitive_ratio_upper(
                m,
                profile,
                bins_star_collision_probability(m, profile, num_chunks=c),
            )
            worst = max(worst, ratio)
        worst_by_c[c] = worst
        result.rows.append(
            {
                "chunks C": c,
                "capacity 2^C−1": capacity,
                "worst ratio": worst,
                "grid max exp": max_exponent,
                "is paper C": c == c_paper,
            }
        )
    # The paper's C must be (near-)best on the ratio...
    best_ratio = min(worst_by_c.values())
    result.add_check(
        "paper C achieves the best worst ratio (within 25%)",
        worst_by_c[c_paper] <= 1.25 * best_ratio,
        f"paper C={c_paper}: {worst_by_c[c_paper]:.1f}, "
        f"best over sweep: {best_ratio:.1f}",
    )
    # ...while strictly dominating on capacity.
    result.add_check(
        "paper C maximizes serviceable demand",
        all((1 << c) - 1 <= (1 << c_paper) - 1 for c in c_values),
        f"capacity at paper C: {(1 << c_paper) - 1} "
        f"(≥ m/log m = {m // 16})",
    )
    smallest = min(c_values)
    result.add_check(
        "shrinking C eventually hurts the ratio",
        worst_by_c[smallest] >= worst_by_c[c_paper],
        f"C={smallest}: {worst_by_c[smallest]:.1f} vs "
        f"C={c_paper}: {worst_by_c[c_paper]:.1f}",
    )
    result.notes.append(
        f"m = 2^16, paper C = {c_paper}. Ratios are exact certified "
        "upper bounds over the skewed pair grid (capped per capacity)."
    )
    return result
