"""A1 — ablation: Cluster*'s run-growth factor.

Why does Cluster* grow runs by exactly 2? The growth factor ``g``
interpolates between the two baseline algorithms and their failure
modes:

* ``g = 1`` **is** ``Random`` (every run is a fresh uniform ID): safe
  from prediction but pays the full birthday cost
  ``Θ((‖D‖₁²−‖D‖₂²)/m)`` — catastrophic once total demand passes √m —
  and loses all locality (runs per instance = demand).
* Large ``g`` approaches ``Cluster``'s behaviour per run and, more
  importantly for the Theorem 8 proof, blows up the *active-ID*
  budget: an instance that has served ``r`` requests may have reserved
  up to ``~g·r`` IDs (the proof's ``Σ 2^{T_i} ≤ 2d`` step relies on
  g = 2), inflating both fragmentation and the collision budget.

The ablation sweeps ``g ∈ {1, 2, 4, 8, 16}`` under the implemented
attack suite and reports the attacked collision probability, the run
count λ per instance (metadata/locality cost), and the reserved-to-
requested overhead (the proof's active-ID budget). Expectation: g = 2
is the knee — the smallest g with logarithmic λ and overhead ≤ 2,
while g = 1 pays the Random birthday cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.adversary.attacks import ClosestPairAttack, GreedyGapAttack
from repro.adversary.profiles import DemandProfile
from repro.analysis.bounds import corollary3_random, theorem8_cluster_star
from repro.core.cluster_star import ClusterStarGenerator
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import AttackFactory
from repro.simulation.montecarlo import estimate_collision_probability
from repro.simulation.seeds import derive_seed, rng_for


@dataclass(frozen=True)
class GrowthFactory:
    """Picklable factory for a :class:`ClusterStarGenerator` at ``growth``.

    The sweep's lambda equivalent cannot cross process boundaries, so
    this shim is what lets the ablation run through the plan seam
    (``workers=``, adaptive precision) like every other experiment.
    """

    growth: int

    def __call__(self, m: int, rng) -> ClusterStarGenerator:
        return ClusterStarGenerator(m, rng, growth=self.growth)

EXPERIMENT_ID = "A1"
TITLE = "Ablation: Cluster* run-growth factor (design choice of §3.3)"
CLAIM = (
    "growth 2 is the knee: the smallest factor with λ = O(log d) runs "
    "and reserved/requested ≤ 2; growth 1 degenerates to Random's "
    "birthday cost"
)


def _instance_costs(
    m: int, growth: int, demand: int, seed: int
) -> Dict[str, float]:
    """Average runs-per-instance (at ``demand``) and reservation overhead.

    The overhead (reserved IDs / requested IDs) depends on where the
    demand lands relative to run boundaries, so it is averaged over a
    spread of demand levels around ``demand`` to smooth the sawtooth.
    """
    samples = 8
    runs_total = 0
    for index in range(samples):
        generator = ClusterStarGenerator(
            m, rng_for(seed, index), growth=growth
        )
        generator.take(demand)
        runs_total += len(generator.runs)
    overhead_total = 0.0
    demand_levels = [
        max(1, demand // 2), max(2, 3 * demand // 4), demand,
        3 * demand // 2, 2 * demand,
    ]
    for level_index, level in enumerate(demand_levels):
        generator = ClusterStarGenerator(
            m, rng_for(seed, 0x0FF, level_index), growth=growth
        )
        generator.take(level)
        reserved = sum(length for _, length in generator.runs)
        overhead_total += reserved / level
    return {
        "runs": runs_total / samples,
        "overhead": overhead_total / len(demand_levels),
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run ablation A1 (Cluster* run-growth factor); returns its ExperimentResult."""
    m = 1 << 20
    n = 8
    d = 1024
    growth_values = [1, 2, 8] if config.quick else [1, 2, 4, 8, 16]
    trials_closest = config.trials(1000)
    trials_greedy = config.trials(200)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "growth", "attacked p (worst)", "runs/instance",
            "reserved/requested", "closest_pair p", "greedy_gap p",
        ],
    )
    worst_by_growth: Dict[int, float] = {}
    costs_by_growth: Dict[int, Dict[str, float]] = {}
    for growth in growth_values:
        worst = 0.0
        per_attack = {}
        for attack_cls, trials in (
            (ClosestPairAttack, trials_closest),
            (GreedyGapAttack, trials_greedy),
        ):
            estimate = estimate_collision_probability(
                GrowthFactory(growth),
                m,
                AttackFactory(attack_cls, n=n, d=d),
                trials=trials,
                seed=derive_seed(config.seed, growth),
                plan=config.plan,
            )
            probability = estimate.probability
            per_attack[attack_cls.__name__] = probability
            worst = max(worst, probability)
        costs = _instance_costs(m, growth, d // n, config.seed)
        worst_by_growth[growth] = worst
        costs_by_growth[growth] = costs
        result.rows.append(
            {
                "growth": growth,
                "attacked p (worst)": worst,
                "runs/instance": costs["runs"],
                "reserved/requested": costs["overhead"],
                "closest_pair p": per_attack["ClosestPairAttack"],
                "greedy_gap p": per_attack["GreedyGapAttack"],
            }
        )
    # g=1 is Random: its attacked probability is the oblivious birthday
    # cost (adaptivity adds nothing against per-ID randomness).
    birthday = corollary3_random(m, DemandProfile((d // n,) * n))
    result.add_check(
        "growth 1 pays Random's birthday cost",
        0.25 * birthday <= worst_by_growth[1] <= 2.0 * birthday + 0.05,
        f"measured {worst_by_growth[1]:.3f} vs Cor3 target "
        f"{birthday:.3f}",
    )
    result.add_check(
        "growth 1 loses all locality (runs ≈ demand)",
        costs_by_growth[1]["runs"] >= 0.9 * (d // n),
        f"runs at g=1: {costs_by_growth[1]['runs']:.1f} "
        f"vs demand {d // n}",
    )
    import math

    expected_log = math.log2(d // n) + 1
    result.add_check(
        "growth 2 keeps λ logarithmic (Theorem 8's budget)",
        costs_by_growth[2]["runs"] <= 2 * expected_log,
        f"runs at g=2: {costs_by_growth[2]['runs']:.1f} vs "
        f"log2(d/n)+1 = {expected_log:.1f}",
    )
    result.add_check(
        "growth 2 reserves at most 2x the requested IDs",
        costs_by_growth[2]["overhead"] <= 2.0 + 1e-9,
        f"overhead at g=2: {costs_by_growth[2]['overhead']:.2f}",
    )
    worst_overhead = max(
        costs_by_growth[g]["overhead"] for g in growth_values if g > 2
    )
    result.add_check(
        "larger growth inflates the reservation overhead",
        worst_overhead >= 1.5 * costs_by_growth[2]["overhead"],
        "overheads: "
        + "; ".join(
            f"g={g}: {costs_by_growth[g]['overhead']:.2f}"
            for g in growth_values
        ),
    )
    # Every g >= 2 stays within the Theorem 8 O-band at this scale.
    target = theorem8_cluster_star(m, n, d)
    within = {
        g: p for g, p in worst_by_growth.items() if g >= 2
    }
    result.add_check(
        "all growth >= 2 stay within the Theorem 8 band",
        all(p <= 8 * target for p in within.values()),
        "; ".join(f"g={g}: {p:.4f}" for g, p in within.items())
        + f" vs target {target:.4f}",
    )
    result.notes.append(
        f"m = 2^20, n = {n}, d = {d}; closest_pair {trials_closest} "
        f"games, greedy_gap {trials_greedy} games per growth. "
        "Reserved/requested is the proof's active-ID budget: the "
        "Σ2^Ti ≤ 2d step of Theorem 8 holds only for growth 2."
    )
    return result
