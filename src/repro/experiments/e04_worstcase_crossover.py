"""E4 — Corollaries 4/5: Cluster ≼ Bins(k) ≼ Random, and the safe-scale gap.

The paper's headline systems message: on worst-case oblivious demand
(``D1(n, d)``, realized by the uniform profile), Cluster's worst case is
``Θ(nd/m)`` against Random's ``Θ(d²/m)`` — so Cluster's safe operating
scale is ``m/n`` total IDs versus Random's ``√m``.

The experiment sweeps total demand ``d`` at fixed (m, n) and reports:

* exact worst-case-shaped probabilities for Random, Cluster and two
  Bins(k) settings — verifying the pointwise domination of Corollary 4;
* the demand at which each algorithm's collision probability crosses
  1/2 (its "failure scale") — who fails first, and by what factor.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    bins_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.experiments.framework import ExperimentConfig, ExperimentResult

EXPERIMENT_ID = "E4"
TITLE = "Worst-case scaling: who fails first (Corollaries 4 & 5)"
CLAIM = (
    "p_Cluster = O(p_Bins(k)) = O(p_Random) pointwise; worst-case failure "
    "scales: Random at d ≈ √m, Cluster at d ≈ m/n"
)


def _failure_scale(ds: List[int], ps: List[float]) -> Optional[int]:
    """First swept demand where the probability exceeds 1/2."""
    for d, p in zip(ds, ps):
        if p >= 0.5:
            return d
    return None


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E4 (Corollaries 4/5, strategy ordering); returns its ExperimentResult."""
    m = 1 << 20
    n = 16
    exponents = range(5, 19, 2) if config.quick else range(5, 19)
    d_values = [n * (1 << e) // n * n for e in exponents]  # multiples of n
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "d", "random", "bins(16)", "bins(256)", "cluster", "winner",
        ],
    )
    series: Dict[str, List[float]] = {
        "random": [],
        "bins(16)": [],
        "bins(256)": [],
        "cluster": [],
    }
    swept_d: List[int] = []
    for d in d_values:
        if d > m:
            continue
        profile = DemandProfile.uniform(n, d // n)
        values = {
            "random": float(random_collision_probability(m, profile)),
            "cluster": float(cluster_collision_probability(m, profile)),
        }
        for k in (16, 256):
            key = f"bins({k})"
            if profile.max_demand <= (m // k) * k:
                values[key] = float(
                    bins_collision_probability(m, k, profile)
                )
            else:
                values[key] = 1.0
        swept_d.append(d)
        for key, value in values.items():
            series[key].append(value)
        winner = min(values, key=values.get)
        result.rows.append({"d": d, **values, "winner": winner})
    # Corollary 4: pointwise domination (constant-factor slack for Θ).
    result.check_dominates(
        "cluster <= O(random)", series["cluster"], series["random"],
        slack=2.0,
    )
    for k in (16, 256):
        result.check_dominates(
            f"cluster <= O(bins({k}))",
            series["cluster"],
            series[f"bins({k})"],
            slack=2.0,
        )
    # Failure scales.
    fail_random = _failure_scale(swept_d, series["random"])
    fail_cluster = _failure_scale(swept_d, series["cluster"])
    sqrt_m = int(math.isqrt(m))
    result.add_check(
        "random fails near sqrt(m)",
        fail_random is not None
        and sqrt_m // 4 <= fail_random <= sqrt_m * 8,
        f"first d with p >= 1/2: {fail_random}, sqrt(m) = {sqrt_m}",
    )
    expected_cluster = m // n
    result.add_check(
        "cluster fails near m/n",
        fail_cluster is not None
        and expected_cluster // 8 <= fail_cluster <= expected_cluster * 8,
        f"first d with p >= 1/2: {fail_cluster}, m/n = {expected_cluster}",
    )
    if fail_random is not None and fail_cluster is not None:
        gain = fail_cluster / fail_random
        result.add_check(
            "cluster extends the safe scale by ~sqrt(m)/n",
            gain >= math.sqrt(m) / n / 8,
            f"measured gain {gain:.1f}×, sqrt(m)/n = {math.sqrt(m)/n:.1f}",
        )
    result.notes.append(
        f"m = 2^20, n = {n}, uniform profiles (the worst-case shape for "
        "both algorithms up to constants). 128-bit extrapolation: Random "
        "is unsafe past 2^64 IDs; Cluster past 2^128/n."
    )
    return result
