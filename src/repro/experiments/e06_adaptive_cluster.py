"""E6 — Lemma 7: an adaptive adversary inflates Cluster by a factor n.

Runs the paper's closest-pair adversary (implemented literally from the
Lemma 7 proof) against ``Cluster`` across an n-sweep, with the oblivious
baseline measured on the same (n, d) budget. Shape predictions:

* adaptive collision probability ≈ Θ(n²d/m): log-log slope ≈ 2 in n
  at fixed d (vs slope ≈ 1 for the oblivious baseline);
* the adaptive/oblivious ratio grows ≈ linearly in n.
"""

from __future__ import annotations

from typing import List

from repro.adversary.attacks import ClosestPairAttack
from repro.adversary.profiles import DemandProfile
from repro.analysis.adaptive import closest_pair_attack_cluster_exact
from repro.analysis.bounds import lemma7_adaptive_cluster
from repro.analysis.exact import cluster_collision_probability
from repro.experiments.framework import ExperimentConfig, ExperimentResult
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.montecarlo import estimate_collision_probability

EXPERIMENT_ID = "E6"
TITLE = "Adaptive attack on Cluster (Lemma 7)"
CLAIM = "p_Cluster(Z) = Ω(min(1, n²d/m)) for the closest-pair adversary Z"


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E6 (Lemma 7, adaptive inflation of Cluster); returns its ExperimentResult."""
    m = 1 << 20
    d = 1024
    n_values = [4, 8, 16] if config.quick else [4, 8, 16, 32]
    trials = config.trials(3000)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "n", "d", "adaptive (mc)", "adaptive (exact)",
            "oblivious (exact)", "lemma7 target", "adaptive/oblivious",
            "target ratio n",
        ],
    )
    adaptive_series: List[float] = []
    oblivious_series: List[float] = []
    for n in n_values:
        estimate = estimate_collision_probability(
            SpecFactory("cluster"),
            m,
            AttackFactory(ClosestPairAttack, n=n, d=d),
            trials=trials,
            seed=config.seed + n,
            plan=config.plan,
        )
        # The attack has a closed form (spacings of n uniform points):
        # the Monte-Carlo column must straddle it.
        adaptive_exact = float(closest_pair_attack_cluster_exact(m, n, d))
        result.add_check(
            f"mc matches the exact attack curve (n={n})",
            abs(estimate.probability - adaptive_exact)
            <= 3 * (estimate.ci_high - estimate.ci_low) + 0.02,
            f"exact={adaptive_exact:.4g} vs mc {estimate}",
        )
        # Oblivious baseline: the same budget split as the attack does
        # before adapting is irrelevant — any D1(n, d) profile gives
        # Θ(nd/m); use the attack's own final shape (d−n on one).
        profile = DemandProfile((d - n + 1,) + (1,) * (n - 1))
        oblivious = float(cluster_collision_probability(m, profile))
        adaptive_series.append(max(adaptive_exact, 1e-9))
        oblivious_series.append(oblivious)
        result.rows.append(
            {
                "n": n,
                "d": d,
                "adaptive (mc)": estimate.probability,
                "adaptive (exact)": adaptive_exact,
                "oblivious (exact)": oblivious,
                "lemma7 target": lemma7_adaptive_cluster(m, n, d),
                "adaptive/oblivious": (
                    adaptive_exact / oblivious if oblivious else None
                ),
                "target ratio n": n,
            }
        )
    result.check_slope(
        "adaptive probability grows ~n² (Lemma 7)",
        n_values,
        adaptive_series,
        expected=2.0,
        tolerance=0.5,
    )
    result.check_slope(
        "oblivious baseline grows ~n (Theorem 1: nd/m at fixed d)",
        n_values,
        oblivious_series,
        expected=1.0,
        tolerance=0.35,
    )
    # The gap between the two slopes is Lemma 7's message: adaptivity
    # buys the adversary an extra factor of ~n.
    gap_ratios = [
        adaptive / oblivious
        for adaptive, oblivious in zip(adaptive_series, oblivious_series)
    ]
    result.check_slope(
        "adaptive/oblivious ratio grows ~n",
        n_values,
        gap_ratios,
        expected=1.0,
        tolerance=0.6,
    )
    # Lower-bound check: adaptive ≥ c · n²d/m for some constant c.
    floor_ratios = [
        measured / lemma7_adaptive_cluster(m, n, d)
        for n, measured in zip(n_values, adaptive_series)
    ]
    result.check_ratio_band(
        "adaptive >= Ω(n²d/m)", floor_ratios, 1 / 16, 16.0
    )
    result.notes.append(
        f"m = 2^20, d = {d}, {trials} Monte-Carlo games per n. "
        "The oblivious column is exact. The growing ratio column is the "
        "cost of adaptivity that Cluster* eliminates (E7)."
    )
    return result
