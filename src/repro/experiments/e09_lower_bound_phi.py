"""E9 — Theorem 10 / Lemma 25: every algorithm pays Ω(log m) on Φ.

For the hard distribution Φ over profiles ``(2^i, 2^j)`` (Eq. 7), the
paper proves ``E_Φ[p_A] = Ω(log²m/m)`` for *every* algorithm while the
per-profile optimum averages ``E_Φ[p*] = O(log m/m)`` — so every
algorithm's competitive ratio is Ω(log m).

We evaluate both expectations **exactly** (Φ weights are exact
fractions, and each algorithm's collision probability on two-instance
profiles has a closed form) for Random, Cluster, Bins(k), Bins* and the
per-profile SkewAware construction. Shape predictions:

* ratio ``E_Φ[p_A] / E_Φ[p*_upper]`` ≥ c·log m for every A, growing
  with log m across an m-sweep (slope ≈ 1 in log m ⇒ this really is
  the Ω(log m) phenomenon, not a constant);
* ``E_Φ[p*_upper]`` itself stays O(log m/m).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Dict, List

from repro.adversary.phi import PhiDistribution
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
    skew_aware_pair_collision,
)
from repro.experiments.framework import ExperimentConfig, ExperimentResult

EXPERIMENT_ID = "E9"
TITLE = "The Ω(log m) competitive lower bound on Φ (Theorem 10)"
CLAIM = (
    "E_Φ[p_A(D)] = Ω(log²m/m) for every algorithm A, while "
    "E_Φ[p*(D)] = O(log m/m) — ratio Ω(log m) for everyone"
)


def _algorithms(m: int) -> Dict[str, Callable[[DemandProfile], Fraction]]:
    return {
        "random": lambda D: random_collision_probability(m, D),
        "cluster": lambda D: cluster_collision_probability(m, D),
        "bins(16)": lambda D: bins_collision_probability(m, 16, D),
        "bins*": lambda D: bins_star_collision_probability(m, D),
    }


def _p_star_upper(m: int, profile: DemandProfile) -> Fraction:
    """Tight p* upper bound on a pair profile via Lemma 24's construction."""
    low, high = sorted(profile.demands)
    return skew_aware_pair_collision(m, low, high)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Run E9 (Theorem 10, the phi lower bound); returns its ExperimentResult."""
    m_values = (
        [1 << 10, 1 << 14] if config.quick else [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        claim=CLAIM,
        columns=[
            "m", "algorithm", "E_phi[p_A]", "E_phi[p*]", "ratio",
            "log2(m)", "ratio/log2(m)",
        ],
    )
    ratios_by_algorithm: Dict[str, List[float]] = {}
    logs: List[float] = []
    for m in m_values:
        phi = PhiDistribution(m)
        expected_p_star = phi.expectation(lambda D: _p_star_upper(m, D))
        log_m = math.log2(m)
        logs.append(log_m)
        result.add_check(
            f"E_phi[p*] = O(log m/m) at m=2^{int(log_m)}",
            expected_p_star <= 8 * log_m / m,
            f"E[p*]={expected_p_star:.3e} vs log2(m)/m={log_m/m:.3e}",
        )
        for name, p_fn in _algorithms(m).items():
            expected_p = phi.expectation(p_fn)
            ratio = expected_p / expected_p_star
            ratios_by_algorithm.setdefault(name, []).append(ratio)
            result.rows.append(
                {
                    "m": m,
                    "algorithm": name,
                    "E_phi[p_A]": expected_p,
                    "E_phi[p*]": expected_p_star,
                    "ratio": ratio,
                    "log2(m)": log_m,
                    "ratio/log2(m)": ratio / log_m,
                }
            )
    for name, ratios in ratios_by_algorithm.items():
        floor = min(
            r / lm for r, lm in zip(ratios, logs)
        )
        result.add_check(
            f"{name}: ratio >= Ω(log m) at every m",
            floor >= 1 / 16,
            f"min ratio/log2(m) = {floor:.3g}",
        )
    # Only the optimal algorithm should *stay* at Θ(log m): Bins*'s
    # normalized ratio must be bounded across the m-sweep, while
    # Random's ratio (≈ √m on Φ's heaviest profiles) must outgrow it.
    bins_star_normalized = [
        r / lm for r, lm in zip(ratios_by_algorithm["bins*"], logs)
    ]
    result.check_ratio_band(
        "bins*: ratio stays Θ(log m) across the sweep "
        "(normalized band)",
        bins_star_normalized,
        min(bins_star_normalized),
        3.0 * min(bins_star_normalized),
    )
    if len(logs) >= 3:
        from repro.analysis.bounds import log_log_slope

        slope_random = log_log_slope(
            logs, ratios_by_algorithm["random"]
        )
        slope_bins_star = log_log_slope(
            logs, ratios_by_algorithm["bins*"]
        )
        result.add_check(
            "random's ratio outgrows bins*'s (bins* optimality)",
            slope_random > slope_bins_star + 0.5,
            f"growth exponents: random {slope_random:.2f} vs "
            f"bins* {slope_bins_star:.2f}",
        )
    result.notes.append(
        "All expectations are exact (big-int fractions over Φ's "
        "support). p* is upper-bounded by the Lemma 24 construction, "
        "making the Ω(log m) ratio conclusion conservative."
    )
    return result
