"""Command-line interface: ``uuidp`` / ``python -m repro.cli``.

Subcommands
-----------
``list``
    Show the available algorithms and experiments.
``generate``
    Emit IDs from one algorithm instance (hex or decimal).
``analyze``
    Exact collision probability of an algorithm on a demand profile.
``simulate``
    Monte-Carlo a profile or an adaptive attack.
``experiment``
    Run one experiment (or ``all``) and print its markdown table.
``kv``
    Drive a YCSB workload (A–F) against a MiniRocks store, a simulated
    cluster, or a remote ``uuidp serve`` instance (``--target network
    --addr HOST:PORT``); report ops/s and p50/p95/p99 latency.
``serve``
    Expose a store or cluster over the asyncio RPC protocol so ``kv``
    (and anything speaking :mod:`repro.distributed.protocol`) can
    drive it over real sockets.
``report``
    Run the full suite and write EXPERIMENTS-style markdown to a file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.adversary.attacks import ClosestPairAttack, GreedyGapAttack
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import exact_collision_probability
from repro.core.registry import available_algorithms, make_generator
from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    experiment_ids,
    run_all,
    run_experiment,
)
from repro.idspace.encoding import id_to_hex
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.montecarlo import (
    estimate_collision_probability,
    estimate_profile_collision,
)
from repro.simulation.plan import SimulationPlan, available_engines
from repro.simulation.seeds import rng_for


def _plan_from_args(args: argparse.Namespace) -> SimulationPlan:
    """Build the :class:`SimulationPlan` the plan options describe."""
    return SimulationPlan(
        engine=args.engine,
        workers=args.workers,
        target_halfwidth=args.precision,
        max_trials=args.max_trials,
    )


def _parse_profile(text: str) -> DemandProfile:
    return DemandProfile(tuple(int(x) for x in text.split(",")))


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("experiments:")
    from repro.experiments import TITLES

    for eid in experiment_ids():
        print(f"  {eid}: {TITLES[eid]}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = make_generator(args.algorithm, args.m, rng_for(args.seed))
    for _ in range(args.count):
        value = generator.next_id()
        if args.hex:
            print(id_to_hex(value, args.m))
        else:
            print(value)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    profile = _parse_profile(args.profile)
    probability = exact_collision_probability(
        args.algorithm, args.m, profile
    )
    print(
        f"p_{args.algorithm}(D={profile.demands}, m={args.m}) = "
        f"{float(probability):.6g}  (exact: {probability})"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    factory = SpecFactory(args.algorithm)
    if args.attack:
        attack_cls = {
            "closest_pair": ClosestPairAttack,
            "greedy_gap": GreedyGapAttack,
        }[args.attack]
        profile = _parse_profile(args.profile)
        n, d = profile.n, profile.total
        estimate = estimate_collision_probability(
            factory,
            args.m,
            AttackFactory(attack_cls, n=n, d=d),
            trials=args.trials,
            seed=args.seed,
            plan=_plan_from_args(args),
        )
        label = f"{args.attack} attack (n={n}, d={d})"
    else:
        profile = _parse_profile(args.profile)
        estimate = estimate_profile_collision(
            factory,
            args.m,
            profile,
            trials=args.trials,
            seed=args.seed,
            plan=_plan_from_args(args),
        )
        label = f"oblivious profile {profile.demands}"
    print(f"{args.algorithm} vs {label} on m={args.m}: {estimate}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.render import chart_from_result, result_to_json

    config = ExperimentConfig(
        quick=args.quick, seed=args.seed, plan=_plan_from_args(args),
    )
    ids = experiment_ids() if args.id.lower() == "all" else [args.id]
    exit_code = 0
    for eid in ids:
        result = run_experiment(eid, config)
        if args.json:
            print(result_to_json(result))
        else:
            print(result.to_markdown())
        if args.chart:
            x_column, _, y_spec = args.chart.partition(":")
            y_columns = [c for c in y_spec.split(",") if c]
            print(chart_from_result(result, x_column, y_columns))
        if not result.all_passed:
            exit_code = 1
    return exit_code


def _parse_chaos(args: argparse.Namespace):
    """Build the ChaosEvent schedule from --kill-at/--recover-at.

    ``--kill-mode crash`` turns every kill into a process crash
    (memtable dropped, WAL replayed on recover) instead of a clean
    outage; it needs a durable fleet, i.e. ``--write-mode``.
    """
    from repro.workloads.driver import ChaosEvent

    kill_mode = getattr(args, "kill_mode", "outage")
    events = []
    for action, specs in (
        ("kill", args.kill_at or []),
        ("recover", args.recover_at or []),
    ):
        for text in specs:
            at_op, _, node = text.partition(":")
            try:
                events.append(
                    ChaosEvent(
                        at_op=int(at_op),
                        action=action,
                        node=int(node) if node else 0,
                        mode=kill_mode if action == "kill" else "outage",
                    )
                )
            except ValueError:
                raise ReproError(
                    f"--{action}-at wants OP[:NODE] (integers), "
                    f"got {text!r}"
                )
    return tuple(events)


def _parse_write_mode(text):
    """Map the ``--write-mode`` flag to a WriteMode, or None (in-memory)."""
    if text is None:
        return None
    from repro.kvstore.wal import WriteMode

    return WriteMode(text)


def _parse_addr(text: str):
    """Split ``HOST:PORT`` (IPv6 hosts use the last colon)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ReproError(f"--addr wants HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(f"--addr port must be an integer, got {port!r}")


def _cmd_kv(args: argparse.Namespace) -> int:
    """Drive a YCSB workload through the WorkloadDriver."""
    import json

    from repro.distributed.cluster import majority
    from repro.distributed.rpc import (
        network_flush_and_report,
        network_target_factory,
    )
    from repro.kvstore.options import Options
    from repro.workloads.driver import (
        DriverConfig,
        WorkloadDriver,
        cluster_target_factory,
        flush_and_report,
        store_target_factory,
        validate_chaos_schedule,
    )
    from repro.workloads.ycsb import WorkloadSpec

    spec = WorkloadSpec(
        workload=args.workload,
        record_count=args.records,
        operation_count=args.ops,
        value_size=args.value_size,
        zipf_theta=args.theta,
        max_scan_length=args.scan_length,
    )

    write_mode = _parse_write_mode(args.write_mode)
    durable = write_mode is not None

    def options() -> Options:
        extra = {"write_mode": write_mode} if durable else {}
        return Options(
            id_algorithm=args.algorithm,
            id_universe=args.id_universe,
            **extra,
        )

    autoscaler_cfg = None
    if args.autoscale or args.arrival != "static":
        from repro.distributed.autoscaler import AutoscalerConfig
        from repro.workloads.demand import make_arrival

        if args.autoscale and args.target != "cluster":
            raise ReproError(
                "--autoscale needs --target cluster (membership "
                "changes are in-process); --arrival alone still works "
                "on any target as monitor-only SLO accounting"
            )
        knobs = {}
        for name in (
            "period", "amplitude", "flash_at", "flash_ticks",
            "peak", "burst_prob", "burst_ticks",
        ):
            value = getattr(args, f"arrival_{name}")
            if value is not None:
                knobs[name] = value
        min_nodes = (
            args.min_nodes
            if args.min_nodes is not None
            else max(1, args.replication)
        )
        if args.autoscale:
            if not min_nodes <= args.nodes <= args.max_nodes:
                raise ReproError(
                    f"--nodes {args.nodes} must start inside "
                    f"[--min-nodes {min_nodes}, --max-nodes "
                    f"{args.max_nodes}]"
                )
            if min_nodes < args.replication:
                raise ReproError(
                    f"--min-nodes {min_nodes} < --replication "
                    f"{args.replication}: scale-down below RF would "
                    "lose replicas (decommission refuses it)"
                )
        autoscaler_cfg = AutoscalerConfig(
            arrival=make_arrival(args.arrival, args.arrival_rate, **knobs),
            slo_p99_ms=args.slo_p99_ms,
            min_nodes=min_nodes,
            max_nodes=args.max_nodes,
            node_capacity=args.node_capacity,
            check_every=args.scale_check_every,
            shed_after_ms=args.shed_after_ms,
            enabled=args.autoscale,
        )

    chaos = _parse_chaos(args)
    if args.kill_mode == "crash":
        if not durable:
            raise ReproError(
                "--kill-mode crash drops unsynced state, which needs "
                "durable simulated storage: add --write-mode "
                "{nosync,batch,sync}"
            )
        if args.target == "network":
            raise ReproError(
                "--kill-mode crash needs an in-process durable fleet "
                "(--target cluster); the network server only supports "
                "outage kills"
            )
    # Pre-flight the schedule's internal consistency (a recover at or
    # before its kill tick would silently no-op or crash mid-run) for
    # every fault-injectable target, before any load phase runs.
    if chaos:
        validate_chaos_schedule(chaos)
    # The resolved quorums (majority defaults applied) — computed once
    # and used by the pre-flight check, the JSON echo, and the human
    # summary, so the three can never drift.
    read_q = (
        args.read_quorum
        if args.read_quorum is not None
        else majority(args.replication)
    )
    write_q = majority(args.replication)
    if args.target == "cluster":
        # Pre-flight the chaos schedule so misconfigurations fail
        # before the load phase, not 90% into the run.
        if chaos:
            for event in chaos:
                if event.node >= args.nodes:
                    raise ReproError(
                        f"chaos event targets node {event.node} but "
                        f"--nodes is {args.nodes}"
                    )
        if any(event.action == "kill" for event in chaos):
            # With one node dead a quorum op needs RF-1 >= max(R, W)
            # live replicas on every preference list, which the
            # defaults only satisfy from RF=3 (W is always the
            # majority of RF).
            if args.replication - 1 < max(read_q, write_q):
                raise ReproError(
                    f"a --kill-at schedule with --replication "
                    f"{args.replication} makes quorum loss certain "
                    f"(RF-1 live replicas < R/W); use --replication 3 "
                    f"or higher to tolerate a node death"
                )
        factory = cluster_target_factory(
            args.nodes,
            options,
            replication_factor=args.replication,
            read_quorum=args.read_quorum,
            durable=durable,
        )
        collect = flush_and_report
    elif args.target == "network":
        if args.addr is None:
            raise ReproError("--target network needs --addr HOST:PORT")
        if args.replication != 1 or args.read_quorum is not None or durable:
            raise ReproError(
                "--replication/--read-quorum/--write-mode configure the "
                "deployment; with --target network they belong on the "
                "`uuidp serve` command line, not the client"
            )
        if args.rebalance_every is not None:
            raise ReproError(
                "--rebalance-every is not supported over --target "
                "network (the balancer runs inside the server)"
            )
        host, port = _parse_addr(args.addr)
        # Chaos schedules ARE supported: kill/recover travel as RPC
        # admin ops to the connection's server-side target. Node
        # bounds are checked by the server (it owns --nodes).
        factory = network_target_factory(
            host, port, timeout=args.op_timeout
        )
        collect = network_flush_and_report
    else:
        if args.replication != 1 or args.read_quorum is not None or chaos:
            raise ReproError(
                "--replication/--read-quorum/--kill-at/--recover-at "
                "need --target cluster or network"
            )
        factory = store_target_factory(options, durable=durable)
        collect = None
    config = DriverConfig(
        spec=spec,
        shards=args.shards,
        workers=args.workers,
        warmup_operations=args.warmup,
        seed=args.seed,
        rebalance_every=args.rebalance_every,
        chaos=chaos,
        autoscaler=autoscaler_cfg,
    )
    result = WorkloadDriver(factory, config, collect=collect).run()
    if args.json:
        payload = result.to_dict()
        # The full resolved deployment config rides along so the
        # uploaded artifact is self-describing and reproducible.
        payload["config"].update(
            {
                "target": args.target,
                "algorithm": args.algorithm,
                "id_universe": args.id_universe,
                # "memory" = no durable storage layer (the default);
                # otherwise the group-commit WriteMode driven.
                "write_mode": args.write_mode or "memory",
            }
        )
        if args.target == "cluster":
            payload["config"].update(
                {
                    "nodes": args.nodes,
                    "replication_factor": args.replication,
                    # The *resolved* quorums (majority default
                    # applied), not the raw flags — the artifact must
                    # not require re-deriving defaults to be
                    # reproducible.
                    "read_quorum": read_q,
                    "write_quorum": write_q,
                }
            )
            payload["cluster"] = [
                {
                    "corrupt_block_reads": s.collected.corrupt_block_reads,
                    "corrupt_results": s.collected.corrupt_results,
                    "migrations": s.collected.migrations,
                    "cache_hit_rate": s.collected.cache_hit_rate,
                    "id_collisions": s.collected.audit.collision_count,
                    "dead_nodes": s.collected.dead_nodes,
                    "hints_outstanding": s.collected.hints_outstanding,
                    "hints_replayed": s.collected.hints_replayed,
                    "read_repairs": s.collected.read_repairs,
                }
                for s in result.shard_results
            ]
        elif args.target == "network":
            payload["config"].update(
                {"addr": args.addr, "op_timeout": args.op_timeout}
            )
            # Per-shard server-side reports (dicts straight off the
            # REPORT RPC; cluster- or store-shaped depending on what
            # the server wraps).
            payload["server"] = [
                s.collected for s in result.shard_results
            ]
        print(json.dumps(payload, indent=2))
        return 0
    summary = result.histogram.summary()
    print(
        f"workload {spec.workload.upper()} x {args.target}: "
        f"{result.operations} ops over {config.shards} shard(s), "
        f"workers={config.workers}, seed={config.seed}"
    )
    print(
        f"  throughput  {result.ops_per_second:,.0f} ops/s "
        f"({result.measured_elapsed_seconds:.2f}s measured, "
        f"{result.elapsed_seconds:.2f}s total)"
    )
    print(
        f"  latency     p50 {summary['p50_us']:.1f} us | "
        f"p95 {summary['p95_us']:.1f} us | p99 {summary['p99_us']:.1f} us "
        f"| max {summary['max_us']:.1f} us"
    )
    mix = " ".join(
        f"{op}={count}" for op, count in sorted(result.op_counts.items())
    )
    print(f"  op mix      {mix}")
    if result.op_errors:
        errors = " ".join(
            f"{op}={count}"
            for op, count in sorted(result.op_errors.items())
        )
        print(
            f"  op errors   {errors} "
            f"(timeouts={result.timeouts}; failed ops hash a fixed "
            "marker into the fingerprint)"
        )
    print(f"  fingerprint {result.fingerprint:#010x} (bit-identical at any --workers)")
    elasticity = result.elasticity
    if elasticity is not None:
        print(
            f"  elasticity  arrival={args.arrival} "
            f"slo p99<={args.slo_p99_ms:g}ms | modeled violations "
            f"{elasticity['slo_violation_fraction']:.1%} | "
            f"shed {elasticity['shed_ops']}"
        )
        if elasticity["enabled"]:
            print(
                f"  scaling     events={len(elasticity['scale_events'])} "
                f"avg nodes={elasticity['avg_live_nodes']:.2f} | "
                f"schedule {elasticity['schedule_fingerprint']:#010x} "
                "(bit-identical at any --workers)"
            )
    if durable:
        print(
            f"  durability  write-mode={args.write_mode} "
            f"(acked writes survive crash-restart; see --kill-mode)"
        )
    if args.target == "network":
        report = result.shard_results[0].collected or {}
        if report.get("kind") == "cluster":
            collisions = sum(
                s.collected.get("id_collisions", 0)
                for s in result.shard_results
            )
            dead = sum(
                s.collected.get("dead_nodes", 0)
                for s in result.shard_results
            )
            replayed = sum(
                s.collected.get("hints_replayed", 0)
                for s in result.shard_results
            )
            print(
                f"  server      cluster-backed | id collisions={collisions} "
                f"dead nodes={dead} hints replayed={replayed}"
            )
        else:
            print(f"  server      {report.get('kind', 'unknown')}-backed")
    if args.target == "cluster":
        collisions = sum(
            s.collected.audit.collision_count for s in result.shard_results
        )
        corrupt = sum(
            s.collected.corrupt_block_reads for s in result.shard_results
        )
        migrations = sum(
            s.collected.migrations for s in result.shard_results
        )
        print(
            f"  cluster     id collisions={collisions} "
            f"corrupt block reads={corrupt} migrations={migrations}"
        )
        if args.replication > 1 or chaos:
            repairs = sum(
                s.collected.read_repairs for s in result.shard_results
            )
            replayed = sum(
                s.collected.hints_replayed for s in result.shard_results
            )
            dead = sum(
                s.collected.dead_nodes for s in result.shard_results
            )
            print(
                f"  replication RF={args.replication} R={read_q} | "
                f"read repairs={repairs} hints replayed={replayed} "
                f"dead nodes={dead}"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a store or cluster behind the asyncio RPC protocol."""
    import asyncio

    from repro.distributed.rpc import RPCServer
    from repro.kvstore.options import Options
    from repro.workloads.driver import (
        cluster_target_factory,
        store_target_factory,
    )

    write_mode = _parse_write_mode(args.write_mode)
    durable = write_mode is not None

    def options() -> Options:
        extra = {"write_mode": write_mode} if durable else {}
        return Options(
            id_algorithm=args.algorithm,
            id_universe=args.id_universe,
            **extra,
        )

    if args.target == "cluster":
        factory = cluster_target_factory(
            args.nodes,
            options,
            replication_factor=args.replication,
            read_quorum=args.read_quorum,
            durable=durable,
        )
        deployment = (
            f"cluster, nodes={args.nodes} rf={args.replication}"
        )
    else:
        if args.replication != 1 or args.read_quorum is not None:
            raise ReproError(
                "--replication/--read-quorum need --target cluster"
            )
        factory = store_target_factory(options, durable=durable)
        deployment = "store"
    if durable:
        deployment += f", write-mode={args.write_mode}"
    server = RPCServer(
        factory,
        max_frame=args.max_frame,
        executor_workers=args.executor_threads,
        write_buffer_high=args.write_buffer,
    )

    async def _serve() -> None:
        await server.start(args.host, args.port)
        host, port = server.address
        # One parseable line; scripts (and the e2e test) wait for it
        # to learn the bound port when --port 0 picked an ephemeral one.
        print(
            f"uuidp serve: listening on {host}:{port} "
            f"(target={deployment}, algorithm={args.algorithm})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("uuidp serve: shut down")
    return 0


def _cmd_worst(args: argparse.Namespace) -> int:
    from repro.adversary.worst_case import find_worst_profile
    from repro.analysis.exact import exact_collision_probability

    profile, value = find_worst_profile(
        lambda D: exact_collision_probability(args.algorithm, args.m, D),
        args.n,
        args.d,
    )
    print(
        f"worst found profile for {args.algorithm} over D1(n={args.n}, "
        f"d={args.d}), m={args.m}:"
    )
    print(f"  D = {profile.demands}")
    print(f"  p = {float(value):.6g}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Side-by-side safety table for a deployment (m, n, per-instance h)."""
    from repro.analysis.exact import (
        bins_collision_probability,
        bins_star_collision_probability,
        cluster_collision_probability,
        random_collision_probability,
    )

    profile = DemandProfile.uniform(args.n, args.h)
    rows = [
        ("random", random_collision_probability(args.m, profile)),
        ("cluster", cluster_collision_probability(args.m, profile)),
    ]
    if args.h <= (args.m // args.h) * args.h:
        rows.append(
            (
                f"bins({args.h})",
                bins_collision_probability(args.m, args.h, profile),
            )
        )
    try:
        rows.append(
            ("bins*", bins_star_collision_probability(args.m, profile))
        )
    except ReproError:
        pass  # demand beyond the Bins* schedule for this m
    print(
        f"deployment: n={args.n} instances x h={args.h} IDs each, "
        f"universe m={args.m} (~{args.m.bit_length() - 1} bits)"
    )
    print(f"{'algorithm':>12}  {'collision probability':>22}")
    for name, probability in sorted(rows, key=lambda row: row[1]):
        print(f"{name:>12}  {float(probability):>22.6g}")
    print(
        "\n(uniform demand; for skewed fleets or adaptive threat models "
        "see `uuidp analyze`, `uuidp simulate --attack`, and E12)"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        quick=args.quick, seed=args.seed, plan=_plan_from_args(args),
    )
    results = run_all(config)
    sections = [result.to_markdown() for result in results]
    passed = sum(1 for r in results if r.all_passed)
    header = [
        "# EXPERIMENTS — measured reproduction of every claim",
        "",
        f"Shape checks passed in {passed}/{len(results)} experiments.",
        "",
    ]
    content = "\n".join(header) + "\n" + "\n".join(sections)
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output} ({passed}/{len(results)} experiments green)")
    return 0 if passed == len(results) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the devtools package is only needed for this
    # subcommand and pulls in the whole rule registry.
    from repro.devtools import LintEngine, render

    engine = LintEngine()
    report = engine.lint_paths(args.paths or ["src"])
    print(render(report, args.format))
    return report.exit_code


def _cmd_doccheck(args: argparse.Namespace) -> int:
    # Lazy import, same reasoning as lint.
    from repro.devtools.doccheck import check_paths, default_doc_paths

    paths = args.paths or default_doc_paths(os.getcwd())
    if not paths:
        raise ReproError(
            "doccheck found no README.md or docs/*.md here; pass "
            "markdown paths explicitly"
        )
    report = check_paths(paths, timeout=args.timeout)
    print(report.render(verbose=args.verbose))
    return report.exit_code


def _add_plan_options(parser: argparse.ArgumentParser) -> None:
    """The SimulationPlan knobs shared by every estimating subcommand."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard Monte-Carlo trials across N processes "
        "(0 = one per CPU); results are bit-identical for any N",
    )
    parser.add_argument(
        "--engine",
        choices=list(available_engines()),
        default="python",
        help="Monte-Carlo trial engine: 'numpy' vectorizes oblivious "
        "trials as array operations (much faster, composes with "
        "--workers), 'batched' pins the python fast path. python and "
        "batched share one reproducible RNG stream; numpy is its own, "
        "so its estimates differ by Monte-Carlo noise",
    )
    parser.add_argument(
        "--precision",
        type=float,
        default=None,
        metavar="HW",
        help="adaptive mode: stop sampling once the Wilson-CI "
        "half-width reaches HW (trial counts then act as caps); "
        "identical results for any --workers split",
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="N",
        help="global cap on Monte-Carlo trials per estimate (the "
        "smaller of this and each call's own trial count wins)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="uuidp",
        description="Optimal Uncoordinated Unique IDs (PODS 2023) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algorithms and experiments")

    gen = sub.add_parser("generate", help="emit IDs from one instance")
    gen.add_argument("algorithm", help="e.g. cluster, bins:16, bins*")
    gen.add_argument("--m", type=int, default=1 << 128)
    gen.add_argument("--count", type=int, default=10)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--hex", action="store_true")

    ana = sub.add_parser("analyze", help="exact collision probability")
    ana.add_argument("algorithm")
    ana.add_argument("profile", help="comma-separated demands, e.g. 8,8,8")
    ana.add_argument("--m", type=int, default=1 << 20)

    simu = sub.add_parser("simulate", help="Monte-Carlo a game")
    simu.add_argument("algorithm")
    simu.add_argument("profile", help="comma-separated demands")
    simu.add_argument("--m", type=int, default=1 << 20)
    simu.add_argument("--trials", type=int, default=1000)
    simu.add_argument("--seed", type=int, default=0)
    simu.add_argument(
        "--attack", choices=["closest_pair", "greedy_gap"], default=None,
        help="play adaptively with this attack instead of obliviously",
    )
    _add_plan_options(simu)

    exp = sub.add_parser("experiment", help="run one experiment")
    exp.add_argument("id", help="E1..E12, A1, A2, or 'all'")
    exp.add_argument("--quick", action="store_true")
    exp.add_argument("--seed", type=int, default=20230414)
    exp.add_argument(
        "--json", action="store_true", help="emit JSON instead of markdown"
    )
    exp.add_argument(
        "--chart",
        default=None,
        metavar="XCOL:YCOL[,YCOL...]",
        help="also draw an ASCII chart of the selected columns",
    )
    _add_plan_options(exp)

    kv = sub.add_parser(
        "kv",
        help="drive a YCSB workload against a store or cluster",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Elastic serving: --arrival picks a deterministic "
            "time-varying demand signal (static, diurnal sinusoid, "
            "flash crowd, poisson bursts; pure in (seed, tick)), and "
            "--autoscale puts each shard's cluster fleet under the "
            "SLO controller: sustained modeled-p99 breach adds nodes "
            "up to --max-nodes, sustained idleness drains nodes down "
            "to --min-nodes (hint-safe decommission), and a saturated "
            "fleet sheds ops (reported as shed_ops, hashed as the "
            "failed-op marker). Decisions run on a logical queue "
            "model, not wall-clock latency, so two same-seed runs "
            "produce identical scale schedules and op fingerprints "
            "at any --workers count. --arrival without --autoscale "
            "is monitor-only: the SLO accounting runs but the fleet "
            "never changes size."
        ),
    )
    kv.add_argument(
        "--workload", default="b", choices=list("abcdef"),
        help="YCSB mix (E is 95%% scan / 5%% insert)",
    )
    kv.add_argument(
        "--target", choices=["store", "cluster", "network"], default="store",
        help="'network' drives a running `uuidp serve` over --addr",
    )
    kv.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="network target: the `uuidp serve` address to drive",
    )
    kv.add_argument(
        "--op-timeout", type=float, default=30.0, metavar="SECONDS",
        help="network target: per-op RPC timeout; a timed-out op counts "
        "as a failed (unacknowledged) op, not a crash",
    )
    kv.add_argument("--records", type=int, default=1000)
    kv.add_argument("--ops", type=int, default=5000, help="measured logical ops per shard")
    kv.add_argument("--warmup", type=int, default=0, help="unmeasured ops per shard")
    kv.add_argument("--value-size", type=int, default=32)
    kv.add_argument("--theta", type=float, default=0.99, help="zipfian skew")
    kv.add_argument("--scan-length", type=int, default=100, help="max scan rows (workload E)")
    kv.add_argument(
        "--shards", type=int, default=4,
        help="independent client streams, each with its own target",
    )
    kv.add_argument(
        "--workers", type=int, default=1,
        help="concurrent shard executors (results bit-identical for any N)",
    )
    kv.add_argument("--nodes", type=int, default=4, help="cluster target: fleet size")
    kv.add_argument(
        "--rebalance-every", type=int, default=None, metavar="K",
        help="cluster target: migrate SSTs after every K ops",
    )
    kv.add_argument(
        "--replication", type=int, default=1, metavar="RF",
        help="cluster target: copies per key (writes go to the key's "
        "RF ring successors)",
    )
    kv.add_argument(
        "--read-quorum", type=int, default=None, metavar="R",
        help="cluster target: live replicas a read must reach "
        "(default: majority of RF); stale replicas lose last-write-wins "
        "and get read-repaired",
    )
    kv.add_argument(
        "--kill-at", action="append", default=None, metavar="OP[:NODE]",
        help="cluster target: kill node NODE (default 0) at logical op "
        "tick OP in every shard's fleet; repeatable",
    )
    kv.add_argument(
        "--recover-at", action="append", default=None, metavar="OP[:NODE]",
        help="cluster target: recover node NODE at tick OP (replays "
        "hinted handoff); repeatable",
    )
    kv.add_argument(
        "--kill-mode", choices=["outage", "crash"], default="outage",
        help="what --kill-at simulates: a clean outage (state intact, "
        "default) or a process crash (memtable lost, WAL replayed on "
        "recovery; needs --write-mode)",
    )
    kv.add_argument(
        "--write-mode", choices=["nosync", "batch", "sync"], default=None,
        help="run each store on durable simulated storage with this "
        "group-commit policy (nosync: fsync only at flush; batch: "
        "adaptive group commit; sync: fsync every write); default is "
        "the in-memory store",
    )
    kv.add_argument(
        "--arrival", choices=["static", "diurnal", "flash", "poisson"],
        default="static",
        help="time-varying demand signal driving the SLO controller "
        "(pure in (seed, tick); see the epilog)",
    )
    kv.add_argument(
        "--arrival-rate", type=float, default=2000.0, metavar="OPS",
        help="mean offered load, in ops per logical second",
    )
    kv.add_argument(
        "--arrival-period", type=int, default=None, metavar="TICKS",
        help="diurnal: ticks per sinusoid cycle (default 2000)",
    )
    kv.add_argument(
        "--arrival-amplitude", type=float, default=None,
        help="diurnal: sinusoid amplitude in [0, 1) (default 0.6)",
    )
    kv.add_argument(
        "--arrival-flash-at", type=int, default=None, metavar="TICK",
        help="flash: tick the crowd arrives (default 1000)",
    )
    kv.add_argument(
        "--arrival-flash-ticks", type=int, default=None, metavar="TICKS",
        help="flash: how long the crowd stays (default 2000)",
    )
    kv.add_argument(
        "--arrival-peak", type=float, default=None, metavar="X",
        help="flash/poisson: demand multiplier during a surge "
        "(default 4.0)",
    )
    kv.add_argument(
        "--arrival-burst-prob", type=float, default=None, metavar="P",
        help="poisson: per-tick burst arrival probability "
        "(default 0.002)",
    )
    kv.add_argument(
        "--arrival-burst-ticks", type=int, default=None, metavar="TICKS",
        help="poisson: burst length (default 200)",
    )
    kv.add_argument(
        "--autoscale", action="store_true",
        help="cluster target: scale the fleet between --min-nodes and "
        "--max-nodes against the --slo-p99-ms objective (without this "
        "flag, --arrival runs monitor-only SLO accounting)",
    )
    kv.add_argument(
        "--slo-p99-ms", type=float, default=20.0, metavar="MS",
        help="the SLO: modeled p99 queue latency to defend",
    )
    kv.add_argument(
        "--min-nodes", type=int, default=None, metavar="N",
        help="autoscale floor (default: max(1, --replication))",
    )
    kv.add_argument(
        "--max-nodes", type=int, default=8, metavar="N",
        help="autoscale ceiling; beyond it only shedding protects "
        "the SLO",
    )
    kv.add_argument(
        "--node-capacity", type=float, default=1000.0, metavar="OPS",
        help="queue model: ops per logical second one node serves",
    )
    kv.add_argument(
        "--scale-check-every", type=int, default=200, metavar="TICKS",
        help="controller checkpoint period, in logical op ticks",
    )
    kv.add_argument(
        "--shed-after-ms", type=float, default=80.0, metavar="MS",
        help="admission control: shed ops whose modeled queue delay "
        "exceeds this (the saturation pressure valve)",
    )
    kv.add_argument("--algorithm", default="cluster", help="file-ID algorithm")
    kv.add_argument("--id-universe", type=int, default=1 << 64)
    kv.add_argument("--seed", type=int, default=0)
    kv.add_argument("--json", action="store_true", help="emit the bench JSON schema")

    serve = sub.add_parser(
        "serve",
        help="serve a store or cluster over the asyncio RPC protocol",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7417,
        help="TCP port (0 picks an ephemeral one; the bound port is "
        "printed on the 'listening' line)",
    )
    serve.add_argument(
        "--target", choices=["store", "cluster"], default="cluster",
        help="what each client shard attaches to: a private MiniRocks "
        "or a private ClusterSimulator fleet",
    )
    serve.add_argument("--nodes", type=int, default=4, help="cluster target: fleet size")
    serve.add_argument(
        "--replication", type=int, default=1, metavar="RF",
        help="cluster target: copies per key",
    )
    serve.add_argument(
        "--read-quorum", type=int, default=None, metavar="R",
        help="cluster target: live replicas a read must reach "
        "(default: majority of RF)",
    )
    serve.add_argument(
        "--write-mode", choices=["nosync", "batch", "sync"], default=None,
        help="back each served store with durable simulated storage "
        "under this group-commit policy; default is the in-memory store",
    )
    serve.add_argument("--algorithm", default="cluster", help="file-ID algorithm")
    serve.add_argument("--id-universe", type=int, default=1 << 64)
    serve.add_argument(
        "--max-frame", type=int, default=1 << 20,
        help="frame-size cap in bytes; larger length prefixes close "
        "the offending connection before any allocation",
    )
    serve.add_argument(
        "--write-buffer", type=int, default=64 * 1024,
        help="per-connection response buffer high-water mark in bytes "
        "(the slow-client bound: past it the server stops reading that "
        "connection until the client drains)",
    )
    serve.add_argument(
        "--executor-threads", type=int, default=4,
        help="storage-op thread pool size (per-connection ops stay "
        "strictly ordered regardless)",
    )

    compare = sub.add_parser(
        "compare", help="side-by-side safety table for a deployment"
    )
    compare.add_argument("--m", type=int, default=1 << 128)
    compare.add_argument("--n", type=int, default=1000, help="instances")
    compare.add_argument(
        "--h", type=int, default=10**9, help="IDs per instance"
    )

    worst = sub.add_parser(
        "worst", help="search the worst oblivious profile in D1(n, d)"
    )
    worst.add_argument("algorithm", help="an algorithm with a closed form")
    worst.add_argument("--n", type=int, default=8)
    worst.add_argument("--d", type=int, default=1024)
    worst.add_argument("--m", type=int, default=1 << 20)

    rep = sub.add_parser("report", help="run all experiments to markdown")
    rep.add_argument("--output", default="EXPERIMENTS.md")
    rep.add_argument("--quick", action="store_true")
    rep.add_argument("--seed", type=int, default=20230414)
    _add_plan_options(rep)

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific REPRO static-analysis rules",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )

    doccheck = sub.add_parser(
        "doccheck",
        help="smoke-run the fenced examples in README.md and docs/",
    )
    doccheck.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="markdown files (default: README.md + docs/*.md)",
    )
    doccheck.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="seconds per block (default: REPRO_DOCCHECK_TIMEOUT or "
        "60; a timeout is tolerated — only rot signatures fail)",
    )
    doccheck.add_argument(
        "--verbose",
        action="store_true",
        help="list every block, not just failures",
    )

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "kv": _cmd_kv,
    "serve": _cmd_serve,
    "worst": _cmd_worst,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "doccheck": _cmd_doccheck,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
