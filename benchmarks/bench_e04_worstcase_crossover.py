"""E4 bench: the who-fails-first figure + p* machinery speed."""

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.optimal import p_star_lower_bound, p_star_upper_bound


def test_e4_reproduce(benchmark):
    reproduce(benchmark, "E4")


def test_p_star_lower_bound_speed(benchmark):
    profile = DemandProfile.of(1, 2, 4, 8, 16, 32, 64, 128)
    benchmark(p_star_lower_bound, 1 << 20, profile)


def test_p_star_upper_bound_speed(benchmark):
    profile = DemandProfile.of(16, 1024)
    benchmark(p_star_upper_bound, 1 << 20, profile)
