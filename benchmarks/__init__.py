"""Benchmark harness: one module per reproduced table/figure (DESIGN.md §4)."""
