"""Engine speedup matrix: python vs NumPy Monte-Carlo trial kernels.

One benchmark measures the oblivious Monte-Carlo legs of E1/E2/E3 at
equal trial counts under both engines (python × numpy, serial ×
workers) and records the wall-clock matrix in the benchmark JSON
artifact. The single-worker ``numpy`` engine must beat ``python`` by
at least 5× on every workload (enforced on full-scale runs only; smoke
runs with ``REPRO_BENCH_SCALE < 1`` just record the numbers), and the
sharded leg must stay bit-identical to the serial one — the NumPy
speedup multiplies with the ``workers=`` speedup instead of replacing
it.

A second benchmark compares **adaptive precision vs fixed trial
counts** per workload: a :class:`SimulationPlan` with
``target_halfwidth`` stops at the first Wilson checkpoint that is
tight enough, and the artifact records how many trials that saved
against the fixed-count leg (``*_fixed_trials`` vs
``*_adaptive_trials``).

Knobs: ``REPRO_BENCH_ENGINE_TRIALS`` (base trial count, default 1500),
``REPRO_BENCH_SCALE`` (multiplier, CI smoke sets it well below 1) and
``REPRO_BENCH_SPEEDUP_WORKERS`` (worker count of the sharded leg).
"""

import functools
import os
import time

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.adversary.profiles import DemandProfile
from repro.simulation.batch import SpecFactory
from repro.simulation.montecarlo import estimate_profile_collision
from repro.simulation.plan import SimulationPlan
from repro.simulation.vectorized import numpy_available

#: (label, spec, m, profile) — the oblivious workloads of E1, E2, E3.
WORKLOADS = [
    ("e01_cluster", "cluster", 1 << 24, DemandProfile.uniform(16, 256)),
    ("e02_bins", "bins:64", 1 << 20, DemandProfile.uniform(8, 128)),
    ("e03_random", "random", 1 << 24, DemandProfile.uniform(8, 512)),
]


def _trials() -> int:
    base = int(os.environ.get("REPRO_BENCH_ENGINE_TRIALS", "1500"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return max(50, int(base * scale))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_engine_speedup_matrix(benchmark):
    """python vs numpy × serial vs workers on the E1/E2/E3 workloads."""
    if not numpy_available():
        pytest.skip("NumPy not installed; the numpy engine cannot run")
    trials = _trials()
    workers = int(os.environ.get("REPRO_BENCH_SPEEDUP_WORKERS", "4"))
    scaled_down = float(os.environ.get("REPRO_BENCH_SCALE", "1")) < 1
    benchmark.extra_info["trials"] = trials
    speedups = {}
    for index, (label, spec, m, profile) in enumerate(WORKLOADS):
        estimate = functools.partial(
            estimate_profile_collision,
            SpecFactory(spec),
            m,
            profile,
            trials=trials,
            seed=BENCH_SEED,
        )
        python_est, python_seconds = _timed(
            functools.partial(estimate, plan=SimulationPlan(engine="python"))
        )
        if index == 0:
            # The numpy leg of the first workload doubles as
            # pytest-benchmark's timed sample.
            numpy_runner = functools.partial(
                benchmark.pedantic,
                functools.partial(
                    estimate, plan=SimulationPlan(engine="numpy")
                ),
                rounds=1,
                iterations=1,
            )
        else:
            numpy_runner = functools.partial(
                estimate, plan=SimulationPlan(engine="numpy")
            )
        numpy_est, numpy_seconds = _timed(numpy_runner)
        # Separate RNG universes: the estimates agree statistically
        # (both CIs must cover the common truth), never bit-for-bit.
        assert (
            abs(python_est.probability - numpy_est.probability)
            <= (python_est.ci_high - python_est.ci_low)
            + (numpy_est.ci_high - numpy_est.ci_low)
            + 0.02
        ), f"{label}: engines disagree ({python_est} vs {numpy_est})"
        sharded_est, sharded_seconds = _timed(
            functools.partial(
                estimate,
                plan=SimulationPlan(engine="numpy", workers=workers),
            )
        )
        assert sharded_est == numpy_est, (
            f"{label}: numpy engine not bit-identical across workers "
            f"({sharded_est!r} != {numpy_est!r})"
        )
        speedup = python_seconds / numpy_seconds if numpy_seconds else 0.0
        speedups[label] = speedup
        benchmark.extra_info[f"{label}_python_seconds"] = python_seconds
        benchmark.extra_info[f"{label}_numpy_seconds"] = numpy_seconds
        benchmark.extra_info[f"{label}_numpy_workers_seconds"] = (
            sharded_seconds
        )
        benchmark.extra_info[f"{label}_workers"] = workers
        benchmark.extra_info[f"{label}_speedup"] = speedup
        print(
            f"\n{label}: python {python_seconds:.2f}s vs numpy "
            f"{numpy_seconds:.3f}s -> {speedup:.1f}x "
            f"(numpy workers={workers}: {sharded_seconds:.3f}s)"
        )
    if not scaled_down:
        worst = min(speedups, key=speedups.get)
        assert speedups[worst] >= 5.0, (
            f"numpy engine speedup fell below 5x on {worst}: "
            f"{speedups[worst]:.2f}x"
        )


def test_adaptive_vs_fixed_trials(benchmark):
    """Adaptive precision stops early: trials saved per E1/E2/E3 leg.

    For each workload the fixed leg runs the full trial budget; the
    adaptive leg targets twice the fixed leg's achieved Wilson
    half-width (an easier precision, i.e. a quality bar the schedule
    can hit before the cap) and records how many trials it actually
    needed. Whenever the budget leaves room to stop early (cap >
    2x the first checkpoint), the adaptive leg must use fewer trials;
    both counts land in the JSON artifact.
    """
    trials = _trials()
    benchmark.extra_info["trials"] = trials
    engine = "numpy" if numpy_available() else "python"
    fixed_plan = SimulationPlan(engine=engine)

    def run_workloads():
        for label, spec, m, profile in WORKLOADS:
            estimate = functools.partial(
                estimate_profile_collision,
                SpecFactory(spec),
                m,
                profile,
                trials=trials,
                seed=BENCH_SEED,
            )
            fixed, fixed_seconds = _timed(
                functools.partial(estimate, plan=fixed_plan)
            )
            target = max(2.0 * fixed.halfwidth, 1e-6)
            adaptive_plan = fixed_plan.evolve(target_halfwidth=target)
            adaptive, adaptive_seconds = _timed(
                functools.partial(estimate, plan=adaptive_plan)
            )
            assert adaptive.halfwidth <= target or adaptive.trials == trials, (
                f"{label}: adaptive leg stopped at {adaptive} without "
                f"reaching the {target:.4g} half-width target or the cap"
            )
            if trials >= 2 * adaptive_plan.min_trials:
                assert adaptive.trials < fixed.trials, (
                    f"{label}: adaptive mode used {adaptive.trials} trials, "
                    f"no fewer than the fixed {fixed.trials}"
                )
            benchmark.extra_info[f"{label}_engine"] = engine
            benchmark.extra_info[f"{label}_fixed_trials"] = fixed.trials
            benchmark.extra_info[f"{label}_adaptive_trials"] = adaptive.trials
            benchmark.extra_info[f"{label}_target_halfwidth"] = target
            benchmark.extra_info[f"{label}_adaptive_halfwidth"] = (
                adaptive.halfwidth
            )
            benchmark.extra_info[f"{label}_fixed_seconds"] = fixed_seconds
            benchmark.extra_info[f"{label}_adaptive_seconds"] = (
                adaptive_seconds
            )
            print(
                f"\n{label}: fixed {fixed.trials} trials "
                f"({fixed_seconds:.3f}s) vs adaptive {adaptive.trials} "
                f"({adaptive_seconds:.3f}s) at half-width <= {target:.4g}"
            )

    benchmark.pedantic(run_workloads, rounds=1, iterations=1)
