"""Engine speedup matrix: python vs NumPy Monte-Carlo trial kernels.

One benchmark measures the oblivious Monte-Carlo legs of E1/E2/E3 at
equal trial counts under both engines (python × numpy, serial ×
workers) and records the wall-clock matrix in the benchmark JSON
artifact. The single-worker ``numpy`` engine must beat ``python`` by
at least 5× on every workload (enforced on full-scale runs only; smoke
runs with ``REPRO_BENCH_SCALE < 1`` just record the numbers), and the
sharded leg must stay bit-identical to the serial one — the NumPy
speedup multiplies with the ``workers=`` speedup instead of replacing
it.

Knobs: ``REPRO_BENCH_ENGINE_TRIALS`` (base trial count, default 1500),
``REPRO_BENCH_SCALE`` (multiplier, CI smoke sets it well below 1) and
``REPRO_BENCH_SPEEDUP_WORKERS`` (worker count of the sharded leg).
"""

import functools
import os
import time

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.adversary.profiles import DemandProfile
from repro.simulation.batch import SpecFactory
from repro.simulation.montecarlo import estimate_profile_collision
from repro.simulation.vectorized import numpy_available

#: (label, spec, m, profile) — the oblivious workloads of E1, E2, E3.
WORKLOADS = [
    ("e01_cluster", "cluster", 1 << 24, DemandProfile.uniform(16, 256)),
    ("e02_bins", "bins:64", 1 << 20, DemandProfile.uniform(8, 128)),
    ("e03_random", "random", 1 << 24, DemandProfile.uniform(8, 512)),
]


def _trials() -> int:
    base = int(os.environ.get("REPRO_BENCH_ENGINE_TRIALS", "1500"))
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return max(50, int(base * scale))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_engine_speedup_matrix(benchmark):
    """python vs numpy × serial vs workers on the E1/E2/E3 workloads."""
    if not numpy_available():
        pytest.skip("NumPy not installed; the numpy engine cannot run")
    trials = _trials()
    workers = int(os.environ.get("REPRO_BENCH_SPEEDUP_WORKERS", "4"))
    scaled_down = float(os.environ.get("REPRO_BENCH_SCALE", "1")) < 1
    benchmark.extra_info["trials"] = trials
    speedups = {}
    for index, (label, spec, m, profile) in enumerate(WORKLOADS):
        estimate = functools.partial(
            estimate_profile_collision,
            SpecFactory(spec),
            m,
            profile,
            trials=trials,
            seed=BENCH_SEED,
        )
        python_est, python_seconds = _timed(
            functools.partial(estimate, engine="python")
        )
        if index == 0:
            # The numpy leg of the first workload doubles as
            # pytest-benchmark's timed sample.
            numpy_runner = functools.partial(
                benchmark.pedantic,
                functools.partial(estimate, engine="numpy"),
                rounds=1,
                iterations=1,
            )
        else:
            numpy_runner = functools.partial(estimate, engine="numpy")
        numpy_est, numpy_seconds = _timed(numpy_runner)
        # Separate RNG universes: the estimates agree statistically
        # (both CIs must cover the common truth), never bit-for-bit.
        assert (
            abs(python_est.probability - numpy_est.probability)
            <= (python_est.ci_high - python_est.ci_low)
            + (numpy_est.ci_high - numpy_est.ci_low)
            + 0.02
        ), f"{label}: engines disagree ({python_est} vs {numpy_est})"
        sharded_est, sharded_seconds = _timed(
            functools.partial(estimate, engine="numpy", workers=workers)
        )
        assert sharded_est == numpy_est, (
            f"{label}: numpy engine not bit-identical across workers "
            f"({sharded_est!r} != {numpy_est!r})"
        )
        speedup = python_seconds / numpy_seconds if numpy_seconds else 0.0
        speedups[label] = speedup
        benchmark.extra_info[f"{label}_python_seconds"] = python_seconds
        benchmark.extra_info[f"{label}_numpy_seconds"] = numpy_seconds
        benchmark.extra_info[f"{label}_numpy_workers_seconds"] = (
            sharded_seconds
        )
        benchmark.extra_info[f"{label}_workers"] = workers
        benchmark.extra_info[f"{label}_speedup"] = speedup
        print(
            f"\n{label}: python {python_seconds:.2f}s vs numpy "
            f"{numpy_seconds:.3f}s -> {speedup:.1f}x "
            f"(numpy workers={workers}: {sharded_seconds:.3f}s)"
        )
    if not scaled_down:
        worst = min(speedups, key=speedups.get)
        assert speedups[worst] >= 5.0, (
            f"numpy engine speedup fell below 5x on {worst}: "
            f"{speedups[worst]:.2f}x"
        )
