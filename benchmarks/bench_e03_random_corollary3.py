"""E3 bench: Corollary 3 table + Random hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import random_collision_probability
from repro.core.random_gen import RandomGenerator


def test_e3_reproduce(benchmark):
    reproduce(benchmark, "E3")


def test_random_next_id_throughput_sparse(benchmark):
    generator = RandomGenerator(1 << 128, random.Random(1))
    benchmark(generator.next_id)


def test_random_exact_probability_speed_estimate_path(benchmark):
    profile = DemandProfile.uniform(8, 1 << 20)
    benchmark(random_collision_probability, 1 << 64, profile)
