"""E12 bench: the Table-1-style summary + cross-algorithm throughput."""

import random

import pytest

from benchmarks.conftest import reproduce
from repro.core.registry import make_generator


def test_e12_reproduce(benchmark):
    reproduce(benchmark, "E12")


@pytest.mark.parametrize(
    "spec", ["random", "cluster", "bins:4096", "cluster*", "bins*"]
)
def test_generator_throughput(benchmark, spec):
    """next_id latency of every algorithm on a 64-bit universe."""
    generator = make_generator(spec, 1 << 64, random.Random(1))
    benchmark(generator.next_id)
