"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` file owns one experiment (one table/figure of
the reproduction; see DESIGN.md §4) and contains:

* ``test_eNN_reproduce`` — runs the experiment once under
  ``benchmark.pedantic`` (timing the full regeneration), prints the
  markdown table, and asserts every shape check passed;
* micro-benchmarks of the hot paths that experiment leans on.

Run ``pytest benchmarks/ --benchmark-only`` for the timing tables; add
``-s`` to see the experiment tables inline. The full (non-quick)
experiment suite is what ``uuidp report`` runs; benchmarks default to
quick mode so the harness completes in minutes — set
``REPRO_BENCH_FULL=1`` for the full sweep.
"""

import os
import time

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.simulation.plan import SimulationPlan

BENCH_SEED = 20230414


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def bench_plan() -> SimulationPlan:
    """The SimulationPlan the benchmark harness runs experiments under.

    ``REPRO_BENCH_WORKERS`` shards trials across processes,
    ``REPRO_BENCH_ENGINE`` selects the trial engine, and
    ``REPRO_BENCH_PRECISION`` sets an adaptive Wilson half-width
    target (experiment trial counts then act as caps).
    """
    workers_env = os.environ.get("REPRO_BENCH_WORKERS", "")
    precision_env = os.environ.get("REPRO_BENCH_PRECISION", "")
    return SimulationPlan(
        engine=os.environ.get("REPRO_BENCH_ENGINE", "python"),
        workers=int(workers_env) if workers_env else None,
        target_halfwidth=float(precision_env) if precision_env else None,
    )


def bench_config() -> ExperimentConfig:
    """Quick by default; REPRO_BENCH_FULL=1 switches to the full sweep.

    ``REPRO_BENCH_SCALE`` multiplies every Monte-Carlo trial count (the
    CI smoke job sets it well below 1); execution knobs come from
    :func:`bench_plan` — estimates are bit-identical at any
    workers/round split of the same plan.
    """
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return ExperimentConfig(
        quick=not full,
        seed=BENCH_SEED,
        trials_scale=scale,
        plan=bench_plan(),
    )


def record_speedup(benchmark, label: str, serial_fn, parallel_fn, workers: int):
    """Time ``serial_fn`` vs ``parallel_fn``, assert identical results,
    and record the wall-clock speedup in the benchmark JSON.

    The ≥3× floor is only asserted when the host actually has the
    cores for it (and the run isn't a scaled-down smoke run); on small
    machines the speedup is recorded for the artifact but not enforced.
    """
    start = time.perf_counter()
    serial_result = serial_fn()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_result = parallel_fn()
    parallel_seconds = time.perf_counter() - start

    assert parallel_result == serial_result, (
        f"{label}: parallel result diverged from serial "
        f"({parallel_result!r} != {serial_result!r})"
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info[f"{label}_serial_seconds"] = serial_seconds
    benchmark.extra_info[f"{label}_parallel_seconds"] = parallel_seconds
    benchmark.extra_info[f"{label}_workers"] = workers
    benchmark.extra_info[f"{label}_speedup"] = speedup
    print(
        f"\n{label}: serial {serial_seconds:.2f}s vs "
        f"workers={workers} {parallel_seconds:.2f}s -> {speedup:.2f}x"
    )
    cores = os.cpu_count() or 1
    scaled_down = float(os.environ.get("REPRO_BENCH_SCALE", "1")) < 1
    if cores >= workers and not scaled_down:
        assert speedup >= 3.0, (
            f"{label}: expected >= 3x speedup at workers={workers} on a "
            f"{cores}-core host, measured {speedup:.2f}x"
        )
    return speedup


def reproduce(benchmark, experiment_id: str):
    """Run one experiment under the benchmark timer and verify it."""
    config = bench_config()
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, config),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_markdown())
    failed = [check for check in result.checks if not check.passed]
    assert not failed, f"{experiment_id} shape checks failed: " + "; ".join(
        str(check) for check in failed
    )
    return result
