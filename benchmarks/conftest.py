"""Shared helpers for the benchmark harness.

Each ``bench_eNN_*.py`` file owns one experiment (one table/figure of
the reproduction; see DESIGN.md §4) and contains:

* ``test_eNN_reproduce`` — runs the experiment once under
  ``benchmark.pedantic`` (timing the full regeneration), prints the
  markdown table, and asserts every shape check passed;
* micro-benchmarks of the hot paths that experiment leans on.

Run ``pytest benchmarks/ --benchmark-only`` for the timing tables; add
``-s`` to see the experiment tables inline. The full (non-quick)
experiment suite is what ``uuidp report`` runs; benchmarks default to
quick mode so the harness completes in minutes — set
``REPRO_BENCH_FULL=1`` for the full sweep.
"""

import os

import pytest

from repro.experiments import ExperimentConfig, run_experiment

BENCH_SEED = 20230414


def bench_config() -> ExperimentConfig:
    """Quick by default; REPRO_BENCH_FULL=1 switches to the full sweep."""
    full = os.environ.get("REPRO_BENCH_FULL", "") == "1"
    return ExperimentConfig(quick=not full, seed=BENCH_SEED)


def reproduce(benchmark, experiment_id: str):
    """Run one experiment under the benchmark timer and verify it."""
    config = bench_config()
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, config),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_markdown())
    failed = [check for check in result.checks if not check.passed]
    assert not failed, f"{experiment_id} shape checks failed: " + "; ".join(
        str(check) for check in failed
    )
    return result
