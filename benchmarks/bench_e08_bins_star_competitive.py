"""E8 bench: Theorem 9 competitive grid + Bins* hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import bins_star_collision_probability
from repro.core.bins_star import BinsStarGenerator


def test_e8_reproduce(benchmark):
    reproduce(benchmark, "E8")


def test_bins_star_next_id_throughput(benchmark):
    generator = BinsStarGenerator(
        1 << 64, random.Random(1), fallback_random=True
    )
    benchmark(generator.next_id)


def test_bins_star_exact_probability_speed(benchmark):
    profile = DemandProfile.of(16, 1024, 64, 4096)
    benchmark(bins_star_collision_probability, 1 << 32, profile)
