"""E10 bench: Theorem 11 follower-adversary table + follower game speed."""

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.adversary.semi_adaptive import DemandSequence, FollowerAdversary
from repro.core.bins_star import BinsStarGenerator
from repro.simulation.game import Game


def test_e10_reproduce(benchmark):
    reproduce(benchmark, "E10")


def test_follower_game_speed(benchmark):
    sequence = DemandSequence.from_profile(
        DemandProfile.uniform(8, 64), order="round_robin"
    )

    def play():
        game = Game(
            lambda m, rng: BinsStarGenerator(m, rng),
            1 << 14,
            FollowerAdversary(DemandSequence(sequence.steps)),
            seed=5,
            stop_on_collision=False,
        )
        return game.run()

    benchmark(play)
