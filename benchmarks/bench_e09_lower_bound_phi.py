"""E9 bench: the Ω(log m) lower-bound table + Φ machinery speed."""


from benchmarks.conftest import reproduce
from repro.adversary.phi import PhiDistribution
from repro.analysis.exact import cluster_collision_probability


def test_e9_reproduce(benchmark):
    reproduce(benchmark, "E9")


def test_phi_construction_speed(benchmark):
    benchmark(PhiDistribution, 1 << 20)


def test_phi_exact_expectation_speed(benchmark):
    phi = PhiDistribution(1 << 16)
    m = 1 << 16

    def expectation():
        return phi.expectation(
            lambda profile: cluster_collision_probability(m, profile)
        )

    benchmark(expectation)
