"""KV serving bench: ops/s and tail latency per YCSB workload A–F.

Runs the :class:`~repro.workloads.driver.WorkloadDriver` for every
workload mix against both targets — a single MiniRocks store and a
ClusterSimulator fleet — and records throughput plus p50/p95/p99 op
latency in the benchmark JSON (``extra_info``), so the CI bench-smoke
artifact carries the full workload × target serving matrix alongside
the Monte-Carlo engines artifact. Since PR 6 the matrix gains
``target="network"`` rows: the same driver pointed at a real
``uuidp serve`` asyncio RPC server over loopback, so the in-process
vs network serving overhead (syscalls + framing + socket hops) is a
measured, regression-gated column, not folklore.

``REPRO_BENCH_SCALE`` scales record/op counts (the CI smoke lane sets
it well below 1); ``REPRO_BENCH_KV_SHARDS``/``REPRO_BENCH_KV_WORKERS``
override the shard/executor counts.
"""

import os

import pytest

from repro.kvstore.options import Options
from repro.workloads.driver import (
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
    store_target_factory,
)
from repro.workloads.ycsb import WorkloadSpec

BENCH_SEED = 20230414
WORKLOADS = list("abcdef")


def _scaled(base: int, floor: int) -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return max(floor, int(base * scale))


def _spec(workload: str) -> WorkloadSpec:
    return WorkloadSpec(
        workload=workload,
        record_count=_scaled(2000, 200),
        operation_count=_scaled(8000, 500),
        value_size=32,
        max_scan_length=50,
    )


def _config(workload: str) -> DriverConfig:
    return DriverConfig(
        spec=_spec(workload),
        shards=int(os.environ.get("REPRO_BENCH_KV_SHARDS", "2")),
        workers=int(os.environ.get("REPRO_BENCH_KV_WORKERS", "1")),
        warmup_operations=_scaled(500, 50),
        seed=BENCH_SEED,
    )


def _options() -> Options:
    return Options(memtable_entries=128, block_entries=16)


def _record(benchmark, result) -> None:
    payload = result.to_dict()
    for key in (
        "ops_per_second", "p50_us", "p95_us", "p99_us", "mean_us",
        "operations", "fingerprint",
    ):
        benchmark.extra_info[key] = payload[key]
    print(
        f"\n{payload['workload'].upper()}: "
        f"{payload['ops_per_second']:,.0f} ops/s, "
        f"p50 {payload['p50_us']:.1f} us, p99 {payload['p99_us']:.1f} us "
        f"({payload['operations']} ops)"
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_kv_workload_store(benchmark, workload):
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["target"] = "store"
    driver = WorkloadDriver(
        store_target_factory(_options), _config(workload)
    )
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    assert result.operations == (
        driver.config.shards * driver.config.spec.operation_count
    )
    _record(benchmark, result)


@pytest.mark.parametrize("write_mode", ["nosync", "batch", "sync"])
def test_kv_workload_store_durable(benchmark, write_mode):
    """Workload A through the durable group-commit WAL, per WriteMode.

    The three rows price the durability spectrum on the update-heavy
    mix: ``nosync`` (fsync only at flush) ≈ the in-memory row,
    ``batch`` pays one adaptive group fsync per write group, ``sync``
    pays one per write. ``fsync_count`` rides along in ``extra_info``
    so a group-commit regression (syncing per-record under batch)
    shows up as a counted fact, not just a latency smell.
    """
    from repro.kvstore.wal import WriteMode

    benchmark.extra_info["workload"] = "a"
    benchmark.extra_info["target"] = "store"
    benchmark.extra_info["write_mode"] = write_mode

    def durable_options() -> Options:
        return Options(
            memtable_entries=128,
            block_entries=16,
            write_mode=WriteMode(write_mode),
        )

    driver = WorkloadDriver(
        store_target_factory(durable_options, durable=True),
        _config("a"),
        collect=lambda store: store.stats,
    )
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    assert result.operations == (
        driver.config.shards * driver.config.spec.operation_count
    )
    stats = [shard.collected for shard in result.shard_results]
    fsyncs = sum(s.fsync_count for s in stats)
    benchmark.extra_info["fsync_count"] = fsyncs
    benchmark.extra_info["wal_bytes"] = sum(s.wal_bytes for s in stats)
    if write_mode == "sync":
        # Every put fsyncs (plus rotations); the floor is the put count.
        assert fsyncs >= result.op_counts.get("put", 0)
    elif write_mode == "batch":
        assert 0 < fsyncs < result.op_counts.get("put", 1)
    _record(benchmark, result)


@pytest.mark.parametrize("rf", [1, 3], ids=["rf1", "rf3"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_kv_workload_cluster(benchmark, workload, rf):
    """Cluster serving at RF=1 vs RF=3: the replication cost columns.

    The artifact gains an ops/s + p99 row per (workload, RF) pair, so
    the quorum write/read amplification of replication is measured —
    and gated — alongside the single-copy numbers.
    """
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["target"] = "cluster"
    benchmark.extra_info["replication_factor"] = rf
    driver = WorkloadDriver(
        cluster_target_factory(4, _options, replication_factor=rf),
        _config(workload),
        collect=flush_and_report,
    )
    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)
    assert result.operations == (
        driver.config.shards * driver.config.spec.operation_count
    )
    report = result.shard_results[0].collected
    benchmark.extra_info["cache_hit_rate"] = report.cache_hit_rate
    _record(benchmark, result)


@pytest.mark.parametrize("workload", ["a", "c"])
def test_kv_workload_network(benchmark, workload):
    """Network serving over loopback: the RPC-boundary cost columns.

    Workloads A (update-heavy) and C (read-only) bracket the mix
    space; comparing their rows against the ``target="store"`` rows
    above prices the serving stack itself — same driver, same seeds,
    same (bit-identical) op streams, plus a real socket per shard.
    """
    from repro.distributed.rpc import (
        ServerThread,
        network_flush_and_report,
        network_target_factory,
    )

    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["target"] = "network"
    with ServerThread(store_target_factory(_options)) as handle:
        host, port = handle.address

        def run():
            return WorkloadDriver(
                network_target_factory(host, port),
                _config(workload),
                collect=network_flush_and_report,
            ).run()

        result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.operations == (
        result.config.shards * result.config.spec.operation_count
    )
    assert not result.op_errors, result.op_errors
    _record(benchmark, result)


def _p99_us(latencies_s) -> float:
    """99th-percentile of a latency sample, in microseconds."""
    ordered = sorted(latencies_s)
    index = min(len(ordered) - 1, int(len(ordered) * 0.99))
    return ordered[index] * 1e6


def _readpath_store(record_count: int):
    """A deterministic in-memory store for read-path microbenches."""
    import random

    from repro.kvstore.db import MiniRocks

    db = MiniRocks(_options(), rng=random.Random(BENCH_SEED))
    keys = [f"user{i:08d}".encode() for i in range(record_count)]
    value = b"x" * 32
    for key in keys:
        db.put(key, value)
    return db, keys


@pytest.mark.parametrize("outcome", ["hit", "miss"])
def test_kv_point_get(benchmark, outcome):
    """Point-get microbench: the zero-decode block read path.

    ``hit`` probes uniformly over present keys (bloom pass → offset
    bisect → single-record slice); ``miss`` probes absent keys, which
    the serialized bloom filters should reject without touching any
    block — the miss row is dominated by hash + probe cost.
    """
    import random
    from time import perf_counter

    benchmark.extra_info["target"] = "readpath"
    benchmark.extra_info["workload"] = f"point_get_{outcome}"
    db, keys = _readpath_store(_scaled(2000, 200))
    lookups = _scaled(8000, 500)
    rng = random.Random(BENCH_SEED + 1)
    if outcome == "hit":
        probes = [keys[rng.randrange(len(keys))] for _ in range(lookups)]
        assert all(db.get(key) is not None for key in probes[:50])
    else:
        probes = [
            f"absent{rng.randrange(1 << 30):010d}".encode()
            for _ in range(lookups)
        ]
        assert all(db.get(key) is None for key in probes[:50])

    def run():
        get = db.get
        latencies = []
        record = latencies.append
        start = perf_counter()
        for key in probes:
            t0 = perf_counter()
            get(key)
            record(perf_counter() - t0)
        return len(probes) / (perf_counter() - start), latencies

    ops, latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ops_per_second"] = ops
    benchmark.extra_info["p99_us"] = _p99_us(latencies)
    benchmark.extra_info["bloom_negative"] = db.stats.bloom_negative
    print(f"\nPOINT_GET[{outcome}]: {ops:,.0f} ops/s")


def test_kv_multi_get_batch(benchmark):
    """Batched point lookups: one SST walk + vectorized bloom probes.

    Throughput is keys resolved per second over 64-key batches; the
    bench asserts batch answers match looped :meth:`get` before
    timing, so the row can never go fast by going wrong.
    """
    import random
    from time import perf_counter

    benchmark.extra_info["target"] = "readpath"
    benchmark.extra_info["workload"] = "multi_get"
    db, keys = _readpath_store(_scaled(2000, 200))
    lookups = _scaled(8000, 500)
    rng = random.Random(BENCH_SEED + 2)
    universe = keys + [
        f"absent{rng.randrange(1 << 30):010d}".encode()
        for _ in range(len(keys) // 20 + 1)
    ]
    batches = []
    remaining = lookups
    while remaining > 0:
        size = min(64, remaining)
        batches.append(
            [universe[rng.randrange(len(universe))] for _ in range(size)]
        )
        remaining -= size
    sample = batches[0]
    assert db.multi_get(sample) == [db.get(key) for key in sample]

    def run():
        multi_get = db.multi_get
        latencies = []
        record = latencies.append
        start = perf_counter()
        for batch in batches:
            t0 = perf_counter()
            multi_get(batch)
            record(perf_counter() - t0)
        return lookups / (perf_counter() - start), latencies

    ops, latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ops_per_second"] = ops
    # Tail latency is per *batch* — one multi_get call resolves 64 keys.
    benchmark.extra_info["p99_us"] = _p99_us(latencies)
    print(f"\nMULTI_GET: {ops:,.0f} keys/s (batch=64)")


@pytest.mark.parametrize("version", [1, 2], ids=["v1", "v2"])
def test_kv_reopen_format(benchmark, version):
    """Reopen cost per SST container format, in entries loaded per sec.

    v1 must re-decode every block (bloom rebuilt by re-hashing every
    key); v2 restores serialized blooms + offset tables and decodes
    nothing — the rows price exactly the reopen win of the v2 format.
    """
    import random
    from time import perf_counter

    from repro.kvstore.db import MiniRocks
    from repro.kvstore.storage import SimulatedStorage

    benchmark.extra_info["target"] = "reopen"
    benchmark.extra_info["workload"] = f"v{version}"

    def versioned_options() -> Options:
        options = _options()
        options.sst_format_version = version
        return options

    storage = SimulatedStorage(seed=BENCH_SEED)
    db = MiniRocks.open(
        storage,
        options=versioned_options(),
        rng=random.Random(BENCH_SEED),
    )
    records = _scaled(2000, 200)
    for i in range(records):
        db.put(f"user{i:08d}".encode(), b"x" * 32)
    db.flush()
    live_entries = db.manifest.total_entries()
    assert live_entries > 0

    def run():
        latencies = []
        for _ in range(5):
            start = perf_counter()
            reopened = MiniRocks.open(
                storage,
                options=versioned_options(),
                rng=random.Random(BENCH_SEED + 1),
            )
            latencies.append(perf_counter() - start)
            assert reopened.manifest.total_entries() == live_entries
        return live_entries / min(latencies), latencies

    ops, latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ops_per_second"] = ops
    # Tail latency is per full reopen (manifest + every live SST).
    benchmark.extra_info["p99_us"] = _p99_us(latencies)
    benchmark.extra_info["live_entries"] = live_entries
    print(f"\nREOPEN[v{version}]: {ops:,.0f} entries/s")


def test_kv_format_fingerprint_identity(benchmark):
    """SST format v1 and v2 stores serve bit-identical workload C.

    Same seed, same durable target, only ``sst_format_version``
    differs — the driver fingerprint (op+key+outcome CRC) must match,
    proving the storage format never leaks into returned values.
    """

    def options_for(version: int):
        def make() -> Options:
            options = _options()
            options.sst_format_version = version
            return options

        return make

    def run_with(version: int):
        return WorkloadDriver(
            store_target_factory(options_for(version), durable=True),
            _config("c"),
        ).run()

    v1_result = run_with(1)
    v2_result = benchmark.pedantic(
        lambda: run_with(2), rounds=1, iterations=1
    )
    assert v1_result.fingerprint == v2_result.fingerprint
    assert v1_result.op_counts == v2_result.op_counts
    benchmark.extra_info["fingerprint"] = v2_result.fingerprint


def test_kv_driver_worker_determinism(benchmark):
    """The acceptance gate: workers=1 and workers=4 agree bit-for-bit."""
    spec = _spec("f")
    base = dict(spec=spec, shards=4, warmup_operations=100, seed=BENCH_SEED)

    def serial():
        return WorkloadDriver(
            store_target_factory(_options),
            DriverConfig(workers=1, **base),
        ).run()

    def sharded():
        return WorkloadDriver(
            store_target_factory(_options),
            DriverConfig(workers=4, **base),
        ).run()

    serial_result = serial()
    sharded_result = benchmark.pedantic(sharded, rounds=1, iterations=1)
    assert serial_result.fingerprint == sharded_result.fingerprint
    assert serial_result.op_counts == sharded_result.op_counts
    benchmark.extra_info["fingerprint"] = serial_result.fingerprint
