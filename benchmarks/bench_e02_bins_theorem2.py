"""E2 bench: Theorem 2 table + Bins(k) hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import bins_collision_probability
from repro.core.bins import BinsGenerator


def test_e2_reproduce(benchmark):
    reproduce(benchmark, "E2")


def test_bins_next_id_throughput(benchmark):
    generator = BinsGenerator(1 << 64, 4096, random.Random(1))
    benchmark(generator.next_id)


def test_bins_exact_probability_speed(benchmark):
    profile = DemandProfile.uniform(16, 4096)
    benchmark(bins_collision_probability, 1 << 40, 256, profile)
