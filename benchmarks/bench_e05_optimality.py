"""E5 bench: Theorem 6 optimality table + profile sampling speed."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.profiles import is_epsilon_good, sample_profile_d1


def test_e5_reproduce(benchmark):
    reproduce(benchmark, "E5")


def test_profile_sampling_speed(benchmark):
    rng = random.Random(5)
    benchmark(sample_profile_d1, 64, 4096, rng)


def test_epsilon_goodness_speed(benchmark):
    profile = sample_profile_d1(64, 4096, random.Random(1))
    benchmark(is_epsilon_good, profile, 0.25)
