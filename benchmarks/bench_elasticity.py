"""Elasticity bench: autoscaled vs statically provisioned fleets.

Every row drives the same flash-crowd arrival process (base load with
a mid-run demand surge, pure in ``(seed, tick)``) through a cluster
fleet and records, alongside wall-clock ops/s and p99:

* ``slo_violation_fraction`` — measured ops whose *modeled* queue
  latency breached the SLO (deterministic: the autoscaler's logical
  queue model, not wall clock, so the fraction is a stable, gateable
  number);
* ``shed_ops`` — ops rejected by admission control;
* ``avg_nodes`` — mean fleet size over the run (the provisioning
  cost axis).

The scenario matrix: ``autoscaled`` (the SLO controller scales 2 → up
to 8 nodes), ``static_under`` (flat fleet sized for the base load),
``static_avg`` (flat fleet with the same *average* node count the
autoscaler used — the fair-cost comparison), and ``static_over``
(flat fleet sized for the peak). The headline assertion: at equal
average cost, the autoscaled fleet violates the SLO strictly less
than the static fleet — elasticity buys SLO, not just ops/s. A second
gate re-runs the autoscaled scenario with the same seed and requires
bit-identical op fingerprints *and* scale-event schedules.

Rows land in the CI artifact behind ``compare_baseline.py`` keyed
``elastic/<scenario>``. ``REPRO_BENCH_SCALE`` shrinks record/op
counts for the smoke lane; the tick geometry (flash window, control
period) is derived from the scaled counts so every scale keeps the
surge inside the measured phase.
"""

import os

import pytest

from repro.distributed.autoscaler import AutoscalerConfig
from repro.kvstore.options import Options
from repro.workloads.demand import ArrivalProcess
from repro.workloads.driver import (
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
)
from repro.workloads.ycsb import WorkloadSpec

BENCH_SEED = 20230414

#: Queue-model capacity of one node, ops per logical second.
NODE_CAPACITY = 1000.0
#: Offered load outside the flash window (half a node of headroom on
#: the 2-node starting fleet).
BASE_RATE = 1000.0
#: Demand multiplier while the flash crowd is present.
FLASH_PEAK = 6.0
START_NODES = 2
MAX_NODES = 8

#: Cache for the cross-test comparison: the static_avg scenario sizes
#: its fleet from the autoscaled run's measured average node count.
_autoscaled_result = None


def _scaled(base: int, floor: int) -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    return max(floor, int(base * scale))


def _counts():
    """(record_count, measured ops) at the current bench scale."""
    return _scaled(1000, 200), _scaled(6000, 800)


def _autoscaler_config(records: int, ops: int, enabled: bool):
    """The shared SLO-controller config; tick geometry follows scale.

    The flash crowd arrives a quarter into the measured phase (after
    the ``records`` load ticks) and stays for half of it. Arrival rate
    and node capacity both shrink with the op count, which keeps the
    queue *physics* scale-invariant: utilization ratios are unchanged,
    while time-to-SLO-breach (an absolute-ms threshold over a backlog
    denominated in capacity units) shrinks in ticks exactly as the
    flash window does — so the smoke lane sees the same
    breach/scale/shed story as the full run, just shorter.
    """
    time_scale = ops / 6000.0
    return AutoscalerConfig(
        arrival=ArrivalProcess(
            kind="flash",
            base_rate=BASE_RATE * time_scale,
            flash_at=records + ops // 4,
            flash_ticks=ops // 2,
            peak=FLASH_PEAK,
        ),
        slo_p99_ms=20.0,
        min_nodes=1,
        max_nodes=MAX_NODES,
        node_capacity=NODE_CAPACITY * time_scale,
        check_every=max(25, ops // 40),
        breach_checks=2,
        idle_checks=3,
        idle_utilization=0.35,
        shed_after_ms=80.0,
        enabled=enabled,
    )


def _options() -> Options:
    return Options(memtable_entries=128, block_entries=16)


def _run(nodes: int, enabled: bool):
    records, ops = _counts()
    config = DriverConfig(
        spec=WorkloadSpec(
            workload="a",
            record_count=records,
            operation_count=ops,
            value_size=32,
        ),
        shards=2,
        workers=1,
        seed=BENCH_SEED,
        autoscaler=_autoscaler_config(records, ops, enabled),
    )
    return WorkloadDriver(
        cluster_target_factory(nodes, _options),
        config,
        collect=flush_and_report,
    ).run()


def _autoscaled():
    global _autoscaled_result
    if _autoscaled_result is None:
        _autoscaled_result = _run(START_NODES, enabled=True)
    return _autoscaled_result


def _record(benchmark, scenario: str, result) -> None:
    payload = result.to_dict()
    elasticity = payload["elasticity"]
    benchmark.extra_info["target"] = "elastic"
    benchmark.extra_info["workload"] = scenario
    benchmark.extra_info["ops_per_second"] = payload["ops_per_second"]
    benchmark.extra_info["p99_us"] = payload["p99_us"]
    benchmark.extra_info["fingerprint"] = payload["fingerprint"]
    benchmark.extra_info["slo_violation_fraction"] = elasticity[
        "slo_violation_fraction"
    ]
    benchmark.extra_info["shed_ops"] = elasticity["shed_ops"]
    benchmark.extra_info["avg_nodes"] = elasticity["avg_live_nodes"]
    benchmark.extra_info["schedule_fingerprint"] = elasticity[
        "schedule_fingerprint"
    ]
    print(
        f"\nELASTIC[{scenario}]: "
        f"{payload['ops_per_second']:,.0f} ops/s, "
        f"SLO violations {elasticity['slo_violation_fraction']:.1%}, "
        f"shed {elasticity['shed_ops']}, "
        f"avg nodes {elasticity['avg_live_nodes']:.2f}"
    )


def test_elasticity_autoscaled(benchmark):
    """The SLO controller under a flash crowd — plus the identity gate.

    Two same-seed runs must agree bit-for-bit on op fingerprints and
    on the scale-event schedule (tick, action, node, fleet size of
    every event): the queue model, not the wall clock, drives scaling.
    """
    global _autoscaled_result
    result = benchmark.pedantic(
        lambda: _run(START_NODES, enabled=True), rounds=1, iterations=1
    )
    _autoscaled_result = result
    rerun = _run(START_NODES, enabled=True)
    assert rerun.fingerprint == result.fingerprint
    first = result.elasticity
    second = rerun.elasticity
    assert (
        second["schedule_fingerprint"] == first["schedule_fingerprint"]
    )
    assert second["scale_events"] == first["scale_events"]
    assert first["scale_events"], "flash crowd must trigger scale-ups"
    assert any(
        event["action"] == "add" for event in first["scale_events"]
    )
    _record(benchmark, "autoscaled", result)


def test_elasticity_static_under(benchmark):
    """Flat fleet sized for the base load: cheap, melts under flash."""
    result = benchmark.pedantic(
        lambda: _run(START_NODES, enabled=False), rounds=1, iterations=1
    )
    elasticity = result.elasticity
    assert not elasticity["scale_events"]
    # Saturation must engage the pressure valve, not crash the run.
    assert elasticity["shed_ops"] > 0
    _record(benchmark, "static_under", result)


def test_elasticity_static_avg(benchmark):
    """The headline comparison: same average node count, flat.

    The fleet size is the autoscaled run's measured ``avg_nodes``
    (rounded); at equal provisioning cost the autoscaled fleet must
    deliver a strictly lower modeled SLO-violation fraction.
    """
    auto = _autoscaled()
    avg_nodes = max(1, round(auto.elasticity["avg_live_nodes"]))
    result = benchmark.pedantic(
        lambda: _run(avg_nodes, enabled=False), rounds=1, iterations=1
    )
    benchmark.extra_info["static_nodes"] = avg_nodes
    auto_fraction = auto.elasticity["slo_violation_fraction"]
    static_fraction = result.elasticity["slo_violation_fraction"]
    assert auto_fraction < static_fraction, (
        f"autoscaled fleet ({auto_fraction:.1%} violations, avg "
        f"{auto.elasticity['avg_live_nodes']:.2f} nodes) must beat a "
        f"flat {avg_nodes}-node fleet ({static_fraction:.1%}) at "
        "equal average cost"
    )
    _record(benchmark, "static_avg", result)


def test_elasticity_static_over(benchmark):
    """Flat fleet sized for the peak: the SLO bought with idle nodes."""
    result = benchmark.pedantic(
        lambda: _run(MAX_NODES, enabled=False), rounds=1, iterations=1
    )
    _record(benchmark, "static_over", result)
