"""A2 bench: the Bins* chunk-count ablation + exact-formula speed."""

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import bins_star_collision_probability
from repro.core.bins_star import chunk_count


def test_a2_reproduce(benchmark):
    reproduce(benchmark, "A2")


def test_bins_star_reduced_chunks_probability_speed(benchmark):
    m = 1 << 16
    c = chunk_count(m) - 4  # capacity 2^8 − 1 = 255
    profile = DemandProfile.of(16, 128)
    benchmark(bins_star_collision_probability, m, profile, c)
