"""E6 bench: the Lemma 7 adaptive-attack sweep + game-step latency."""

from benchmarks.conftest import reproduce
from repro.adversary.attacks import ClosestPairAttack
from repro.core.cluster import ClusterGenerator
from repro.simulation.game import Game


def test_e6_reproduce(benchmark):
    reproduce(benchmark, "E6")


def test_closest_pair_game_speed(benchmark):
    """One full adaptive game (n=16, d=512) per round."""

    def play():
        game = Game(
            lambda m, rng: ClusterGenerator(m, rng),
            1 << 20,
            ClosestPairAttack(n=16, d=512),
            seed=7,
        )
        return game.run()

    benchmark(play)
