#!/usr/bin/env python
"""Benchmark-regression gate: compare bench JSON against baselines.

Four PRs of benchmark artifacts used to upload into a void — nothing
failed CI when a hot path regressed. This script closes the loop for
the KV serving benchmarks: the bench-smoke job compares the freshly
produced ``pytest-benchmark`` JSON against the smoke-scale baselines
committed under ``benchmarks/baselines/`` and goes red when any
workload row drifts past the thresholds:

* ops/s dropping by more than ``--max-ops-drop`` (default 30%), or
* p99 latency growing past ``--max-p99-ratio``× (default 2×).

Rows are keyed ``target/workload[/rfN][/MODE]`` (e.g. ``cluster/a/rf3``
or ``store/a/sync`` for the durable-WAL write modes) and
their metrics come from each benchmark's ``extra_info`` — wall-clock
numbers at smoke scale, which is why the thresholds are generous: the
gate is meant to catch the 2×-10× "accidentally quadratic" class of
regression, not 5% noise. **Baselines are only meaningful for the
machine class they were measured on** (each baseline's ``_meta``
records its refresh host). If the gate goes red on a PR that touched
no hot path — or right after a runner-class change — refresh the
baseline *from the CI artifact* rather than from a dev box: download
``bench_kv_workloads.json`` from the bench-smoke run's uploaded
``benchmark-results`` artifact and feed it to ``--refresh``.

Refreshing baselines (one command, after an intentional perf change)::

    python -m pytest benchmarks/bench_kv_workloads.py -q \
        --benchmark-json=bench-results/bench_kv_workloads.json
    python benchmarks/compare_baseline.py --refresh \
        bench-results/bench_kv_workloads.json

(Run with the same env the CI smoke lane uses — see the bench-smoke
job in ``.github/workflows/ci.yml`` — then commit the baseline file.)

``--validate`` mode checks an artifact is present, parseable, and
non-empty; the bench loop runs it on every produced JSON so a broken
benchmark fails the job instead of silently uploading a partial
artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

DEFAULT_MAX_OPS_DROP = 0.30
DEFAULT_MAX_P99_RATIO = 2.0
BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: Metrics gated per row (drawn from each benchmark's extra_info).
GATED_METRICS = ("ops_per_second", "p99_us")

Rows = Dict[str, Dict[str, float]]


def row_key(extra_info: Dict) -> Optional[str]:
    """Stable row identity: ``target/workload[/rfN][/MODE]``.

    The trailing ``MODE`` component is the durable-WAL write mode
    (``nosync``/``batch``/``sync``); rows without one are the
    in-memory store.
    """
    target = extra_info.get("target")
    workload = extra_info.get("workload")
    if target is None or workload is None:
        return None
    key = f"{target}/{workload}"
    rf = extra_info.get("replication_factor")
    if rf is not None:
        key += f"/rf{int(rf)}"
    mode = extra_info.get("write_mode")
    if mode is not None:
        key += f"/{mode}"
    return key


def extract_rows(artifact: Dict) -> Rows:
    """Pull the gated rows out of a pytest-benchmark JSON payload."""
    rows: Rows = {}
    for bench in artifact.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        key = row_key(extra)
        if key is None or "ops_per_second" not in extra:
            continue  # e.g. the bit-identity gate records no throughput
        rows[key] = {
            metric: float(extra[metric])
            for metric in GATED_METRICS
            if metric in extra
        }
    return rows


def load_rows(path: str) -> Rows:
    with open(path) as handle:
        return extract_rows(json.load(handle))


def compare(
    current: Rows,
    baseline: Rows,
    max_ops_drop: float = DEFAULT_MAX_OPS_DROP,
    max_p99_ratio: float = DEFAULT_MAX_P99_RATIO,
) -> List[str]:
    """Return the list of gate failures (empty == green).

    Every baseline row must be present and within thresholds. Rows
    present only in ``current`` (a newly added benchmark) pass — they
    start being gated once the baseline is refreshed.
    """
    failures: List[str] = []
    for key in sorted(baseline):
        base = baseline[key]
        row = current.get(key)
        if row is None:
            failures.append(
                f"{key}: benchmark row missing from results "
                "(removed or renamed without a baseline refresh?)"
            )
            continue
        base_ops = base.get("ops_per_second", 0.0)
        if base_ops > 0 and "ops_per_second" in row:
            floor = base_ops * (1.0 - max_ops_drop)
            if row["ops_per_second"] < floor:
                failures.append(
                    f"{key}: ops/s {row['ops_per_second']:,.0f} is "
                    f"{1 - row['ops_per_second'] / base_ops:.0%} below "
                    f"baseline {base_ops:,.0f} "
                    f"(allowed drop {max_ops_drop:.0%})"
                )
        base_p99 = base.get("p99_us", 0.0)
        if base_p99 > 0 and "p99_us" in row:
            ceiling = base_p99 * max_p99_ratio
            if row["p99_us"] > ceiling:
                failures.append(
                    f"{key}: p99 {row['p99_us']:.1f}us is "
                    f"{row['p99_us'] / base_p99:.1f}x baseline "
                    f"{base_p99:.1f}us (allowed {max_p99_ratio:.1f}x)"
                )
    return failures


def validate_artifact(path: str) -> List[str]:
    """Sanity-check one produced bench JSON (missing/empty/partial)."""
    if not os.path.exists(path):
        return [f"{path}: artifact missing (benchmark never wrote it)"]
    if os.path.getsize(path) == 0:
        return [f"{path}: artifact is empty (benchmark died mid-write?)"]
    try:
        with open(path) as handle:
            artifact = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: artifact is not valid JSON ({exc})"]
    if not artifact.get("benchmarks"):
        return [
            f"{path}: artifact contains no benchmark records "
            "(collection error or every test skipped)"
        ]
    return []


def baseline_path_for(results_path: str) -> str:
    return os.path.join(BASELINE_DIR, os.path.basename(results_path))


def refresh(results_path: str, baseline_path: str) -> Rows:
    rows = load_rows(results_path)
    if not rows:
        raise SystemExit(
            f"{results_path}: no gateable rows (extra_info lacks "
            "target/workload/ops_per_second) — refusing to write an "
            "empty baseline"
        )
    import platform

    payload = {
        "_meta": {
            "source": os.path.basename(results_path),
            # Wall-clock baselines only transfer within a machine
            # class; a red gate on an untouched hot path usually means
            # this host differs from the runner — refresh from the CI
            # artifact (see module docstring).
            "refresh_host": platform.platform(),
            "refresh": (
                "python benchmarks/compare_baseline.py --refresh "
                f"bench-results/{os.path.basename(results_path)}"
            ),
            "thresholds": {
                "max_ops_drop": DEFAULT_MAX_OPS_DROP,
                "max_p99_ratio": DEFAULT_MAX_P99_RATIO,
            },
        },
        "rows": rows,
    }
    baseline_dir = os.path.dirname(baseline_path)
    if baseline_dir:
        os.makedirs(baseline_dir, exist_ok=True)
    with open(baseline_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return rows


def load_baseline(baseline_path: str) -> Rows:
    with open(baseline_path) as handle:
        return json.load(handle)["rows"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark-regression gate for bench-smoke artifacts"
    )
    parser.add_argument("results", help="pytest-benchmark JSON to check")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: benchmarks/baselines/<results name>)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="rewrite the baseline from these results instead of gating",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="only check the artifact is present/parseable/non-empty",
    )
    parser.add_argument(
        "--max-ops-drop", type=float, default=DEFAULT_MAX_OPS_DROP,
        help="fail when ops/s drops by more than this fraction",
    )
    parser.add_argument(
        "--max-p99-ratio", type=float, default=DEFAULT_MAX_P99_RATIO,
        help="fail when p99 exceeds baseline by more than this factor",
    )
    args = parser.parse_args(argv)

    problems = validate_artifact(args.results)
    if problems:
        for line in problems:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"ok: {args.results} is a well-formed bench artifact")
        return 0

    baseline_path = args.baseline or baseline_path_for(args.results)
    if args.refresh:
        rows = refresh(args.results, baseline_path)
        print(f"wrote {baseline_path} ({len(rows)} rows)")
        return 0

    if not os.path.exists(baseline_path):
        print(
            f"FAIL {baseline_path}: no committed baseline — run the "
            "refresh command from the module docstring and commit it",
            file=sys.stderr,
        )
        return 1
    failures = compare(
        load_rows(args.results),
        load_baseline(baseline_path),
        max_ops_drop=args.max_ops_drop,
        max_p99_ratio=args.max_p99_ratio,
    )
    if failures:
        print(
            f"benchmark regression gate: {len(failures)} failure(s) vs "
            f"{baseline_path}",
            file=sys.stderr,
        )
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        print(
            "intentional perf change? refresh the baseline (see "
            "module docstring) and commit it with the PR",
            file=sys.stderr,
        )
        return 1
    print(
        f"benchmark regression gate green: {args.results} within "
        f"thresholds of {baseline_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
