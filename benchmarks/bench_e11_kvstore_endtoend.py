"""E11 bench: end-to-end KV cluster corruption + store hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options


def test_e11_reproduce(benchmark):
    reproduce(benchmark, "E11")


def _loaded_store():
    db = MiniRocks(
        Options(memtable_entries=64, block_entries=16, id_universe=1 << 64),
        rng=random.Random(1),
    )
    for i in range(2000):
        db.put(f"key{i:06d}".encode(), b"value" * 4)
    db.flush()
    return db


def test_minirocks_get_latency(benchmark):
    db = _loaded_store()
    keys = [f"key{i:06d}".encode() for i in range(0, 2000, 37)]
    index = iter(range(10**9))

    def lookup():
        return db.get(keys[next(index) % len(keys)])

    benchmark(lookup)


def test_minirocks_put_latency(benchmark):
    db = MiniRocks(
        Options(memtable_entries=256, id_universe=1 << 64),
        rng=random.Random(2),
    )
    index = iter(range(10**9))

    def write():
        i = next(index)
        db.put(f"bench{i:08d}".encode(), b"v" * 16)

    benchmark(write)
