"""A1 bench: the Cluster* growth-factor ablation + generator variants."""

import random

import pytest

from benchmarks.conftest import reproduce
from repro.core.cluster_star import ClusterStarGenerator


def test_a1_reproduce(benchmark):
    reproduce(benchmark, "A1")


@pytest.mark.parametrize("growth", [1, 2, 8])
def test_cluster_star_growth_throughput(benchmark, growth):
    generator = ClusterStarGenerator(
        1 << 64, random.Random(1), growth=growth
    )
    benchmark(generator.next_id)
