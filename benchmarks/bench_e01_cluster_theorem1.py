"""E1 bench: Theorem 1 table + Cluster hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import cluster_collision_probability
from repro.core.cluster import ClusterGenerator


def test_e1_reproduce(benchmark):
    reproduce(benchmark, "E1")


def test_cluster_next_id_throughput(benchmark):
    generator = ClusterGenerator(1 << 128, random.Random(1))
    benchmark(generator.next_id)


def test_cluster_exact_probability_speed(benchmark):
    profile = DemandProfile.uniform(64, 1 << 20)
    benchmark(cluster_collision_probability, 1 << 128, profile)
