"""E7 bench: Theorem 8 attack suite + Cluster* hot paths."""

import random

from benchmarks.conftest import reproduce
from repro.adversary.attacks import GreedyGapAttack
from repro.core.cluster_star import ClusterStarGenerator
from repro.simulation.game import Game


def test_e7_reproduce(benchmark):
    reproduce(benchmark, "E7")


def test_cluster_star_next_id_throughput(benchmark):
    generator = ClusterStarGenerator(1 << 64, random.Random(1))
    benchmark(generator.next_id)


def test_greedy_gap_game_speed(benchmark):
    """One greedy-gap game against Cluster* (n=8, d=256) per round."""

    def play():
        game = Game(
            lambda m, rng: ClusterStarGenerator(m, rng),
            1 << 20,
            GreedyGapAttack(n=8, d=256),
            seed=3,
        )
        return game.run()

    benchmark(play)
