"""E7 bench: Theorem 8 attack suite + Cluster* hot paths."""

import functools
import os
import random

from benchmarks.conftest import BENCH_SEED, record_speedup, reproduce
from repro.adversary.attacks import GreedyGapAttack
from repro.core.cluster_star import ClusterStarGenerator
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.game import Game
from repro.simulation.montecarlo import estimate_collision_probability
from repro.simulation.plan import SimulationPlan


def test_e7_reproduce(benchmark):
    reproduce(benchmark, "E7")


def test_e7_parallel_speedup_workers8(benchmark):
    """Serial vs ``workers=8`` on the E7 attack workload.

    Asserts the estimates are bit-identical and records the speedup in
    the benchmark JSON (enforcing the >= 3x floor on hosts with >= 8
    cores; see ``record_speedup``).
    """
    workers = int(os.environ.get("REPRO_BENCH_SPEEDUP_WORKERS", "8"))
    trials = int(os.environ.get("REPRO_BENCH_SPEEDUP_TRIALS", "800"))
    estimate = functools.partial(
        estimate_collision_probability,
        SpecFactory("cluster_star"),
        1 << 20,
        AttackFactory(GreedyGapAttack, n=8, d=256),
        trials=trials,
        seed=BENCH_SEED,
    )
    parallel = functools.partial(
        estimate, plan=SimulationPlan(workers=workers)
    )
    record_speedup(
        benchmark,
        "e07_greedy_gap",
        estimate,
        # The parallel leg doubles as pytest-benchmark's sample, so the
        # workload runs exactly twice (once serial, once parallel).
        lambda: benchmark.pedantic(parallel, rounds=1, iterations=1),
        workers,
    )


def test_cluster_star_next_id_throughput(benchmark):
    generator = ClusterStarGenerator(1 << 64, random.Random(1))
    benchmark(generator.next_id)


def test_greedy_gap_game_speed(benchmark):
    """One greedy-gap game against Cluster* (n=8, d=256) per round."""

    def play():
        game = Game(
            lambda m, rng: ClusterStarGenerator(m, rng),
            1 << 20,
            GreedyGapAttack(n=8, d=256),
            seed=3,
        )
        return game.run()

    benchmark(play)
