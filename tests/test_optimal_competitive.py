"""Unit tests for p* machinery and competitive-ratio computation."""

from fractions import Fraction

import pytest

from repro.adversary.profiles import DemandProfile
from repro.analysis.competitive import (
    adaptive_competitive_ratio,
    competitive_ratio_lower,
    competitive_ratio_upper,
    worst_ratio_over,
)
from repro.analysis.exact import (
    bins_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.analysis.optimal import (
    brute_force_p_star_pair_11,
    optimal_uniform_collision,
    p_star_lower_bound,
    p_star_pair,
    p_star_upper_bound,
)
from repro.errors import ConfigurationError


class TestOptimalUniform:
    def test_equals_bins_h_exact(self):
        m, n, h = 1 << 12, 5, 16
        assert optimal_uniform_collision(
            m, n, h
        ) == bins_collision_probability(m, h, DemandProfile.uniform(n, h))

    def test_pair_of_singletons_is_one_over_m(self):
        for m in (7, 100, 1 << 20):
            assert optimal_uniform_collision(m, 2, 1) == Fraction(1, m)
            assert brute_force_p_star_pair_11(m) == Fraction(1, m)

    def test_overfull(self):
        assert optimal_uniform_collision(4, 2, 5) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_uniform_collision(10, 0, 1)


class TestPStarBounds:
    def test_sandwich_holds(self):
        m = 1 << 14
        for demands in [(4, 4), (16, 256), (8, 8, 8), (1, 2, 4, 8)]:
            profile = DemandProfile(demands)
            low = p_star_lower_bound(m, profile)
            high = p_star_upper_bound(m, profile)
            assert 0 < low <= high <= 1

    def test_trivial_profile_is_zero(self):
        assert p_star_lower_bound(1 << 10, DemandProfile.of(5)) == 0
        assert p_star_upper_bound(1 << 10, DemandProfile.of(5)) == 0

    def test_uniform_profile_bounds_are_tight(self):
        """On uniform profiles the lower bound equals Bins(h) = p*."""
        m, n, h = 1 << 12, 4, 32
        profile = DemandProfile.uniform(n, h)
        exact = optimal_uniform_collision(m, n, h)
        assert p_star_lower_bound(m, profile) == exact
        assert p_star_upper_bound(m, profile) <= 2 * exact

    def test_lower_bound_below_every_algorithm(self):
        m = 1 << 12
        for demands in [(4, 4), (2, 64), (8, 8, 8, 8)]:
            profile = DemandProfile(demands)
            low = p_star_lower_bound(m, profile)
            assert low <= random_collision_probability(m, profile)
            assert low <= cluster_collision_probability(m, profile)


class TestPStarPair:
    def test_sandwich_and_theta(self):
        m = 1 << 16
        for i, j in [(1, 1), (4, 16), (16, 4096)]:
            low, high = p_star_pair(m, i, j)
            assert low <= high
            # Θ(i/m): both ends within a constant of i/m (j ≤ m/2 here).
            assert Fraction(i, 2 * m) <= low
            assert high <= Fraction(8 * i, m)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_star_pair(10, 5, 3)


class TestCompetitiveRatios:
    def test_upper_at_least_lower(self):
        m = 1 << 14
        profile = DemandProfile.of(8, 512)
        p = cluster_collision_probability(m, profile)
        assert competitive_ratio_upper(
            m, profile, p
        ) >= competitive_ratio_lower(m, profile, p)

    def test_ratio_of_optimal_algorithm_is_small_on_uniform(self):
        m, n, h = 1 << 14, 4, 32
        profile = DemandProfile.uniform(n, h)
        p = bins_collision_probability(m, h, profile)
        assert competitive_ratio_upper(m, profile, p) == pytest.approx(
            1.0
        )

    def test_trivial_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            competitive_ratio_upper(100, DemandProfile.of(5), Fraction(0))

    def test_worst_ratio_over(self):
        m = 1 << 14
        profiles = [DemandProfile.of(2, 2), DemandProfile.of(2, 512)]
        ratio, worst = worst_ratio_over(
            m,
            profiles,
            lambda D: cluster_collision_probability(m, D),
        )
        # Cluster's ratio is worst on the skewed profile.
        assert worst.demands == (2, 512)
        assert ratio > 10

    def test_adaptive_ratio_computation(self):
        m = 1 << 14
        profiles = [DemandProfile.of(4, 4)] * 10
        indicators = [True, False] * 5
        ratio = adaptive_competitive_ratio(m, indicators, profiles)
        expected = 0.5 / float(
            p_star_lower_bound(m, DemandProfile.of(4, 4))
        )
        assert ratio == pytest.approx(expected)

    def test_adaptive_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            adaptive_competitive_ratio(100, [True], [])
        with pytest.raises(ConfigurationError):
            adaptive_competitive_ratio(100, [], [])
