"""Property-based crash-recovery matrix (``crash`` CI lane).

Three layers of assurance that the acked-write contract holds:

1. An exhaustive matrix killing the store at **every labeled crash
   point** (``wal-append``, ``fsync``, ``flush``, ``compaction``,
   ``manifest-commit``) under **every** :class:`WriteMode`, then
   reopening and checking the recovered state is a prefix of the
   attempted ops that covers everything acknowledged.
2. A hypothesis property test crashing at an *arbitrary* storage op
   under a generated op sequence — same prefix invariant, explored
   instead of enumerated.
3. An RF=3 cluster crash (``kill(mode="crash")`` + WAL-replay
   ``recover()``) mid-YCSB through the workload driver: zero lost
   acknowledged writes and a bit-identical outcome fingerprint.

Everything is deterministic under fixed seeds (hypothesis runs
derandomized), so a failure reproduces exactly.
"""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulatedCrashError
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.kvstore.storage import SimulatedStorage
from repro.kvstore.wal import WriteMode
from repro.simulation.seeds import derive_seed
from repro.workloads.driver import (
    ChaosEvent,
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
)
from repro.workloads.ycsb import WorkloadSpec, load_phase, run_phase

pytestmark = pytest.mark.crash

#: Every labeled operation the durability path executes; the matrix
#: kills the store at the first occurrence of each.
CRASH_LABELS = (
    "wal-append",
    "fsync",
    "flush",
    "compaction",
    "manifest-commit",
)

WRITE_MODES = (WriteMode.NOSYNC, WriteMode.BATCH, WriteMode.SYNC_EVERY_WRITE)

#: Small key pool: collisions between attempted ops make the prefix
#: check meaningful (a resurrected stale value is detectable).
KEYS = [f"key{i}".encode() for i in range(6)]


def _matrix_options(mode):
    return Options(
        memtable_entries=4,
        block_entries=4,
        level0_file_limit=2,
        bloom_bits_per_key=0,
        write_mode=mode,
        wal_batch_size=2,
    )


def _op_stream(n, seed):
    """Deterministic mixed put/delete stream over the small key pool."""
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        key = KEYS[rng.randrange(len(KEYS))]
        if rng.random() < 0.2:
            ops.append(("delete", key, None))
        else:
            ops.append(("put", key, f"v{i}".encode()))
    return ops


def _apply(ops):
    state = {}
    for op, key, value in ops:
        if op == "put":
            state[key] = value
        else:
            state.pop(key, None)
    return state


def _execute(db, op):
    kind, key, value = op
    if kind == "put":
        return db.put(key, value)
    return db.delete(key)


def _recovered_state(db):
    return {key: db.get(key) for key in KEYS if db.get(key) is not None}


def _assert_acked_prefix_survives(storage, options, attempted, acked, context):
    """The core invariant: after restart, the visible state equals
    ``apply(attempted[:k])`` for some ``k`` with ``acked <= k <=
    len(attempted)`` — every acknowledged write survives, and no
    unacknowledged write resurrects out of order or ahead of a lost
    one."""
    storage.restart()
    reopened = MiniRocks.open(
        storage, options=options, rng=random.Random(999)
    )
    recovered = _recovered_state(reopened)
    candidates = [
        k
        for k in range(acked, len(attempted) + 1)
        if _apply(attempted[:k]) == recovered
    ]
    assert candidates, (
        f"{context}: recovered state matches no acked-covering prefix "
        f"(acked={acked}, attempted={len(attempted)}, "
        f"recovered={recovered})"
    )
    # Recovery itself must be durable: crash again immediately and the
    # same state must come back.
    k = candidates[0]
    storage.crash()
    storage.restart()
    again = MiniRocks.open(storage, options=options, rng=random.Random(998))
    assert _recovered_state(again) == _apply(attempted[:k]), (
        f"{context}: recovered state did not survive a second crash"
    )
    # Recovery must also leave a *writable* log: new acked writes land
    # in a fresh segment after the (possibly torn) recovered one, and
    # a third crash must not misread the old tear as mid-log
    # corruption and drop them (the double-crash regression).
    followups = [
        ("put", key, f"post-crash-{i}".encode())
        for i, key in enumerate(KEYS[:3])
    ]
    for op in followups:
        _execute(again, op)
    again.sync_wal()
    storage.crash()
    storage.restart()
    final = MiniRocks.open(storage, options=options, rng=random.Random(997))
    assert _recovered_state(final) == _apply(attempted[:k] + followups), (
        f"{context}: acked post-recovery writes lost after another crash"
    )


class TestLabeledCrashMatrix:
    """Kill at every labeled durability op x every WriteMode."""

    @pytest.mark.parametrize("mode", WRITE_MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("label", CRASH_LABELS)
    def test_kill_at_labeled_point(self, label, mode):
        options = _matrix_options(mode)
        # zlib.crc32, not hash(): builtin str hashing is randomized
        # per process and would unfix the torn-tail seed.
        storage = SimulatedStorage(
            seed=derive_seed(41, zlib.crc32(label.encode()) & 0xFFFF)
        )
        db = MiniRocks.open(storage, options=options, rng=random.Random(7))
        storage.plan_crash(at=1, label=label)

        ops = _op_stream(60, seed=derive_seed(17, ord(label[0]), 1))
        attempted = []
        acked = 0
        crashed = False
        for op in ops:
            attempted.append(op)  # attempted BEFORE executing
            try:
                _execute(db, op)
            except SimulatedCrashError:
                crashed = True
                break
            acked = db.durable_seqno
        if crashed:
            # durable_seqno may have advanced during the fatal op
            # (e.g. the group fsync completed before a later flush
            # step crashed) — those writes were acknowledged too.
            acked = max(acked, db.durable_seqno)
        else:
            # Some cells never fire (NOSYNC never fsyncs): fall back
            # to an untargeted process death with everything buffered.
            assert mode is WriteMode.NOSYNC and label == "fsync", (
                f"label {label!r} unexpectedly never fired under {mode}"
            )
            acked = db.durable_seqno
            storage.crash()

        _assert_acked_prefix_survives(
            storage, options, attempted, acked, f"{label} x {mode.value}"
        )

    @pytest.mark.parametrize("mode", WRITE_MODES, ids=lambda m: m.value)
    def test_every_matrix_label_fires(self, mode):
        """The matrix is honest: each labeled point is actually reached
        by the workload (except fsync under NOSYNC, by design)."""
        options = _matrix_options(mode)
        storage = SimulatedStorage(seed=1)
        db = MiniRocks.open(storage, options=options, rng=random.Random(7))
        for op in _op_stream(60, seed=derive_seed(17, ord("w"), 1)):
            _execute(db, op)
        fired = set(storage._label_counts)
        expected = set(CRASH_LABELS)
        if mode is WriteMode.NOSYNC:
            expected.discard("fsync")
        assert expected <= fired, f"never fired: {expected - fired}"


class TestCrashProperty:
    """Hypothesis: crash at an arbitrary storage op, any op sequence."""

    @given(
        data=st.data(),
        mode=st.sampled_from(WRITE_MODES),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_acked_writes_survive_any_crash(self, data, mode, seed):
        options = _matrix_options(mode)
        storage = SimulatedStorage(seed=seed)
        db = MiniRocks.open(storage, options=options, rng=random.Random(seed))

        n_ops = data.draw(st.integers(min_value=1, max_value=50), label="n_ops")
        crash_at = data.draw(
            st.integers(min_value=1, max_value=200), label="crash_at_storage_op"
        )
        storage.plan_crash(at=crash_at)  # label=None: Nth mutating op

        rng = random.Random(seed ^ 0x5EED)
        attempted = []
        acked = 0
        crashed = False
        for i in range(n_ops):
            key = KEYS[rng.randrange(len(KEYS))]
            if rng.random() < 0.25:
                op = ("delete", key, None)
            else:
                op = ("put", key, f"v{seed}-{i}".encode())
            attempted.append(op)
            try:
                _execute(db, op)
            except SimulatedCrashError:
                crashed = True
                break
            acked = db.durable_seqno
        if crashed:
            acked = max(acked, db.durable_seqno)
        else:
            storage.crash()  # plan beyond the workload: die at the end
            acked = db.durable_seqno

        _assert_acked_prefix_survives(
            storage,
            options,
            attempted,
            acked,
            f"property mode={mode.value} seed={seed} crash_at={crash_at}",
        )


def _expected_final_state(spec, shard_seed):
    """Replay the driver's exact op stream; last-acked value per key."""
    rng = random.Random(derive_seed(shard_seed, 0x0B5))
    state = {}
    for op, key, value in load_phase(spec, rng):
        state[key] = value
    for op, key, value in run_phase(spec, rng):
        if op in ("put", "rmw"):
            state[key] = value
    return state


def _cluster_small_options(**overrides):
    defaults = dict(
        memtable_entries=8,
        block_entries=4,
        level0_file_limit=2,
        id_universe=1 << 32,
        id_algorithm="cluster",
        bloom_bits_per_key=0,
    )
    defaults.update(overrides)
    return Options(**defaults)


class TestClusterCrashChaos:
    """RF=3 durable fleet: crash-kill + WAL-replay recover mid-YCSB."""

    NODES = 5
    RF = 3

    def _config(self, workload="a", ops=400, seed=20230414):
        spec = WorkloadSpec(
            workload=workload,
            record_count=150,
            operation_count=ops,
            value_size=16,
            max_scan_length=25,
        )
        return DriverConfig(
            spec=spec,
            shards=1,
            workers=1,
            seed=seed,
            chaos=(
                ChaosEvent(at_op=200, action="kill", node=1, mode="crash"),
                ChaosEvent(at_op=320, action="recover", node=1),
            ),
        )

    def _run(self, config):
        driver = WorkloadDriver(
            cluster_target_factory(
                self.NODES,
                _cluster_small_options,
                replication_factor=self.RF,
                durable=True,
            ),
            config,
            collect=lambda sim: sim,
        )
        return driver.run()

    @pytest.mark.parametrize("workload", ["a", "f"])
    def test_crash_kill_and_recover_loses_zero_acked_writes(self, workload):
        config = self._config(workload)
        result = self._run(config)
        assert result.operations == config.spec.operation_count
        sim = result.shard_results[0].collected

        report = sim.report()
        assert report.dead_nodes == 0  # recovered
        events = [(e[0], e[1]) for e in sim.fault_events]
        assert ("crash", "node1") in events
        assert ("recover", "node1") in events

        shard_seed = derive_seed(config.seed, 0xD21E, 0)
        expected = _expected_final_state(config.spec, shard_seed)
        assert expected
        for key, value in expected.items():
            assert sim.get(key) == value, (
                f"workload {workload}: acknowledged write to {key!r} "
                f"lost across crash-restart"
            )

    def test_crash_chaos_fingerprint_is_deterministic(self):
        """Torn tails, replay, and recovery are all seed-pure: two runs
        produce bit-identical outcome fingerprints."""
        first = self._run(self._config("f"))
        second = self._run(self._config("f"))
        assert first.fingerprint == second.fingerprint
        assert first.operations == second.operations
        assert (
            first.shard_results[0].op_errors
            == second.shard_results[0].op_errors
        )
