"""Model-based test: MiniRocks vs a dict, under random op interleavings.

A hypothesis ``RuleBasedStateMachine`` drives puts/deletes/gets/scans/
flushes/compactions/ingests in arbitrary orders and cross-checks every
read against a plain dict. This is the strongest storage-engine test in
the suite: any ordering bug in memtable shadowing, L0 recency,
compaction merge direction, or tombstone handling shows up as a model
divergence.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.kvstore.db import MiniRocks
from repro.kvstore.iterators import iterate_db
from repro.kvstore.options import Options

KEYS = [f"key{i:02d}".encode() for i in range(24)]


class MiniRocksMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = MiniRocks(
            Options(
                memtable_entries=5,
                block_entries=3,
                level0_file_limit=2,
                num_levels=4,
                id_universe=1 << 32,
            ),
            rng=random.Random(1234),
        )
        self.model = {}

    @rule(key=st.sampled_from(KEYS), value=st.binary(min_size=1, max_size=8))
    def put(self, key, value):
        self.db.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.db.delete(key)
        self.model.pop(key, None)

    @rule(key=st.sampled_from(KEYS))
    def get(self, key):
        assert self.db.get(key) == self.model.get(key)

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact(self):
        self.db.compact_all()

    @rule(
        start_index=st.integers(0, len(KEYS) - 1),
        span=st.integers(1, 10),
    )
    def scan(self, start_index, span):
        start = KEYS[start_index]
        end = KEYS[min(start_index + span, len(KEYS) - 1)]
        expected = sorted(
            (k, v) for k, v in self.model.items() if start <= k < end
        )
        assert self.db.scan(start, end) == expected

    @rule(value=st.binary(min_size=1, max_size=6))
    def ingest(self, value):
        # Ingest a two-key sorted batch of fresh, out-of-band keys.
        batch = [(b"zz-bulk-a", value), (b"zz-bulk-b", value)]
        self.db.ingest_external(batch)
        self.model[b"zz-bulk-a"] = value
        self.model[b"zz-bulk-b"] = value

    @invariant()
    def iterator_matches_model(self):
        assert dict(iterate_db(self.db)) == self.model


MiniRocksMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestMiniRocksStateful = MiniRocksMachine.TestCase
