"""Tests for the empirical worst-profile search (Corollary 5 cross-check)."""

from fractions import Fraction

import pytest

from repro.adversary.profiles import DemandProfile
from repro.adversary.worst_case import (
    candidate_profiles,
    find_worst_profile,
)
from repro.analysis.exact import (
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.errors import ConfigurationError


class TestCandidates:
    def test_all_candidates_in_family(self):
        for n, d in [(2, 10), (4, 64), (8, 100)]:
            for profile in candidate_profiles(n, d):
                assert profile.n == n
                assert profile.total == d

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            candidate_profiles(1, 10)
        with pytest.raises(ConfigurationError):
            candidate_profiles(5, 3)


class TestSearch:
    def test_random_worst_is_balanced(self):
        """Cor 5: Random's worst case maximizes ‖D‖₁²−‖D‖₂² — balanced."""
        m, n, d = 1 << 16, 4, 64
        profile, value = find_worst_profile(
            lambda D: random_collision_probability(m, D), n, d
        )
        assert max(profile.demands) - min(profile.demands) <= 1
        assert value == random_collision_probability(
            m, DemandProfile.uniform(n, d // n)
        )

    def test_cluster_worst_value_matches_theorem1_scale(self):
        """Cluster's exact probability is profile-shape-insensitive —
        any search result must sit at Θ(nd/m)."""
        m, n, d = 1 << 16, 4, 64
        _profile, value = find_worst_profile(
            lambda D: cluster_collision_probability(m, D), n, d
        )
        target = Fraction(n * d, m)
        assert target / 4 <= value <= 2 * target

    def test_search_never_below_canonicals(self):
        m, n, d = 1 << 14, 4, 48
        def probability(D):
            return bins_star_collision_probability(m, D)
        _profile, value = find_worst_profile(probability, n, d)
        for candidate in candidate_profiles(n, d):
            assert value >= probability(candidate)

    def test_search_is_deterministic(self):
        m, n, d = 1 << 14, 3, 30
        a = find_worst_profile(
            lambda D: random_collision_probability(m, D), n, d
        )
        b = find_worst_profile(
            lambda D: random_collision_probability(m, D), n, d
        )
        assert a == b
