"""Unit tests for experiment-internal helpers (cheap, no MC)."""


from repro.adversary.profiles import DemandProfile
from repro.experiments import e01_cluster_theorem1 as e01
from repro.experiments import e04_worstcase_crossover as e04
from repro.experiments import e08_bins_star_competitive as e08
from repro.experiments import e10_adaptive_competitive as e10
from repro.experiments import e11_kvstore_endtoend as e11
from repro.experiments.framework import ExperimentConfig


class TestE01Profiles:
    def test_profile_sweep_well_formed(self):
        profiles = list(e01._profiles(1 << 24, quick=True))
        assert profiles
        for label, profile in profiles:
            assert profile.total <= (1 << 24) // 4
            assert any(
                label.startswith(prefix)
                for prefix in ("uniform", "zipf", "maxskew")
            )

    def test_quick_is_subset_scale(self):
        quick = list(e01._profiles(1 << 24, quick=True))
        full = list(e01._profiles(1 << 24, quick=False))
        assert len(quick) < len(full)


class TestE04FailureScale:
    def test_finds_first_crossing(self):
        assert e04._failure_scale([1, 2, 4], [0.1, 0.6, 0.9]) == 2

    def test_none_when_never_fails(self):
        assert e04._failure_scale([1, 2], [0.1, 0.2]) is None


class TestE08WorstRatios:
    def test_returns_all_algorithms(self):
        worst = e08._worst_ratios(1 << 12, 4)
        assert set(worst) == {"bins_star", "cluster", "random"}
        assert all(value >= 1.0 for value in worst.values())

    def test_bins_star_best(self):
        worst = e08._worst_ratios(1 << 14, 6)
        assert worst["bins_star"] <= worst["cluster"]


class TestE10Helpers:
    def test_sequences_valid(self):
        for name, sequence in e10._sequences(quick=False):
            assert len(sequence.steps) == sequence.final_profile().total
            assert name

    def test_prefix_profiles_sampling(self):
        from repro.adversary.semi_adaptive import DemandSequence

        sequence = DemandSequence.from_profile(
            DemandProfile.uniform(4, 16), order="round_robin"
        )
        prefixes = e10._prefix_profiles(sequence, samples=5)
        assert 1 <= len(prefixes) <= 8
        # Prefixes grow: the last one is the full profile.
        assert prefixes[-1].total == sequence.final_profile().total
        for profile in prefixes:
            assert profile.n >= 2


class TestE11Fleet:
    def test_single_fleet_run_metrics(self):
        from repro.workloads.ycsb import WorkloadSpec

        spec = WorkloadSpec(
            workload="a", record_count=100, operation_count=300
        )
        driver_result, per_shard = e11._run_fleet(
            "cluster", 1 << 20, nodes=3, spec=spec, seed=3, shards=2
        )
        assert driver_result.operations == 2 * 300
        assert driver_result.ops_per_second > 0
        assert len(per_shard) == 2
        for metrics in per_shard:
            assert metrics["ids_minted"] > 0
            assert metrics["id_collisions"] == 0  # 2^20 universe, tiny load
            assert 0.0 <= metrics["hit_rate"] <= 1.0


class TestConfigPlumbing:
    def test_seed_propagates_determinism(self):
        from repro.experiments import run_experiment

        a = run_experiment("E9", ExperimentConfig(quick=True, seed=1))
        b = run_experiment("E9", ExperimentConfig(quick=True, seed=1))
        assert [r for r in a.rows] == [r for r in b.rows]
