"""Deeper compaction and options tests: cascades, tombstone life cycle."""

import random

import pytest

from repro.core.base import IDGenerator
from repro.core.cluster import ClusterGenerator
from repro.errors import ConfigurationError
from repro.kvstore.db import MiniRocks
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.options import Options, generator_factory_from_spec


class TestOptions:
    def test_defaults_build_a_generator(self):
        options = Options()
        generator = options.id_generator_factory(random.Random(1))
        assert isinstance(generator, IDGenerator)

    def test_spec_factory(self):
        factory = generator_factory_from_spec("cluster", 1 << 20)
        generator = factory(random.Random(2))
        assert isinstance(generator, ClusterGenerator)
        assert generator.m == 1 << 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Options(memtable_entries=0)
        with pytest.raises(ConfigurationError):
            Options(block_entries=0)
        with pytest.raises(ConfigurationError):
            Options(num_levels=1)
        with pytest.raises(ConfigurationError):
            Options(id_universe=1)

    def test_explicit_factory_wins(self):
        sentinel = []

        def factory(rng):
            sentinel.append(rng)
            return ClusterGenerator(64, rng)

        options = Options(id_generator_factory=factory)
        options.id_generator_factory(random.Random(1))
        assert sentinel


class TestCompactionCascade:
    def _db(self):
        return MiniRocks(
            Options(
                memtable_entries=4,
                block_entries=2,
                level0_file_limit=2,
                level_size_multiplier=2,
                num_levels=4,
                id_universe=1 << 32,
            ),
            rng=random.Random(9),
        )

    def test_data_reaches_deep_levels_and_survives(self):
        db = self._db()
        reference = {}
        rng = random.Random(10)
        for i in range(600):
            key = f"k{rng.randrange(120):03d}".encode()
            value = f"v{i}".encode()
            db.put(key, value)
            reference[key] = value
        # Something must have cascaded below L1.
        deep_files = sum(
            db.manifest.file_count(level)
            for level in range(2, db.manifest.num_levels)
        )
        assert deep_files > 0
        for key, value in reference.items():
            assert db.get(key) == value

    def test_levels_respect_budgets_after_compact_all(self):
        from repro.kvstore.compaction import level_file_budget

        db = self._db()
        for i in range(400):
            db.put(f"k{i % 90:03d}".encode(), b"v")
        db.flush()
        db.compact_all()
        for level in range(db.manifest.num_levels - 1):
            assert db.manifest.file_count(level) < level_file_budget(
                db.options, level
            )

    def test_tombstone_survives_until_bottom_level(self):
        """A delete must keep shadowing older versions while any older
        level could still hold the key — dropped only at the bottom."""
        db = self._db()
        db.put(b"victim", b"alive")
        for i in range(40):  # push the put down the tree
            db.put(f"pad{i:03d}".encode(), b"x")
        db.delete(b"victim")
        for i in range(40, 80):
            db.put(f"pad{i:03d}".encode(), b"x")
        db.flush()
        db.compact_all()
        assert db.get(b"victim") is None
        # And the tombstone is not resurrected by further compactions.
        for i in range(80, 160):
            db.put(f"pad{i:03d}".encode(), b"x")
        db.flush()
        db.compact_all()
        assert db.get(b"victim") is None

    def test_no_tombstones_on_bottom_level(self):
        db = self._db()
        for i in range(60):
            db.put(f"k{i:03d}".encode(), b"v")
            if i % 3 == 0:
                db.delete(f"k{i:03d}".encode())
        db.flush()
        db.compact_all()
        bottom = db.manifest.num_levels - 1
        for sst in db.manifest.level(bottom):
            for _key, value in sst.iter_entries():
                assert value != TOMBSTONE

    def test_compaction_consumes_fresh_ids(self):
        """Every compaction output mints a new ID — the reason real
        deployments burn IDs much faster than live-file counts."""
        db = self._db()
        for i in range(200):
            db.put(f"k{i % 50:03d}".encode(), b"v")
        db.flush()
        assigned = len(db.assigned_file_ids())
        live = db.manifest.file_count()
        assert assigned > live

    def test_cache_evicted_for_dropped_files(self):
        db = self._db()
        for i in range(100):
            db.put(f"k{i % 30:03d}".encode(), b"v")
        db.flush()
        for i in range(30):
            db.get(f"k{i:03d}".encode())  # warm the cache
        before = len(db.cache)
        for i in range(200):
            db.put(f"k{i % 30:03d}".encode(), b"w")
        db.flush()
        db.compact_all()
        # Dropped files' blocks must have left the cache; the cache may
        # hold newer blocks but not more than capacity.
        assert len(db.cache) <= db.cache.capacity
        live_ids = set(db.live_file_ids())
        for file_id, _block in list(db.cache._blocks):
            assert file_id in live_ids
