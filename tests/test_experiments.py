"""Tests for the experiment framework and the cheap experiments end-to-end.

Experiments with substantial Monte-Carlo budgets (E6, E7, E11, E12) are
exercised by the benchmark harness; here we run the analytic ones in
quick mode and unit-test the framework itself.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    experiment_ids,
    run_experiment,
)
from repro.experiments.framework import (
    Check,
    ExperimentResult,
    geometric_midpoint_crossover,
)

QUICK = ExperimentConfig(quick=True, seed=99)


class TestFramework:
    def _result(self):
        return ExperimentResult(
            experiment_id="T",
            title="test",
            claim="testing",
            columns=["a", "b"],
        )

    def test_ratio_band(self):
        result = self._result()
        result.check_ratio_band("ok", [0.5, 1.0, 1.5], 0.25, 2.0)
        result.check_ratio_band("bad", [0.1, 5.0], 0.25, 2.0)
        assert result.checks[0].passed
        assert not result.checks[1].passed
        assert not result.all_passed

    def test_ratio_band_empty(self):
        result = self._result()
        result.check_ratio_band("none", [float("nan")], 0, 1)
        assert not result.checks[0].passed

    def test_slope(self):
        result = self._result()
        result.check_slope("linear", [1, 2, 4], [3, 6, 12], 1.0, 0.1)
        assert result.checks[0].passed

    def test_dominates(self):
        result = self._result()
        result.check_dominates("dom", [1, 2], [2, 4], slack=1.0)
        result.check_dominates("viol", [3, 2], [2, 4], slack=1.0)
        assert result.checks[0].passed
        assert not result.checks[1].passed

    def test_markdown_rendering(self):
        result = self._result()
        result.rows.append({"a": 1, "b": 0.5, "_hidden": object()})
        result.add_check("c", True, "fine")
        result.notes.append("a note")
        text = result.to_markdown()
        assert "| a | b |" in text
        assert "PASS" in text
        assert "a note" in text
        assert "_hidden" not in text

    def test_config_trials_scaling(self):
        assert ExperimentConfig(quick=False).trials(1000) == 1000
        assert ExperimentConfig(quick=True).trials(1000) == 125
        assert ExperimentConfig(
            quick=False, trials_scale=0.5
        ).trials(1000) == 500
        assert ExperimentConfig(quick=True).trials(10) == 50  # floor

    def test_crossover_detection(self):
        xs = [1, 2, 4, 8]
        a = [1, 2, 4, 8]
        b = [5, 5, 5, 5]
        crossing = geometric_midpoint_crossover(xs, a, b)
        assert crossing is not None
        assert 2 < crossing < 8

    def test_crossover_none(self):
        assert geometric_midpoint_crossover(
            [1, 2], [1, 1], [5, 5]
        ) is None


class TestRegistry:
    def test_all_ids_present(self):
        assert experiment_ids() == [
            f"E{i}" for i in range(1, 13)
        ] + ["A1", "A2"]

    def test_unknown_id(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_experiment("E99", QUICK)

    def test_case_insensitive(self):
        result = run_experiment("e4", QUICK)
        assert result.experiment_id == "E4"


@pytest.mark.parametrize("eid", ["E4", "E8", "E9"])
def test_analytic_experiments_pass_quick(eid):
    """The pure-closed-form experiments are cheap enough for the suite."""
    result = run_experiment(eid, QUICK)
    assert result.rows, f"{eid} produced no table"
    failed = [check for check in result.checks if not check.passed]
    assert not failed, f"{eid} failed: {[str(c) for c in failed]}"


def test_e5_optimality_quick():
    result = run_experiment("E5", QUICK)
    assert result.all_passed, [str(c) for c in result.checks if not c.passed]


def test_e10_adaptive_competitive_quick():
    result = run_experiment("E10", QUICK)
    assert result.all_passed, [str(c) for c in result.checks if not c.passed]
