"""The elastic-serving stack: deterministic arrival processes, the SLO
autoscaler's control loop (scale-up, hint-safe scale-down, shedding),
and the workers-invariance / same-seed identity contracts."""

import pytest

from repro.distributed import Autoscaler, AutoscalerConfig, ClusterSimulator
from repro.errors import ConfigurationError, ProfileError
from repro.kvstore.options import Options
from repro.workloads.demand import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    make_arrival,
)
from repro.workloads.driver import (
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
)
from repro.workloads.ycsb import WorkloadSpec

SEED = 20230414


def small_options():
    return Options(memtable_entries=32, block_entries=8)


# -- arrival processes -------------------------------------------------------


class TestArrivalProcess:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_rate_is_pure_and_order_invariant(self, kind):
        process = make_arrival(kind, 1000.0)
        ticks = [1, 7, 500, 1500, 2500, 10_000]
        forward = [process.rate(SEED, t) for t in ticks]
        backward = [process.rate(SEED, t) for t in reversed(ticks)]
        assert forward == list(reversed(backward))
        # A fresh instance with identical knobs agrees bit-for-bit.
        again = make_arrival(kind, 1000.0)
        assert [again.rate(SEED, t) for t in ticks] == forward

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_rate_is_positive(self, kind):
        process = make_arrival(kind, 500.0)
        assert all(
            process.rate(SEED, t) > 0 for t in range(1, 3000, 97)
        )

    def test_static_is_flat(self):
        process = make_arrival("static", 750.0)
        assert {process.rate(SEED, t) for t in (1, 100, 9999)} == {750.0}

    def test_flash_raises_demand_inside_the_window(self):
        process = make_arrival(
            "flash", 1000.0, flash_at=100, flash_ticks=50, peak=4.0
        )
        before = process.rate(SEED, 99)
        inside = process.rate(SEED, 125)
        after = process.rate(SEED, 151)
        assert before == after == 1000.0
        assert inside == 4000.0

    def test_diurnal_oscillates_and_differs_by_seed_phase(self):
        process = make_arrival(
            "diurnal", 1000.0, period=100, amplitude=0.5
        )
        rates = [process.rate(SEED, t) for t in range(1, 101)]
        assert max(rates) > 1200.0
        assert min(rates) < 800.0

    def test_poisson_bursts_are_seed_deterministic(self):
        process = make_arrival(
            "poisson", 1000.0, burst_prob=0.01, burst_ticks=20, peak=3.0
        )
        rates = [process.rate(SEED, t) for t in range(1, 5000)]
        assert any(r > 1000.0 for r in rates), "no burst in 5000 ticks"
        assert rates == [process.rate(SEED, t) for t in range(1, 5000)]

    def test_tick_must_be_positive(self):
        with pytest.raises(ProfileError):
            ArrivalProcess().rate(SEED, 0)

    def test_unknown_kind_and_knob_are_rejected(self):
        with pytest.raises(ProfileError):
            make_arrival("weekly", 1000.0)
        with pytest.raises(ProfileError):
            make_arrival("flash", 1000.0, no_such_knob=3)

    def test_bad_shapes_are_rejected(self):
        with pytest.raises(ProfileError):
            ArrivalProcess(base_rate=0.0)
        with pytest.raises(ProfileError):
            ArrivalProcess(kind="diurnal", amplitude=1.0)
        with pytest.raises(ProfileError):
            ArrivalProcess(kind="flash", peak=0.5)


# -- config validation -------------------------------------------------------


class TestAutoscalerConfig:
    def test_defaults_validate(self):
        config = AutoscalerConfig()
        assert config.to_dict()["slo_p99_ms"] == 20.0

    def test_shed_threshold_must_cover_the_slo(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(slo_p99_ms=50.0, shed_after_ms=20.0)

    def test_node_bounds_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_nodes=5, max_nodes=2)

    def test_idle_floor_below_target_utilization(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(idle_utilization=0.8, target_utilization=0.7)

    def test_enabled_scaling_needs_a_scalable_target(self):
        from repro.kvstore.db import MiniRocks

        store = MiniRocks(small_options())
        with pytest.raises(ConfigurationError):
            Autoscaler(store, AutoscalerConfig(enabled=True), seed=SEED)
        # Monitor-only accounting runs on any target.
        Autoscaler(store, AutoscalerConfig(enabled=False), seed=SEED)


# -- the control loop, driven directly ---------------------------------------


def _flash_config(**overrides):
    base = dict(
        arrival=ArrivalProcess(
            kind="flash",
            base_rate=500.0,
            flash_at=200,
            flash_ticks=600,
            peak=6.0,
        ),
        slo_p99_ms=20.0,
        min_nodes=1,
        max_nodes=6,
        node_capacity=1000.0,
        check_every=50,
        breach_checks=2,
        idle_checks=3,
        idle_utilization=0.35,
        shed_after_ms=80.0,
        enabled=True,
    )
    base.update(overrides)
    return AutoscalerConfig(**base)


def _drive(scaler, ticks, phase="measured"):
    for tick in range(1, ticks + 1):
        scaler.observe_op(tick, phase)
        scaler.on_tick(tick)


class TestControlLoop:
    def test_scales_up_on_sustained_breach(self):
        sim = ClusterSimulator(2, small_options, seed=SEED)
        scaler = Autoscaler(sim, _flash_config(), seed=SEED)
        _drive(scaler, 800)
        adds = [e for e in scaler.events if e.action == "add"]
        assert adds, "flash crowd never triggered a scale-up"
        assert len(sim.live_nodes()) > 2
        assert len(sim.live_nodes()) <= 6

    def test_scales_down_when_idle_but_respects_min_nodes(self):
        sim = ClusterSimulator(4, small_options, seed=SEED)
        config = _flash_config(
            arrival=ArrivalProcess(kind="static", base_rate=200.0),
            min_nodes=2,
        )
        scaler = Autoscaler(sim, config, seed=SEED)
        _drive(scaler, 1500)
        removes = [
            e for e in scaler.events if e.action == "remove"
        ]
        assert removes, "an over-provisioned fleet never shrank"
        assert len(sim.live_nodes()) == 2  # floored at min_nodes
        # Decommissioned nodes are dead, not vanished.
        assert sim.report().dead_nodes == len(removes)

    def test_scale_down_never_breaks_replication(self):
        sim = ClusterSimulator(
            4, small_options, seed=SEED, replication_factor=3
        )
        config = _flash_config(
            arrival=ArrivalProcess(kind="static", base_rate=100.0),
            min_nodes=1,  # the controller may want 1...
        )
        scaler = Autoscaler(sim, config, seed=SEED)
        for key in range(50):
            sim.put(b"k%d" % key, b"v%d" % key)
        _drive(scaler, 2000)
        # ...but the cluster refuses to drop below RF live nodes.
        assert len(sim.live_nodes()) >= 3
        for key in range(50):
            assert sim.get(b"k%d" % key) == b"v%d" % key

    def test_sheds_when_pinned_at_max_nodes(self):
        sim = ClusterSimulator(1, small_options, seed=SEED)
        config = _flash_config(
            arrival=ArrivalProcess(kind="static", base_rate=5000.0),
            max_nodes=2,
        )
        scaler = Autoscaler(sim, config, seed=SEED)
        _drive(scaler, 600)
        assert len(sim.live_nodes()) == 2
        assert scaler.shed_ops > 0
        # A shed measured op is an SLO violation from the client side.
        assert scaler.slo_violations >= scaler.shed_ops
        assert scaler.slo_violation_fraction > 0.5

    def test_load_phase_observes_but_never_sheds(self):
        sim = ClusterSimulator(1, small_options, seed=SEED)
        config = _flash_config(
            arrival=ArrivalProcess(kind="static", base_rate=50_000.0),
            enabled=False,
        )
        scaler = Autoscaler(sim, config, seed=SEED)
        assert all(
            scaler.observe_op(tick, "load") for tick in range(1, 200)
        )
        assert scaler.shed_ops == 0
        assert scaler.measured_ops == 0

    def test_schedule_fingerprint_tracks_events(self):
        sim = ClusterSimulator(2, small_options, seed=SEED)
        scaler = Autoscaler(sim, _flash_config(), seed=SEED)
        empty = scaler.schedule_fingerprint()
        _drive(scaler, 800)
        assert scaler.events
        assert scaler.schedule_fingerprint() != empty
        summary = scaler.summary()
        assert summary["scale_events"] == [
            e.to_dict() for e in scaler.events
        ]


# -- decommission drain safety -----------------------------------------------


class TestDecommission:
    def test_keys_stay_readable_through_a_drain(self):
        sim = ClusterSimulator(
            4, small_options, seed=SEED, replication_factor=2
        )
        keys = [b"key-%d" % i for i in range(80)]
        for key in keys:
            sim.put(key, b"v:" + key)
        leaver = sim.nodes[1]
        sim.decommission(leaver)
        assert not leaver.alive
        for key in keys:
            assert sim.get(key) == b"v:" + key
        assert ("decommission", leaver.name) in [
            event[:2] for event in sim.fault_events
        ]

    def test_refuses_dead_nodes_and_rf_violations(self):
        sim = ClusterSimulator(
            3, small_options, seed=SEED, replication_factor=3
        )
        with pytest.raises(ConfigurationError):
            sim.decommission(0)  # would leave 2 < RF=3 live
        sim2 = ClusterSimulator(3, small_options, seed=SEED)
        sim2.kill(1)
        with pytest.raises(ConfigurationError):
            sim2.decommission(1)

    def test_pending_hints_for_the_leaver_are_rehomed(self):
        sim = ClusterSimulator(
            4,
            small_options,
            seed=SEED,
            replication_factor=2,
            write_quorum=1,
            read_quorum=1,
        )
        keys = [b"hinted-%d" % i for i in range(60)]
        sim.kill(2)
        for key in keys:
            sim.put(key, b"v:" + key)  # hints queue for node 2
        sim.recover(2)
        # Replay left node 2 current; now drain it away. Every write
        # must remain readable through the remaining fleet.
        sim.decommission(2)
        for key in keys:
            assert sim.get(key) == b"v:" + key


# -- driver integration: the identity contracts ------------------------------


def _driver_config(workers):
    ops = 1200
    records = 300
    return DriverConfig(
        spec=WorkloadSpec(
            workload="a",
            record_count=records,
            operation_count=ops,
            value_size=24,
        ),
        shards=2,
        workers=workers,
        seed=SEED,
        autoscaler=AutoscalerConfig(
            arrival=ArrivalProcess(
                kind="flash",
                base_rate=300.0,
                flash_at=records + ops // 4,
                flash_ticks=ops // 2,
                peak=6.0,
            ),
            slo_p99_ms=20.0,
            min_nodes=1,
            max_nodes=6,
            node_capacity=600.0,
            check_every=60,
            breach_checks=2,
            idle_checks=3,
            idle_utilization=0.35,
            shed_after_ms=80.0,
            enabled=True,
        ),
    )


def _run(workers):
    return WorkloadDriver(
        cluster_target_factory(2, small_options),
        _driver_config(workers),
        collect=flush_and_report,
    ).run()


class TestDriverIntegration:
    def test_same_seed_runs_are_bit_identical(self):
        first = _run(workers=1)
        second = _run(workers=1)
        assert first.fingerprint == second.fingerprint
        assert first.elasticity == second.elasticity
        assert first.elasticity["scale_events"], "no scaling happened"

    def test_workers_split_cannot_change_the_story(self):
        serial = _run(workers=1)
        parallel = _run(workers=2)
        assert serial.fingerprint == parallel.fingerprint
        assert (
            serial.elasticity["schedule_fingerprint"]
            == parallel.elasticity["schedule_fingerprint"]
        )
        assert (
            serial.elasticity["scale_events"]
            == parallel.elasticity["scale_events"]
        )
        assert serial.shed_ops == parallel.shed_ops

    def test_result_document_carries_the_elasticity_block(self):
        result = _run(workers=1)
        payload = result.to_dict()
        assert payload["config"]["autoscaler"]["arrival"]["kind"] == (
            "flash"
        )
        block = payload["elasticity"]
        assert block["enabled"] is True
        assert block["measured_ops"] > 0
        assert 0.0 <= block["slo_violation_fraction"] <= 1.0
        assert payload["shed_ops"] == block["shed_ops"]
        assert block["shards"], "per-shard summaries missing"

    def test_monitor_only_never_scales(self):
        config = _driver_config(workers=1)
        monitor = DriverConfig(
            spec=config.spec,
            shards=config.shards,
            workers=1,
            seed=config.seed,
            autoscaler=AutoscalerConfig(
                arrival=config.autoscaler.arrival,
                slo_p99_ms=20.0,
                node_capacity=600.0,
                check_every=60,
                shed_after_ms=80.0,
                enabled=False,
            ),
        )
        result = WorkloadDriver(
            cluster_target_factory(2, small_options),
            monitor,
            collect=flush_and_report,
        ).run()
        assert result.elasticity["scale_events"] == []
        assert result.elasticity["enabled"] is False
