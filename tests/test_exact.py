"""Unit tests for repro.analysis.exact beyond the brute-force oracle."""

from fractions import Fraction

import pytest

from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    cluster_pairwise_collision,
    exact_collision_probability,
    random_collision_probability,
    skew_aware_pair_collision,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_demand_beyond_universe(self):
        with pytest.raises(ConfigurationError):
            cluster_collision_probability(4, DemandProfile.of(5, 1))

    def test_bins_k_out_of_range(self):
        with pytest.raises(ConfigurationError):
            bins_collision_probability(8, 9, DemandProfile.of(1, 1))

    def test_bins_two_overflowing_instances_certain_collision(self):
        # m=7, k=2 -> 3 bins, capacity 6; two demands of 7 overflow.
        assert (
            bins_collision_probability(7, 2, DemandProfile.of(7, 7)) == 1
        )

    def test_bins_single_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            bins_collision_probability(7, 2, DemandProfile.of(7, 1))

    def test_bins_star_demand_beyond_schedule(self):
        with pytest.raises(ConfigurationError):
            bins_star_collision_probability(16, DemandProfile.of(100, 1))


class TestClusterPairwise:
    def test_formula(self):
        assert cluster_pairwise_collision(100, 3, 5) == Fraction(7, 100)

    def test_clamped_at_one(self):
        assert cluster_pairwise_collision(5, 4, 4) == 1

    def test_pair_profile_consistency(self):
        """For n=2 the pairwise event IS the collision event."""
        for m, a, b in [(50, 4, 9), (30, 1, 1), (64, 10, 3)]:
            assert cluster_collision_probability(
                m, DemandProfile.of(a, b)
            ) == cluster_pairwise_collision(m, a, b)


class TestDispatch:
    def test_known_specs(self):
        profile = DemandProfile.of(2, 3)
        m = 64
        assert exact_collision_probability(
            "random", m, profile
        ) == random_collision_probability(m, profile)
        assert exact_collision_probability(
            "cluster", m, profile
        ) == cluster_collision_probability(m, profile)
        assert exact_collision_probability(
            "bins:4", m, profile
        ) == bins_collision_probability(m, 4, profile)
        assert exact_collision_probability(
            "bins", m, profile, k=4
        ) == bins_collision_probability(m, 4, profile)
        assert exact_collision_probability(
            "bins*", m, profile
        ) == bins_star_collision_probability(m, profile)

    def test_no_closed_form(self):
        with pytest.raises(ConfigurationError):
            exact_collision_probability(
                "cluster*", 64, DemandProfile.of(2, 3)
            )


class TestMonotonicity:
    """Structural sanity: more demand can only hurt."""

    def test_cluster_monotone_in_demand(self):
        m = 1 << 12
        previous = Fraction(0)
        for d in (1, 2, 8, 32, 128):
            current = cluster_collision_probability(
                m, DemandProfile.of(d, d)
            )
            assert current >= previous
            previous = current

    def test_random_monotone_in_instances(self):
        m = 1 << 12
        previous = Fraction(0)
        for n in (2, 3, 5, 9):
            current = random_collision_probability(
                m, DemandProfile.uniform(n, 8)
            )
            assert current >= previous
            previous = current

    def test_bins_star_rounding_invariance(self):
        """Lemma 19: Bins* only sees the rounded profile."""
        m = 1 << 14
        rough = DemandProfile.of(9, 70, 3)
        rounded = DemandProfile.of(8, 64, 2)  # powers of two below
        assert bins_star_collision_probability(
            m, rough
        ) == bins_star_collision_probability(m, rounded)


class TestSkewAwarePair:
    def test_theta_i_over_m(self):
        m = 1 << 16
        for i, j in [(1, 1), (4, 64), (16, 1024)]:
            p = skew_aware_pair_collision(m, i, j)
            assert Fraction(i, m) / 2 <= p <= Fraction(4 * i, m)

    def test_degenerate_full_space(self):
        assert skew_aware_pair_collision(4, 2, 4) == Fraction(1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            skew_aware_pair_collision(10, 5, 3)


class TestHugeUniverse:
    """The repro hint: arbitrary-precision m must just work."""

    def test_128_bit_cluster(self):
        m = 1 << 128
        p = cluster_collision_probability(
            m, DemandProfile.uniform(100, 1 << 40)
        )
        # ≈ n²·h/m = 10^4·2^40/2^128 ≈ 2^{-74.7}
        assert Fraction(1, 1 << 80) < p < Fraction(1, 1 << 70)

    def test_128_bit_random_estimate_path(self):
        m = 1 << 128
        p = random_collision_probability(
            m, DemandProfile.uniform(4, 1 << 20)
        )
        assert 0 <= float(p) < 1e-30

    def test_128_bit_bins_star(self):
        m = 1 << 128
        p = bins_star_collision_probability(
            m, DemandProfile.of(1 << 30, 1 << 10)
        )
        assert 0 < float(p) < 1e-20
