"""Gate the gate: the benchmark-regression checker must go red.

Feeds ``benchmarks/compare_baseline.py`` synthetic results with an
injected 50% ops/s slowdown (and a p99 blow-up) and asserts the gate
fails — plus the artifact-validation paths the CI bench loop runs on
every produced JSON.
"""

import importlib.util
import json
import os

import pytest

_MODULE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "compare_baseline.py"
)
_spec = importlib.util.spec_from_file_location(
    "compare_baseline", _MODULE_PATH
)
compare_baseline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_baseline)


BASELINE = {
    "store/a": {"ops_per_second": 100_000.0, "p99_us": 50.0},
    "cluster/a/rf1": {"ops_per_second": 60_000.0, "p99_us": 80.0},
    "cluster/a/rf3": {"ops_per_second": 30_000.0, "p99_us": 160.0},
}


def _scaled(rows, ops_factor=1.0, p99_factor=1.0):
    return {
        key: {
            "ops_per_second": row["ops_per_second"] * ops_factor,
            "p99_us": row["p99_us"] * p99_factor,
        }
        for key, row in rows.items()
    }


class TestCompare:
    def test_identical_results_pass(self):
        assert compare_baseline.compare(BASELINE, BASELINE) == []

    def test_injected_50_percent_slowdown_goes_red(self):
        # The acceptance check from the issue: halve every workload's
        # throughput and the gate must fail (threshold: 30% drop).
        failures = compare_baseline.compare(
            _scaled(BASELINE, ops_factor=0.5), BASELINE
        )
        assert len(failures) == len(BASELINE)
        assert all("ops/s" in failure for failure in failures)

    def test_drift_within_thresholds_passes(self):
        current = _scaled(BASELINE, ops_factor=0.75, p99_factor=1.8)
        assert compare_baseline.compare(current, BASELINE) == []

    def test_p99_blowup_goes_red(self):
        failures = compare_baseline.compare(
            _scaled(BASELINE, p99_factor=2.5), BASELINE
        )
        assert len(failures) == len(BASELINE)
        assert all("p99" in failure for failure in failures)

    def test_improvements_pass(self):
        current = _scaled(BASELINE, ops_factor=3.0, p99_factor=0.2)
        assert compare_baseline.compare(current, BASELINE) == []

    def test_missing_row_goes_red_and_new_row_passes(self):
        current = dict(_scaled(BASELINE))
        del current["cluster/a/rf3"]
        current["cluster/e/rf3"] = {
            "ops_per_second": 1.0, "p99_us": 10_000.0
        }  # not in baseline: ungated until a refresh
        failures = compare_baseline.compare(current, BASELINE)
        assert len(failures) == 1
        assert "cluster/a/rf3" in failures[0]

    def test_custom_thresholds(self):
        current = _scaled(BASELINE, ops_factor=0.85)
        assert compare_baseline.compare(current, BASELINE) == []
        assert compare_baseline.compare(
            current, BASELINE, max_ops_drop=0.10
        )


class TestArtifactPlumbing:
    def _artifact(self, rows):
        return {
            "benchmarks": [
                {
                    "name": f"test[{key}]",
                    "extra_info": {
                        "target": key.split("/")[0],
                        "workload": key.split("/")[1],
                        **(
                            {"replication_factor": int(key.split("/")[2][2:])}
                            if key.count("/") == 2
                            else {}
                        ),
                        **row,
                    },
                }
                for key, row in rows.items()
            ]
        }

    def test_extract_rows_roundtrip(self):
        artifact = self._artifact(BASELINE)
        # A no-throughput row (the bit-identity gate) is skipped.
        artifact["benchmarks"].append(
            {"name": "determinism", "extra_info": {"fingerprint": 7}}
        )
        assert compare_baseline.extract_rows(artifact) == BASELINE

    def test_validate_artifact_failures(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert compare_baseline.validate_artifact(missing)
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert compare_baseline.validate_artifact(str(empty))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert compare_baseline.validate_artifact(str(garbage))
        hollow = tmp_path / "hollow.json"
        hollow.write_text(json.dumps({"benchmarks": []}))
        assert compare_baseline.validate_artifact(str(hollow))
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self._artifact(BASELINE)))
        assert compare_baseline.validate_artifact(str(good)) == []

    def test_main_end_to_end_refresh_then_red_on_slowdown(self, tmp_path):
        results = tmp_path / "bench_kv_workloads.json"
        results.write_text(json.dumps(self._artifact(BASELINE)))
        baseline = tmp_path / "baseline.json"
        assert (
            compare_baseline.main(
                [str(results), "--refresh", "--baseline", str(baseline)]
            )
            == 0
        )
        assert compare_baseline.main(
            [str(results), "--baseline", str(baseline)]
        ) == 0
        slowed = tmp_path / "slowed.json"
        slowed.write_text(
            json.dumps(self._artifact(_scaled(BASELINE, ops_factor=0.5)))
        )
        assert compare_baseline.main(
            [str(slowed), "--baseline", str(baseline)]
        ) == 1
        assert compare_baseline.main([str(slowed), "--validate"]) == 0

    def test_missing_baseline_is_red(self, tmp_path):
        results = tmp_path / "r.json"
        results.write_text(json.dumps(self._artifact(BASELINE)))
        assert compare_baseline.main(
            [str(results), "--baseline", str(tmp_path / "absent.json")]
        ) == 1

    def test_committed_baseline_matches_bench_row_schema(self):
        # The real committed baseline must stay loadable and keyed the
        # way bench_kv_workloads.py emits rows.
        path = os.path.join(
            os.path.dirname(_MODULE_PATH),
            "baselines",
            "bench_kv_workloads.json",
        )
        rows = compare_baseline.load_baseline(path)
        for workload in "abcdef":
            assert f"store/{workload}" in rows
            assert f"cluster/{workload}/rf1" in rows
            assert f"cluster/{workload}/rf3" in rows
        for row in rows.values():
            assert row["ops_per_second"] > 0
            assert row["p99_us"] > 0


@pytest.mark.parametrize("fraction", [0.5])
def test_gate_red_on_injected_slowdown_summary(fraction):
    """Single-line restatement of the acceptance criterion."""
    assert compare_baseline.compare(
        _scaled(BASELINE, ops_factor=fraction), BASELINE
    )
