"""Unit tests for demand sequences, fol(S), and the Φ distribution."""

import random
from fractions import Fraction

import pytest

from repro.adversary.phi import PhiDistribution
from repro.adversary.profiles import DemandProfile
from repro.adversary.semi_adaptive import DemandSequence, FollowerAdversary
from repro.core.cluster import ClusterGenerator
from repro.errors import ConfigurationError, GameError
from repro.simulation.game import Game


class TestDemandSequence:
    def test_valid_sequence(self):
        seq = DemandSequence([0, 0, 1, 0, 2, 1])
        assert seq.num_instances == 3
        assert seq.final_profile().demands == (3, 2, 1)

    def test_activation_order_enforced(self):
        with pytest.raises(GameError):
            DemandSequence([0, 2])  # instance 2 before instance 1

    def test_empty_rejected(self):
        with pytest.raises(GameError):
            DemandSequence([])

    def test_from_profile_sequential(self):
        seq = DemandSequence.from_profile(
            DemandProfile.of(2, 3), order="sequential"
        )
        assert seq.steps == [0, 0, 1, 1, 1]

    def test_from_profile_round_robin(self):
        seq = DemandSequence.from_profile(
            DemandProfile.of(2, 3), order="round_robin"
        )
        assert seq.steps == [0, 1, 0, 1, 1]

    def test_from_profile_preserves_profile(self):
        for order in ("sequential", "round_robin"):
            profile = DemandProfile.of(4, 1, 3)
            seq = DemandSequence.from_profile(profile, order=order)
            assert seq.final_profile() == profile


class TestFollowerAdversary:
    def test_completes_without_collision(self):
        seq = DemandSequence.from_profile(DemandProfile.of(3, 3))
        follower = FollowerAdversary(seq)
        game = Game(
            lambda m, rng: ClusterGenerator(m, rng),
            1 << 24,
            follower,
            seed=5,
            stop_on_collision=False,
        )
        result = game.run()
        assert result.profile.demands == (3, 3)

    def test_stops_at_collision(self):
        seq = DemandSequence.from_profile(
            DemandProfile.of(50, 50), order="round_robin"
        )
        follower = FollowerAdversary(seq)
        game = Game(
            lambda m, rng: ClusterGenerator(m, rng),
            4,  # collision almost immediately
            follower,
            seed=5,
            stop_on_collision=False,
        )
        result = game.run()
        assert result.collided
        assert result.steps < 100

    def test_min_instances_to_stop(self):
        seq = DemandSequence.from_profile(
            DemandProfile.of(10, 10, 10), order="sequential"
        )
        follower = FollowerAdversary(
            seq,
            stop_immediately_on_collision=False,
            min_instances_to_stop=3,
        )
        game = Game(
            lambda m, rng: ClusterGenerator(m, rng),
            4,
            follower,
            seed=5,
            stop_on_collision=False,
        )
        result = game.run()
        assert result.profile.n >= 3 or not result.collided


class TestPhiDistribution:
    def test_k_matches_definition(self):
        # k = floor(log2(m)/2): largest k with 2^(2k) <= m.
        assert PhiDistribution(1 << 10).k == 5
        assert PhiDistribution(1 << 11).k == 5
        assert PhiDistribution(1 << 12).k == 6

    def test_support_profiles_within_sqrt_m(self):
        phi = PhiDistribution(1 << 12)
        for point in phi.support():
            assert max(point.profile.demands) ** 2 <= 1 << 12

    def test_weights_sum_to_one(self):
        phi = PhiDistribution(1 << 10)
        assert sum(p.weight for p in phi.support()) == 1

    def test_normalizer_bounded_by_8(self):
        """The paper: W = Σ 2^(−max(i,j)) ≤ 8."""
        for bits in (4, 10, 16, 24):
            assert PhiDistribution(1 << bits).normalizer <= 8

    def test_weight_formula(self):
        phi = PhiDistribution(1 << 10)
        w = phi.normalizer
        for point in phi.support():
            assert point.weight == Fraction(
                1, 1 << max(point.i, point.j)
            ) / w

    def test_sampling_stays_in_support(self):
        phi = PhiDistribution(1 << 10)
        support = {p.profile.demands for p in phi.support()}
        rng = random.Random(3)
        for _ in range(200):
            assert phi.sample(rng).demands in support

    def test_expectation_exact(self):
        phi = PhiDistribution(1 << 10)
        # E[1] = 1 exactly.
        assert phi.expectation(lambda profile: Fraction(1)) == 1.0

    def test_small_m_rejected(self):
        with pytest.raises(ConfigurationError):
            PhiDistribution(3)
