"""Tests for LSM iterators, external ingestion, and cache-key derivation."""

import random

import pytest

from repro.errors import ConfigurationError, KVStoreError
from repro.idspace.cachekey import (
    CACHE_KEY_BYTES,
    derive_cache_key,
    keys_alias,
    split_cache_key,
)
from repro.kvstore.db import MiniRocks
from repro.kvstore.iterators import LSMIterator, iterate_db, range_count
from repro.kvstore.options import Options


def make_db(**overrides):
    defaults = dict(
        memtable_entries=6,
        block_entries=4,
        level0_file_limit=2,
        id_universe=1 << 32,
    )
    defaults.update(overrides)
    return MiniRocks(Options(**defaults), rng=random.Random(7))


class TestLSMIterator:
    def test_streams_match_scan(self):
        db = make_db()
        reference = {}
        rng = random.Random(11)
        for i in range(300):
            key = f"k{rng.randrange(60):03d}".encode()
            if rng.random() < 0.85:
                value = f"v{i}".encode()
                db.put(key, value)
                reference[key] = value
            else:
                db.delete(key)
                reference.pop(key, None)
        streamed = list(iterate_db(db))
        assert streamed == sorted(reference.items())

    def test_seek_forward(self):
        db = make_db()
        for i in range(20):
            db.put(f"k{i:02d}".encode(), b"v")
        iterator = iterate_db(db)
        iterator.seek(b"k10")
        key, _value = next(iterator)
        assert key == b"k10"

    def test_seek_past_end(self):
        db = make_db()
        db.put(b"a", b"1")
        iterator = iterate_db(db)
        iterator.seek(b"zzz")
        with pytest.raises(StopIteration):
            next(iterator)

    def test_peek_key_includes_tombstones(self):
        db = make_db()
        db.put(b"a", b"1")
        db.delete(b"a")
        iterator = iterate_db(db)
        assert iterator.peek_key() == b"a"  # tombstone visible to peek
        with pytest.raises(StopIteration):
            next(iterator)  # ...but suppressed by iteration

    def test_newest_version_wins_across_sources(self):
        db = make_db(memtable_entries=2)
        db.put(b"k", b"old")
        db.put(b"x", b"pad")  # flush (memtable_entries=2)
        db.put(b"k", b"new")  # memtable
        assert dict(iterate_db(db))[b"k"] == b"new"

    def test_empty_db(self):
        assert list(iterate_db(make_db())) == []

    def test_range_count(self):
        db = make_db()
        for i in range(30):
            db.put(f"k{i:02d}".encode(), b"v")
        db.delete(b"k05")
        assert range_count(db, b"k00", b"k10") == 9
        assert range_count(db, b"k10", b"k10") == 0


class TestIngestExternal:
    def test_ingest_visible_and_gets_fresh_id(self):
        db = make_db()
        before = set(db.assigned_file_ids())
        sst = db.ingest_external(
            [(b"bulk1", b"v1"), (b"bulk2", b"v2")]
        )
        assert db.get(b"bulk1") == b"v1"
        assert sst.file_id not in before
        assert sst.file_id in db.assigned_file_ids()

    def test_ingest_shadows_older_data(self):
        db = make_db()
        db.put(b"k", b"old")
        db.flush()
        db.ingest_external([(b"k", b"ingested")])
        assert db.get(b"k") == b"ingested"

    def test_ingest_unsorted_rejected(self):
        db = make_db()
        with pytest.raises(KVStoreError):
            db.ingest_external([(b"b", b"1"), (b"a", b"2")])

    def test_ingest_empty_rejected(self):
        with pytest.raises(KVStoreError):
            make_db().ingest_external([])


class TestCacheKey:
    def test_roundtrip(self):
        key = derive_cache_key(0xABCDEF, 7)
        assert len(key) == CACHE_KEY_BYTES
        assert split_cache_key(key) == (0xABCDEF, 7)

    def test_truncation_to_96_bits(self):
        wide = (1 << 120) | 42
        assert split_cache_key(derive_cache_key(wide, 0))[0] == (
            wide & ((1 << 96) - 1)
        )

    def test_aliasing(self):
        assert keys_alias(5, 5 + (1 << 96))
        assert not keys_alias(5, 6)
        assert derive_cache_key(5, 3) == derive_cache_key(5 + (1 << 96), 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            derive_cache_key(-1, 0)
        with pytest.raises(ConfigurationError):
            derive_cache_key(1, 1 << 32)
        with pytest.raises(ConfigurationError):
            split_cache_key(b"short")
