"""The runtime determinism sanitizer: repro-library callers trip
``DeterminismViolation`` at the call site, everyone else passes
through, and everything is restored on exit."""

import builtins
import os
import random
import time
import uuid

import pytest

import repro
from repro.devtools.sanitizer import (
    _REPRO_ROOT,
    determinism_sanitizer,
    sanitizer_active,
)
from repro.errors import DeterminismViolation


def _call_as_repro_code(statements, fake_module="clockuser.py"):
    """Exec ``statements`` under a filename inside the repro package,
    so the sanitizer attributes the call to library code."""
    fake_path = os.path.join(_REPRO_ROOT, "simulation", fake_module)
    code = compile(statements, fake_path, "exec")
    namespace = {}
    exec(code, namespace)
    return namespace


BANNED_SNIPPETS = [
    "import time\ntime.time()",
    "import time\ntime.time_ns()",
    "import random\nrandom.random()",
    "import random\nrandom.randint(0, 10)",
    "import random\nrandom.shuffle([1, 2, 3])",
    "import os\nos.urandom(8)",
    "import uuid\nuuid.uuid4()",
    "import uuid\nuuid.uuid1()",
    "hash('key')",
]


@pytest.mark.parametrize("snippet", BANNED_SNIPPETS)
def test_repro_callers_raise_at_the_call_site(snippet):
    with determinism_sanitizer():
        with pytest.raises(DeterminismViolation) as excinfo:
            _call_as_repro_code(snippet)
    # The message points at the offending file/line, not downstream.
    assert "clockuser.py" in str(excinfo.value)


def test_non_repro_callers_pass_through():
    with determinism_sanitizer():
        assert time.time() > 0
        assert time.time_ns() > 0
        assert 0.0 <= random.random() < 1.0
        assert len(os.urandom(4)) == 4
        assert uuid.uuid4().version == 4
        assert isinstance(hash("key"), int)


def test_sanctioned_forms_survive_in_repro_code():
    with determinism_sanitizer():
        namespace = _call_as_repro_code(
            "import random\n"
            "import time\n"
            "rng = random.Random(7)\n"
            "draw = rng.random()\n"
            "t0 = time.perf_counter()\n"
            "tm = time.monotonic()\n"
        )
    assert 0.0 <= namespace["draw"] < 1.0
    assert namespace["t0"] >= 0.0


def test_library_simulation_runs_clean_under_sanitizer():
    # The real seeded stack must never trip the sanitizer: a tiny
    # Monte-Carlo estimate end to end.
    from repro.adversary.profiles import DemandProfile
    from repro.simulation import estimate_collision_probability
    from repro.simulation.batch import ObliviousFactory, SpecFactory

    with determinism_sanitizer():
        estimate = estimate_collision_probability(
            SpecFactory("cluster"),
            1 << 16,
            ObliviousFactory(DemandProfile([4, 4])),
            trials=25,
            seed=9,
        )
    assert 0.0 <= estimate.probability <= 1.0


def test_everything_restored_after_exit():
    originals = (
        time.time,
        time.time_ns,
        random.random,
        os.urandom,
        uuid.uuid4,
        builtins.hash,
    )
    with determinism_sanitizer():
        assert sanitizer_active()
        assert time.time is not originals[0]
    assert not sanitizer_active()
    assert (
        time.time,
        time.time_ns,
        random.random,
        os.urandom,
        uuid.uuid4,
        builtins.hash,
    ) == originals


def test_restores_even_when_the_body_raises():
    original = time.time
    with pytest.raises(RuntimeError):
        with determinism_sanitizer():
            raise RuntimeError("boom")
    assert time.time is original


def test_reentrant_activation_does_not_double_wrap():
    with determinism_sanitizer():
        wrapped = time.time
        with determinism_sanitizer():
            assert time.time is wrapped  # inner pass left it alone
        assert time.time is wrapped  # inner exit didn't unwrap it
        assert sanitizer_active()
    assert not sanitizer_active()


def test_wrappers_are_tagged():
    with determinism_sanitizer():
        assert getattr(time.time, "__repro_sanitized__", False)
        assert getattr(random.random, "__repro_sanitized__", False)
        assert time.time.__wrapped__ is not None


def test_devtools_package_is_exempt():
    # The police are exempt: a caller inside repro/devtools/ passes
    # through (the sanitizer itself must be able to restore/report).
    fake_path = os.path.join(_REPRO_ROOT, "devtools", "probe.py")
    code = compile("import time\nstamp = time.time()", fake_path, "exec")
    with determinism_sanitizer():
        namespace = {}
        exec(code, namespace)
    assert namespace["stamp"] > 0


@pytest.mark.plan
def test_plan_marker_activates_the_fixture():
    """The autouse conftest fixture turns the sanitizer on for every
    plan-marked test (the CI plan lane sets REPRO_SANITIZE=1)."""
    if os.environ.get("REPRO_SANITIZE", "1") == "0":
        pytest.skip("sanitizer disabled via REPRO_SANITIZE=0")
    assert sanitizer_active()
    with pytest.raises(DeterminismViolation):
        _call_as_repro_code("import time\ntime.time()")


def test_unmarked_tests_run_without_the_fixture():
    assert not sanitizer_active()


def test_repro_package_root_points_at_the_real_package():
    assert _REPRO_ROOT == os.path.dirname(
        os.path.abspath(repro.__file__)
    ) + os.sep
