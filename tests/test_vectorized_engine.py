"""The NumPy vectorized trial engine (repro.simulation.vectorized).

Four guarantees are under test:

* **Statistical equivalence** — for every family with a closed form
  (Random, Cluster, Bins(k), Bins*), the ``SimulationPlan(engine="numpy")`` estimate
  agrees with the exact probability of :mod:`repro.analysis.exact`
  within the 95% Wilson CI across a grid of ``(m, profile)`` points;
  Cluster* (no closed form) is checked against the python engine.
* **Determinism** — NumPy-engine estimates are bit-identical at every
  ``workers=`` count (per-trial counter-based streams), and fixed-seed
  regression values pin the exact draws.
* **Dispatch** — workloads the kernels cannot express (non-spec
  factories, out-of-family specs, out-of-regime profiles) run the
  python path unchanged, bit-identical to ``engine="python"``; unknown
  engines are rejected.
* **Seed-derivation parity** — the vectorized SplitMix64 reproduces
  :func:`repro.simulation.seeds.derive_seed` bit for bit, and the
  rejection-sampled uniforms are exact (in-range, unbiased law).
"""

import math
import random

import pytest

numpy = pytest.importorskip("numpy")

from repro.adversary.adaptive import AdaptiveAdversary
from repro.adversary.attacks import (
    ClosestPairAttack,
    GreedyGapAttack,
    RunSaturationAttack,
)
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.core.registry import make_generator
from repro.errors import ConfigurationError
from repro.simulation.batch import AttackFactory, SpecFactory
from repro.simulation.montecarlo import (
    estimate_collision_probability,
    estimate_profile_collision,
)
from repro.simulation.plan import SimulationPlan
from repro.simulation.seeds import derive_seed
from repro.simulation.vectorized import (
    NUMPY_SEED_LABEL,
    _Streams,
    plan_profile,
    trial_keys,
)


def _exact_probability(spec: str, m: int, profile: DemandProfile) -> float:
    name = spec.split(":")[0]
    if name == "random":
        return float(random_collision_probability(m, profile))
    if name == "cluster":
        return float(cluster_collision_probability(m, profile))
    if name == "bins":
        k = int(spec.split(":")[1])
        return float(bins_collision_probability(m, k, profile))
    return float(bins_star_collision_probability(m, profile))


# ---------------------------------------------------------------------------
# Seed-derivation parity and exact uniform sampling
# ---------------------------------------------------------------------------


def test_trial_keys_match_scalar_derive_seed():
    keys = trial_keys(20230414, numpy.arange(64))
    expected = [
        derive_seed(20230414, trial, NUMPY_SEED_LABEL) for trial in range(64)
    ]
    assert [int(key) for key in keys] == expected


def test_trial_keys_depend_on_seed():
    a = trial_keys(1, numpy.arange(8))
    b = trial_keys(2, numpy.arange(8))
    assert not (a == b).any()


def test_uniform_in_range_and_roughly_uniform():
    streams = _Streams(trial_keys(7, numpy.arange(2000)))
    # 5 does not divide 2**64, so this exercises the rejection path.
    values = streams.uniform(5, 10)
    assert values.min() >= 0 and values.max() < 5
    counts = numpy.bincount(values.ravel(), minlength=5)
    expected = values.size / 5
    for count in counts:
        assert abs(count - expected) < 5 * math.sqrt(expected)


def test_distinct_uniform_has_no_row_duplicates():
    # size² <= 4·universe — the densest regime the planner admits.
    streams = _Streams(trial_keys(11, numpy.arange(500)))
    values = streams.distinct_uniform(16, 8)
    for row in values:
        assert len(set(int(v) for v in row)) == 8


# ---------------------------------------------------------------------------
# Statistical equivalence against the exact closed forms
# ---------------------------------------------------------------------------

#: The equivalence grid: every vectorized family with a closed form,
#: across universes and profile shapes. Seeds are fixed (one block per
#: grid point), making the suite deterministic; the block was validated
#: to put every point well inside its CI (worst |z| ≈ 1.2), so the
#: checks have slack against benign draw-order changes while still
#: catching any systematic kernel bias.
EQUIVALENCE_GRID = [
    ("random", 65536, (64, 64, 64, 64)),
    ("random", 65536, (100, 50, 25)),
    ("random", 1 << 20, (128,) * 8),
    ("cluster", 4096, (64, 64)),
    ("cluster", 8192, (32,) * 8),
    ("cluster", 16384, (512, 256, 128, 64)),
    ("bins:16", 65536, (64,) * 8),
    ("bins:4", 16384, (64, 32, 16)),
    ("bins:256", 1 << 20, (1024, 512)),
    ("bins_star", 65536, (64,) * 8),
    ("bins_star", 4096, (256, 128, 4, 2)),
]


@pytest.mark.parametrize(
    "index,spec,m,demands",
    [
        (index, spec, m, demands)
        for index, (spec, m, demands) in enumerate(EQUIVALENCE_GRID)
    ],
    ids=[f"{spec}-m{m}" for spec, m, _demands in EQUIVALENCE_GRID],
)
def test_numpy_engine_matches_exact_within_wilson_ci(
    index, spec, m, demands
):
    profile = DemandProfile(demands)
    estimate = estimate_profile_collision(
        SpecFactory(spec),
        m,
        profile,
        trials=4000,
        seed=2_000_107 + 7919 * index,
        plan=SimulationPlan(engine="numpy"),
    )
    exact = _exact_probability(spec, m, profile)
    assert estimate.ci_low <= exact <= estimate.ci_high, (
        f"{spec} on m={m}, D={demands}: exact {exact:.5f} outside "
        f"the 95% CI of {estimate}"
    )


def test_cluster_star_engines_statistically_agree():
    """No closed form for Cluster*: the two engines must cross-validate."""
    profile = DemandProfile((100, 80, 60, 40))
    python_est = estimate_profile_collision(
        SpecFactory("cluster_star"), 16384, profile,
        trials=1500, seed=3, plan=SimulationPlan(engine="python"),
    )
    numpy_est = estimate_profile_collision(
        SpecFactory("cluster_star"), 16384, profile,
        trials=8000, seed=3, plan=SimulationPlan(engine="numpy"),
    )
    assert (
        numpy_est.ci_low <= python_est.ci_high
        and python_est.ci_low <= numpy_est.ci_high
    ), f"engine CIs disjoint: python {python_est} vs numpy {numpy_est}"


# ---------------------------------------------------------------------------
# Determinism: regressions and worker independence
# ---------------------------------------------------------------------------

#: (spec, m, demands, successes) at seed=123, trials=2000. These pin
#: the engine's exact draw sequence: any change to the kernels' stream
#: consumption is a new RNG universe and must be called out loudly.
REGRESSION_GOLDENS = [
    ("random", 65536, (64, 64, 64, 64), 642),
    ("cluster", 8192, (32,) * 8, 353),
    ("bins:16", 65536, (64,) * 8, 195),
    ("bins_star", 4096, (256, 128, 4, 2), 1492),
    ("cluster_star", 16384, (100, 80, 60, 40), 550),
]


@pytest.mark.parametrize(
    "spec,m,demands,successes",
    REGRESSION_GOLDENS,
    ids=[spec for spec, _m, _d, _s in REGRESSION_GOLDENS],
)
def test_numpy_engine_fixed_seed_regression(spec, m, demands, successes):
    estimate = estimate_profile_collision(
        SpecFactory(spec), m, DemandProfile(demands),
        trials=2000, seed=123, plan=SimulationPlan(engine="numpy"),
    )
    assert estimate.successes == successes


def test_numpy_engine_bit_identical_across_workers():
    profile = DemandProfile((32,) * 8)
    serial = estimate_profile_collision(
        SpecFactory("cluster"), 8192, profile,
        trials=900, seed=11, plan=SimulationPlan(engine="numpy"),
    )
    sharded = estimate_profile_collision(
        SpecFactory("cluster"), 8192, profile,
        trials=900, seed=11,
        plan=SimulationPlan(engine="numpy", workers=3),
    )
    assert serial == sharded


def test_numpy_engine_independent_of_internal_chunking(monkeypatch):
    import repro.simulation.vectorized as vectorized

    profile = DemandProfile((64, 64, 64))
    plan = plan_profile("random", 65536, profile)
    full = plan.count_collisions(5, 0, 1, 1200)
    monkeypatch.setattr(vectorized, "_CHUNK_ELEMENTS", 1 << 10)
    assert plan.count_collisions(5, 0, 1, 1200) == full


# ---------------------------------------------------------------------------
# Dispatch: gates, fallbacks, validation
# ---------------------------------------------------------------------------


def test_plan_profile_accepts_all_vectorized_families():
    profile = DemandProfile((16, 8))
    for spec, kind in [
        ("random", "subsets"),
        ("bins:4", "subsets"),
        ("cluster", "cluster"),
        ("bins_star", "bins_star"),
        ("bins*", "bins_star"),
        ("cluster_star", "cluster_star"),
        ("cluster*", "cluster_star"),
    ]:
        plan = plan_profile(spec, 4096, profile)
        assert plan is not None and plan.kind == kind, spec


def test_plan_profile_rejects_out_of_scope_workloads():
    profile = DemandProfile((16, 8))
    # No closed-form kernel for SkewAware; parameterized stars are not
    # expressible through the registry spec grammar either.
    assert plan_profile("skew:8:16", 4096, profile) is None
    # Universe beyond uint64 headroom.
    assert plan_profile("random", 1 << 127, profile) is None
    # Demand past the Bins* schedule (2^C - 1).
    assert plan_profile("bins_star", 4096, DemandProfile((4096,))) is None
    # A demand overflowing the binned region of Bins(k).
    assert plan_profile("bins:3", 8, DemandProfile((7, 1))) is None
    # Random in the dense regime (rejection acceptance too low).
    assert plan_profile("random", 64, DemandProfile((40, 2))) is None
    # Cluster* past the paper's k·2^k <= m regime.
    assert plan_profile("cluster_star", 64, DemandProfile((40, 2))) is None


def test_numpy_engine_falls_back_bit_identically_for_plain_factories():
    """No SpecFactory => no plan: both engines run the same game loop."""
    profile = DemandProfile((24, 24, 24))

    def factory(m, rng):
        return make_generator("cluster", m, rng)

    results = [
        estimate_profile_collision(
            factory, 4096, profile, trials=300, seed=9,
            plan=SimulationPlan(engine=engine),
        )
        for engine in ("python", "numpy")
    ]
    assert results[0] == results[1]


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError):
        estimate_profile_collision(
            SpecFactory("cluster"), 4096, DemandProfile((8, 8)),
            trials=10, plan=SimulationPlan(engine="turbo"),
        )


# ---------------------------------------------------------------------------
# AttackFactory rng threading (satellite of the engine PR)
# ---------------------------------------------------------------------------


class _RecordingAttack(AdaptiveAdversary):
    """Accepts rng (via the base class) and records what it got."""

    def exploit(self, view):
        return None


class _LegacyAttack:
    """An attack signature without rng: must keep constructing."""

    def __init__(self, n, d):
        self.n, self.d = n, d

    def begin(self, view):
        pass

    def next_request(self, view):
        return None


def test_attack_factory_passes_derived_rng():
    rng = random.Random(42)
    attack = AttackFactory(_RecordingAttack, n=2, d=4)(rng)
    assert attack.rng is rng
    for attack_cls in (
        ClosestPairAttack, GreedyGapAttack, RunSaturationAttack,
    ):
        attack = AttackFactory(attack_cls, n=2, d=4)(rng)
        assert attack.rng is rng


def test_attack_factory_explicit_rng_kwarg_wins():
    explicit = random.Random(1)
    attack = AttackFactory(_RecordingAttack, n=2, d=4, rng=explicit)(
        random.Random(2)
    )
    assert attack.rng is explicit


def test_attack_factory_tolerates_rng_free_signatures():
    attack = AttackFactory(_LegacyAttack, n=2, d=4)(random.Random(3))
    assert (attack.n, attack.d) == (2, 4)


def test_attack_estimates_unchanged_by_rng_threading():
    """The shipped attacks are deterministic: threading the per-trial
    rng through them must not move any estimate."""
    estimate = estimate_collision_probability(
        SpecFactory("cluster"), 1 << 14,
        AttackFactory(ClosestPairAttack, n=4, d=64),
        trials=200, seed=5,
    )
    assert estimate.trials == 200
    assert 0.0 <= estimate.probability <= 1.0
