"""Cross-cutting consistency: exact values vs the paper's bound formulas.

Property-based checks that the lemma chain of §7 holds numerically on
random profiles: Lemma 20's rank lower bound sits below the certified
p* bounds, which sit below every algorithm, and Bins*'s exact value
respects Lemma 22's log-m envelope.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.profiles import DemandProfile
from repro.analysis.bounds import (
    lemma20_rank_lower_bound,
    lemma22_bins_star_upper,
    theorem1_cluster,
)
from repro.analysis.exact import (
    bins_star_collision_probability,
    cluster_collision_probability,
)
from repro.analysis.optimal import p_star_lower_bound, p_star_upper_bound
from repro.cli import main

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

M = 1 << 16

profiles = st.lists(
    st.integers(1, 64), min_size=2, max_size=6
).map(lambda demands: DemandProfile(tuple(demands)))


@SLOW
@given(profiles)
def test_p_star_sandwich_on_random_profiles(profile):
    low = p_star_lower_bound(M, profile)
    high = p_star_upper_bound(M, profile)
    assert 0 < low <= high <= 1


@SLOW
@given(profiles)
def test_lemma20_value_below_certified_upper(profile):
    """Lemma 20 is an Ω-bound on p*(D⁻) ≤ p*(D): its raw value can carry
    at most a constant above the certified achievable probability."""
    ranks = profile.rounded().rank_distribution()
    bound = lemma20_rank_lower_bound(M, ranks)
    achievable = float(p_star_upper_bound(M, profile))
    assert bound <= 8 * achievable + 1e-12


@SLOW
@given(profiles)
def test_bins_star_exact_below_lemma22_envelope(profile):
    """Lemma 22: p_Bins*(D⁻) = O((log m/m)·Σ C(s_i,2)2^i).

    The proof folds cross-rank collisions into the same-rank sum via
    the recursion X ≤ O(Σ) + (5/6)X, so the hidden constant is ≈ 6×
    the per-term constants — small mixed-rank profiles genuinely sit
    several times above the naive envelope. Constant 32 is faithful.
    """
    exact = float(bins_star_collision_probability(M, profile))
    ranks = profile.rounded().rank_distribution()
    envelope = lemma22_bins_star_upper(M, ranks)
    assert exact <= 32 * envelope + 1e-12


@SLOW
@given(profiles)
def test_cluster_exact_below_theorem1_envelope(profile):
    exact = float(cluster_collision_probability(M, profile))
    assert exact <= 2 * theorem1_cluster(M, profile) + 1e-12


@SLOW
@given(profiles)
def test_p_star_monotone_in_m(profile):
    """A bigger universe can only help the optimal algorithm."""
    small = p_star_upper_bound(M, profile)
    large = p_star_upper_bound(M * 16, profile)
    assert large <= small + Fraction(1, 10**9)


def test_compare_cli(capsys):
    assert main(
        ["compare", "--m", str(1 << 64), "--n", "100", "--h", "100000"]
    ) == 0
    out = capsys.readouterr().out
    assert "cluster" in out and "random" in out and "deployment" in out
