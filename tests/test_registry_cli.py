"""Unit tests for the algorithm registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core.bins import BinsGenerator
from repro.core.cluster import ClusterGenerator
from repro.core.registry import (
    available_algorithms,
    make_generator,
    register,
)
from repro.core.skew_aware import SkewAwareGenerator
from repro.errors import ConfigurationError
from repro.simulation.seeds import rng_for


class TestRegistry:
    def test_known_names_present(self):
        names = available_algorithms()
        for expected in (
            "random", "cluster", "bins", "cluster_star", "bins_star",
            "skew",
        ):
            assert expected in names

    def test_simple_spec(self):
        generator = make_generator("cluster", 100, rng_for(1))
        assert isinstance(generator, ClusterGenerator)

    def test_parameterized_spec(self):
        generator = make_generator("bins:8", 128, rng_for(1))
        assert isinstance(generator, BinsGenerator)
        assert generator.k == 8

    def test_two_parameter_spec(self):
        generator = make_generator("skew:4:32", 1024, rng_for(1))
        assert isinstance(generator, SkewAwareGenerator)
        assert (generator.i, generator.j) == (4, 32)

    def test_star_aliases(self):
        assert make_generator("cluster*", 64, rng_for(1)).name == (
            "cluster_star"
        )
        assert make_generator("bins*", 64, rng_for(1)).name == "bins_star"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_generator("nonsense", 100)

    def test_bad_parameter(self):
        with pytest.raises(ConfigurationError):
            make_generator("bins:huge", 100)

    def test_register_rejects_colon(self):
        with pytest.raises(ConfigurationError):
            register("my:thing", ClusterGenerator)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "cluster", "--count", "3"])
        assert args.command == "generate"

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out and "E12" in out

    def test_generate(self, capsys):
        assert main(
            ["generate", "cluster", "--m", "1000", "--count", "4",
             "--seed", "3"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        values = [int(line) for line in lines]
        assert all(0 <= v < 1000 for v in values)

    def test_generate_hex(self, capsys):
        assert main(
            ["generate", "random", "--m", str(1 << 32), "--count", "2",
             "--hex"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(len(line) == 8 for line in lines)

    def test_analyze(self, capsys):
        assert main(
            ["analyze", "cluster", "4,4", "--m", "1024"]
        ) == 0
        out = capsys.readouterr().out
        assert "p_cluster" in out
        assert "0.0068" in out  # (4+4-1)/1024

    def test_analyze_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["analyze", "wat", "4,4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "cluster", "16,16", "--m", "256",
             "--trials", "200", "--seed", "1"]
        ) == 0
        assert "oblivious" in capsys.readouterr().out

    def test_simulate_attack(self, capsys):
        assert main(
            ["simulate", "cluster", "64,64,64,64", "--m", "4096",
             "--trials", "100", "--attack", "closest_pair"]
        ) == 0
        assert "closest_pair" in capsys.readouterr().out
